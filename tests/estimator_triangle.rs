//! The estimator triangle on an exactly solvable system: JE, TI, WHAM and
//! BAR must all agree with the analytic PMF of a harmonic well — the
//! strongest cross-method consistency test in the suite.

use spice::core::config::Scale;
use spice::core::ti::{ti_profile, umbrella_windows};
use spice::jarzynski::crooks::bar_free_energy;
use spice::jarzynski::pmf::{Estimator, PmfCurve};
use spice::jarzynski::wham::wham;
use spice::md::forces::{ForceField, Restraint};
use spice::md::integrate::LangevinBaoab;
use spice::md::units::KT_300;
use spice::md::{Simulation, System, Topology, Vec3};
use spice::smd::{run_ensemble, run_reverse_pull, PullProtocol};
use spice::stats::rng::SeedSequence;

const A: f64 = 0.5; // U = a z² → Φ(z) = a z²
const SPAN: f64 = 2.5;

fn factory(seed: u64) -> Simulation {
    let mut sys = System::new();
    sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
    let mut topo = Topology::new();
    topo.set_group("smd", vec![0]);
    let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), A));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.02,
    )
}

fn protocol() -> PullProtocol {
    PullProtocol {
        kappa_pn_per_a: 500.0,
        v_a_per_ns: 150.0,
        pull_distance: SPAN,
        dt_ps: 0.02,
        equilibration_steps: 400,
        sample_stride: 25,
    }
}

#[test]
fn all_four_estimators_agree_with_analytic_pmf() {
    let truth = A * SPAN * SPAN; // ΔΦ over the span

    // JE (forward pulls).
    let trajectories: Vec<_> = run_ensemble(factory, &protocol(), 20, SeedSequence::new(1))
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    let je = PmfCurve::estimate(&trajectories, SPAN, 11, KT_300, Estimator::Jarzynski)
        .points
        .last()
        .unwrap()
        .phi;

    // TI (umbrella mean-force ladder).
    let ti = ti_profile(factory, Scale::Test, SPAN, 6, 500.0, SeedSequence::new(2));
    let ti_end = ti.profile.last().unwrap().1;

    // WHAM (same ladder, histogram route).
    let windows = umbrella_windows(factory, Scale::Test, SPAN, 6, 500.0, SeedSequence::new(3));
    let w = wham(&windows, -0.8, SPAN + 0.8, 33, KT_300, 2_000, 1e-9);
    // Φ difference between the bins nearest 0 and SPAN.
    let phi_near = |x0: f64| {
        w.profile
            .iter()
            .min_by(|a, b| (a.0 - x0).abs().total_cmp(&(b.0 - x0).abs()))
            .unwrap()
            .1
    };
    let wham_delta = phi_near(SPAN) - phi_near(0.0);

    // BAR (forward + reverse).
    let forward: Vec<f64> = trajectories.iter().map(|t| t.final_work()).collect();
    let reverse: Vec<f64> = (0..20)
        .filter_map(|i| {
            let mut sim = factory(1_000 + i);
            run_reverse_pull(&mut sim, &protocol(), i)
                .ok()
                .map(|o| o.trajectory.final_work())
        })
        .collect();
    let bar = bar_free_energy(&forward, &reverse, KT_300);

    for (name, value, tol) in [
        ("JE", je, 0.6),
        ("TI", ti_end, 0.6),
        ("WHAM", wham_delta, 0.8),
        ("BAR", bar, 0.6),
    ] {
        assert!(
            (value - truth).abs() < tol,
            "{name} = {value:.3} vs analytic {truth:.3} (tol {tol})"
        );
    }
}
