//! Integration: campaign execution traces are consistent between the
//! clairvoyant planner and the DES executor, and capacity is never
//! violated at any instant.

use spice::gridsim::campaign::Campaign;
use spice::gridsim::des::{run_des_with_policy, DispatchPolicy};
use spice::gridsim::trace::{gantt, job_listing};

/// No instant may have more processors committed on a site than it owns —
/// checked by direct interval arithmetic on the records, for both
/// executors.
#[test]
fn capacity_never_violated_at_any_instant() {
    let c = Campaign::paper_batch_phase(13);
    for result in [
        c.run(),
        run_des_with_policy(&c, DispatchPolicy::EarliestCompletion),
    ] {
        for site in &c.federation.sites {
            // Event points: every start/finish on this site.
            let mut events: Vec<f64> = result
                .records
                .iter()
                .filter(|r| r.site == site.id)
                .flat_map(|r| [r.started, r.finished])
                .collect();
            events.sort_by(f64::total_cmp);
            for &t in &events {
                let probe = t + 1e-6;
                let committed: u32 = result
                    .records
                    .iter()
                    .filter(|r| r.site == site.id && r.started <= probe && probe < r.finished)
                    .map(|r| r.procs)
                    .sum();
                assert!(
                    committed <= site.procs,
                    "{}: {committed} procs committed at t={probe:.2} (capacity {})",
                    site.name,
                    site.procs
                );
            }
        }
    }
}

/// Both executors produce renderable traces covering all 72 jobs.
#[test]
fn traces_render_for_both_executors() {
    let c = Campaign::paper_batch_phase(14);
    let plan = c.run();
    let des = run_des_with_policy(&c, DispatchPolicy::RoundRobin);
    for r in [&plan, &des] {
        let g = gantt(r, &c.federation, 50);
        assert_eq!(g.lines().count(), 1 + c.federation.sites.len());
        let listing = job_listing(r, &c.federation);
        assert_eq!(listing.lines().count(), 73);
    }
}

/// Round-robin spreads work broadly. (Not necessarily onto every site:
/// with a shared cursor over heterogeneous fitting sets — 128-proc jobs
/// fit 6 sites, 256-proc jobs only 4 — the alternating job sizes can
/// stride past a site entirely. That blind spot is exactly why the
/// greedy broker exists; the ablation keeps the naive policy naive.)
#[test]
fn round_robin_spreads_widely() {
    let c = Campaign::paper_batch_phase(15);
    let des = run_des_with_policy(&c, DispatchPolicy::RoundRobin);
    assert_eq!(des.records.len(), 72, "all jobs placed");
    let used = des.jobs_per_site.iter().filter(|&&(_, n)| n > 0).count();
    assert!(
        used >= 4,
        "round-robin too concentrated: {:?}",
        des.jobs_per_site
    );
}
