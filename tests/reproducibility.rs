//! Reproducibility guarantees across the whole stack: identical seeds →
//! identical science, independent of thread scheduling. This is what lets
//! a federated campaign be audited after the fact.

use spice::core::config::Scale;
use spice::core::pipeline::{pore_simulation, run_cell};
use spice::gridsim::campaign::Campaign;
use spice::gridsim::des::run_des;
use spice::smd::run_ensemble;
use spice::stats::rng::SeedSequence;

/// The same ensemble executed on thread pools of different sizes must
/// produce bit-identical work values — the counter-based-RNG design goal.
#[test]
fn ensemble_identical_across_pool_sizes() {
    let protocol = Scale::Test.protocol(100.0, 100.0);
    let run_with = |threads: usize| -> Vec<f64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            run_ensemble(
                |seed| pore_simulation(Scale::Test, seed),
                &protocol,
                6,
                SeedSequence::new(42),
            )
            .into_iter()
            .filter_map(Result::ok)
            .map(|t| t.final_work())
            .collect()
        })
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(
        serial, parallel,
        "work values must not depend on scheduling"
    );
    assert_eq!(serial.len(), 6);
}

/// A full PMF cell is reproducible end-to-end (estimation + bootstrap).
#[test]
fn pmf_cell_bitwise_reproducible() {
    let a = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(7));
    let b = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(7));
    assert_eq!(a.curve.points, b.curve.points);
    assert_eq!(a.sigma_stat_raw.to_bits(), b.sigma_stat_raw.to_bits());
    assert_eq!(a.sigma_stat_norm.to_bits(), b.sigma_stat_norm.to_bits());
}

/// Grid campaigns replay exactly under both executors.
#[test]
fn campaigns_replay_exactly() {
    let c = Campaign::paper_batch_phase(19);
    assert_eq!(c.run(), c.run());
    assert_eq!(run_des(&c), run_des(&c));
}

/// Different master seeds genuinely decorrelate the science.
#[test]
fn different_seeds_differ() {
    let a = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(1));
    let b = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(2));
    assert_ne!(a.curve.points, b.curve.points);
}
