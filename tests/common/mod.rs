//! Shared integration-test helpers.
//!
//! Every integration-test binary compiles its own copy of this module
//! and uses a different subset of it, so unused-item lints are off.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named scratch directory that cleans up after itself.
///
/// Uniqueness comes from the process id plus a per-process counter, and
/// is *enforced* by `create_dir` (not `create_dir_all`), so two tests —
/// or two concurrent test processes — can never share a directory. The
/// directory is removed on drop **unless the test is panicking**, in
/// which case it is left behind for post-mortem inspection.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh scratch directory tagged with `tag`.
    pub fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("spice_test_{tag}_{}_{n}", std::process::id()));
            match std::fs::create_dir(&path) {
                Ok(()) => return TempDir { path },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("cannot create scratch dir {}: {e}", path.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path to `name` inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "test panicked; scratch dir left for inspection: {}",
                self.path.display()
            );
        } else {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}
