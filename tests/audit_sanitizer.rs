//! Fault-injection tests for the runtime simulation sanitizer (the
//! `audit` feature, see DESIGN.md §9). Each test corrupts one layer's
//! state and asserts the sanitizer panics naming the violated invariant;
//! the final test proves clean runs pass with every check live.
//!
//! Compiled only under `cargo test --features audit`.
#![cfg(feature = "audit")]

use spice_gridsim::{Campaign, EventQueue, SimTime};
use spice_md::forces::{ForceField, Restraint};
use spice_md::integrate::LangevinBaoab;
use spice_md::{BiasForce, Simulation, System, Topology, Vec3};
use spice_smd::{run_pull, PullProtocol};

/// One bead in a harmonic well with an "smd" group — the standard
/// minimal pulling setup.
fn well_sim(seed: u64) -> Simulation {
    let mut sys = System::new();
    sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
    let mut topo = Topology::new();
    topo.set_group("smd", vec![0]);
    let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 1.0));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.02,
    )
}

fn quick_protocol() -> PullProtocol {
    PullProtocol {
        kappa_pn_per_a: 200.0,
        v_a_per_ns: 2000.0,
        pull_distance: 2.0,
        dt_ps: 0.02,
        equilibration_steps: 50,
        sample_stride: 10,
    }
}

/// A bias that corrupts the force array with NaN — the canonical
/// numerical blowup, injected at the exact layer boundary the sanitizer
/// guards.
struct NanForce;
impl BiasForce for NanForce {
    fn apply(&self, _p: &[Vec3], forces: &mut [Vec3], _t: f64) -> f64 {
        forces[0] = Vec3::new(f64::NAN, 0.0, 0.0);
        0.0
    }
}

#[test]
#[should_panic(expected = "spice-audit[md.finite_state]")]
fn nan_force_injection_trips_md_sanitizer() {
    let mut sim = well_sim(1);
    sim.set_bias(Some(Box::new(NanForce)));
    sim.run(10, &mut []).ok();
}

#[test]
#[should_panic(expected = "spice-audit[md.finite_state]")]
fn direct_state_corruption_trips_md_sanitizer() {
    let mut sim = well_sim(2);
    sim.system_mut().velocities_mut()[0] = Vec3::new(0.0, f64::INFINITY, 0.0);
    spice_md::audit::check_finite_state(sim.system(), sim.step_count());
}

#[test]
#[should_panic(expected = "spice-audit[smd.finite_work]")]
fn nan_work_trips_smd_sanitizer() {
    spice_smd::audit::check_finite_work(f64::NAN, 0.0, 3);
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.event_order]")]
fn out_of_order_event_trips_des_sanitizer() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_hours(2.0), "on-time");
    q.pop();
    // Bypass the schedule-side assert: the pop-side sanitizer must still
    // catch the clock running backwards.
    q.schedule_unchecked(SimTime::from_hours(1.0), "late");
    q.pop();
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.finite_time]")]
fn nan_event_time_trips_des_sanitizer() {
    let mut q = EventQueue::new();
    q.schedule_unchecked(SimTime(f64::NAN), ());
    q.pop();
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.single_site]")]
fn double_placement_trips_single_site_sanitizer() {
    // A job claimed to be running on SDSC must not be started on NCSA.
    spice_gridsim::audit::check_single_site(7, Some(1), 0);
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.retry_bound]")]
fn retry_overrun_trips_retry_bound_sanitizer() {
    // 5 retries consumed against a policy allowing 3.
    spice_gridsim::audit::check_retry_bound(12, 5, 3);
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.restart_progress]")]
fn full_checkpoint_trips_restart_progress_sanitizer() {
    // A checkpoint claiming 100% of the remaining work would mean the
    // job finished, not failed — restarted work must stay positive.
    spice_gridsim::audit::check_restart_progress(3, 8.0, 8.0);
}

#[test]
#[should_panic(expected = "spice-audit[gridsim.restart_progress]")]
fn nan_checkpoint_trips_restart_progress_sanitizer() {
    spice_gridsim::audit::check_restart_progress(3, f64::NAN, 8.0);
}

/// With every invariant check live, an uncorrupted pull and an
/// uncorrupted DES campaign must run to completion: the sanitizer only
/// fires on genuine violations.
#[test]
fn clean_runs_pass_under_audit() {
    let mut sim = well_sim(7);
    let out = run_pull(&mut sim, &quick_protocol(), 7).expect("clean pull succeeds under audit");
    assert!(out.trajectory.final_work().is_finite());

    let r = spice_gridsim::des::run_des(&Campaign::paper_batch_phase(3));
    assert_eq!(r.records.len(), 72, "all jobs conserved through the DES");
}

/// A full resilient execution of the SC05 outage scenario — kills,
/// checkpoint restarts, failover retries — passes every live sanitizer:
/// single-site placement, retry bounds, restart progress, processor and
/// job conservation.
#[test]
fn clean_resilient_runs_pass_under_audit() {
    use spice_gridsim::resilience::{run_resilient, ResiliencePolicy};
    let c = Campaign::sc05_outage_phase(123);
    for p in [
        ResiliencePolicy::naive(),
        ResiliencePolicy::retry_only(),
        ResiliencePolicy::checkpoint_failover(),
    ] {
        let r = run_resilient(&c, &p);
        assert_eq!(
            r.result.records.len() + r.abandoned.len(),
            72,
            "all jobs conserved through the resilient engine"
        );
    }
}
