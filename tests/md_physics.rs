//! Integration-level physics checks on the MD substrate through the
//! public `spice` facade: statistical mechanics the engine must get right
//! regardless of model details.

use spice::md::forces::{ForceField, LjParams, NonBonded, Restraint};
use spice::md::integrate::{LangevinBaoab, VelocityVerlet};
use spice::md::minimize::steepest_descent;
use spice::md::trajectory::{count_xyz_frames, XyzWriter};
use spice::md::units::{KB, KT_300};
use spice::md::{Simulation, System, Topology, Vec3};
use spice::stats::RunningStats;

/// Equipartition: each quadratic degree of freedom carries kT/2 — measure
/// KE per particle in a Langevin bath of mixed masses.
#[test]
fn equipartition_across_mixed_masses() {
    let mut sys = System::new();
    let masses = [10.0, 50.0, 330.0];
    let n_per = 60;
    for (mi, &m) in masses.iter().enumerate() {
        for i in 0..n_per {
            sys.add_particle(
                Vec3::new(i as f64 * 3.0, mi as f64 * 3.0, 0.0),
                m,
                0.0,
                mi as u32,
            );
        }
    }
    let mut ff = ForceField::new(Topology::new());
    for i in 0..sys.len() {
        let anchor = sys.positions()[i];
        ff = ff.with_restraint(Restraint::harmonic(i, anchor, 1.0));
    }
    let mut sim = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 3.0, 9)), 0.01);
    sim.run(2_000, &mut []).unwrap();
    // Sample per-species temperature.
    let mut per_species = vec![RunningStats::new(); masses.len()];
    for _ in 0..400 {
        sim.run(10, &mut []).unwrap();
        for i in 0..sim.system().len() {
            let m = sim.system().masses()[i];
            let v2 = sim.system().velocities()[i].norm_sq();
            // (1/2) m v² per particle = (3/2) kT  →  T = m v²/(3 k).
            per_species[sim.system().species()[i] as usize]
                .push(m * v2 * spice::md::units::KE / (3.0 * KB));
        }
    }
    for (mi, stats) in per_species.iter().enumerate() {
        let t = stats.mean();
        assert!(
            (t - 300.0).abs() < 15.0,
            "species {mi} (mass {}) at {t:.1} K, want 300",
            masses[mi]
        );
    }
}

/// Boltzmann factor in a double-well: occupancy ratio of two wells of
/// depth difference ΔU matches exp(-ΔU/kT).
#[test]
fn boltzmann_occupancy_in_asymmetric_double_well() {
    // U(z) = a (z² − w²)² / w⁴ + b z  — two wells near ±w, tilted by b.
    struct DoubleWell {
        a: f64,
        w: f64,
        b: f64,
    }
    impl spice::md::forces::ExternalPotential for DoubleWell {
        fn energy_force(&self, p: Vec3, _s: u32) -> (f64, Vec3) {
            let z = p.z;
            let w2 = self.w * self.w;
            let q = z * z - w2;
            let e = self.a * q * q / (w2 * w2) + self.b * z
                // confine x,y strongly
                + 5.0 * (p.x * p.x + p.y * p.y);
            let dz = 4.0 * self.a * q * z / (w2 * w2) + self.b;
            (e, Vec3::new(-10.0 * p.x, -10.0 * p.y, -dz))
        }
    }
    let (a, w, b) = (2.0, 1.5, 0.25);
    let mut sys = System::new();
    let n = 64;
    for i in 0..n {
        // Start half in each well.
        let z = if i % 2 == 0 { w } else { -w };
        sys.add_particle(Vec3::new(0.0, 0.0, z), 20.0, 0.0, 0);
    }
    let ff = ForceField::new(Topology::new()).with_external(DoubleWell { a, w, b });
    let mut sim = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 5.0, 21)), 0.01);
    sim.run(5_000, &mut []).unwrap();
    let (mut lo, mut hi) = (0u64, 0u64);
    for _ in 0..600 {
        sim.run(20, &mut []).unwrap();
        for p in sim.system().positions() {
            if p.z > 0.0 {
                hi += 1;
            } else {
                lo += 1;
            }
        }
    }
    let measured = hi as f64 / lo as f64;
    // ΔU between well minima ≈ 2 b w (tilt), barrier ~a=2 kcal ≈ 3.4 kT
    // so hopping equilibrates. Expected ratio exp(−ΔU/kT).
    let expected = (-2.0 * b * w / KT_300).exp();
    assert!(
        (measured / expected - 1.0).abs() < 0.45,
        "occupancy ratio {measured:.3} vs Boltzmann {expected:.3}"
    );
}

/// NVE drift on a many-body LJ cluster: velocity-Verlet must hold total
/// energy over tens of thousands of steps.
#[test]
fn nve_energy_conservation_lj_cluster() {
    let mut sys = System::new();
    for i in 0..4 {
        for j in 0..4 {
            sys.add_particle(
                Vec3::new(i as f64 * 1.15, j as f64 * 1.15, (i + j) as f64 * 0.05),
                20.0,
                0.0,
                0,
            );
        }
    }
    let mut ff = ForceField::new(Topology::new()).with_nonbonded(NonBonded::new(
        LjParams::lj(1.0, 0.3),
        2.6,
        0.4,
    ));
    // Minimize first so the start is a bound cluster, then kick gently.
    steepest_descent(&mut sys, &mut ff, 2000, 1e-3, 0.1);
    for (i, v) in sys.velocities_mut().iter_mut().enumerate() {
        *v = Vec3::new(
            0.02 * ((i * 7 % 5) as f64 - 2.0),
            0.02 * ((i * 3 % 5) as f64 - 2.0),
            0.0,
        );
    }
    let mut sim = Simulation::new(sys, ff, Box::new(VelocityVerlet), 0.002);
    let e0 = sim.system().kinetic_energy() + sim.energies().total();
    sim.run(30_000, &mut []).unwrap();
    let e1 = sim.system().kinetic_energy() + sim.energies().total();
    assert!(
        (e1 - e0).abs() < 5e-3 * (1.0 + e0.abs()),
        "NVE drift {e0:.6} → {e1:.6}"
    );
}

/// XYZ output through the public facade: frames written during a run
/// parse back with the right count.
#[test]
fn trajectory_roundtrip_during_run() {
    let mut sys = System::new();
    for i in 0..5 {
        sys.add_particle(Vec3::new(i as f64, 0.0, 0.0), 10.0, -1.0, 1);
    }
    let mut ff = ForceField::new(Topology::new());
    for i in 0..5 {
        ff = ff.with_restraint(Restraint::harmonic(i, Vec3::new(i as f64, 0.0, 0.0), 1.0));
    }
    let mut sim = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 2.0, 3)), 0.01);
    let mut writer = XyzWriter::new(Vec::new(), vec!["X".into(), "P".into()]);
    for frame in 0..8 {
        sim.run(25, &mut []).unwrap();
        writer
            .write_frame(sim.system(), &format!("t = {:.2} ps", sim.time_ps()))
            .unwrap();
        assert_eq!(writer.frames(), frame + 1);
    }
    let text = String::from_utf8(writer.into_inner()).unwrap();
    assert_eq!(count_xyz_frames(&text), 8);
    assert!(text.contains("P "), "phosphate species labelled");
}
