//! Cross-crate grid integration: campaigns under failures, reservation
//! workflows feeding co-scheduling, and the science-to-jobs mapping.

use spice::gridsim::campaign::{paper_production_jobs, Campaign};
use spice::gridsim::failure::{Outage, OutageCause};
use spice::gridsim::federation::Federation;
use spice::gridsim::job::Job;
use spice::gridsim::metrics::federation_utilization;
use spice::gridsim::scheduler::reservation::ManualBookingModel;

#[test]
fn campaign_tracks_science_workload() {
    // One grid job per production realization — name, procs and hours all
    // line up with the SMD-JE production set.
    let jobs = paper_production_jobs();
    assert_eq!(jobs.len(), 72);
    for j in &jobs {
        assert!(j.name.starts_with("smd-prod-"));
    }
    let total: f64 = jobs.iter().map(Job::cpu_hours).sum();
    assert!((total - 75_000.0).abs() < 1_500.0);
}

#[test]
fn breach_with_redundancy_beats_breach_without() {
    let seed = 12;
    let mut no_redundancy = Campaign::paper_batch_phase(seed);
    no_redundancy.outages = vec![
        Outage::security_breach(3, 0.0, 3.0),
        Outage::new(4, 0.0, 21.0 * 24.0, OutageCause::MiddlewareImmaturity),
    ];
    let mut redundant = Campaign::paper_batch_phase(seed);
    redundant.outages = vec![Outage::security_breach(3, 0.0, 3.0)];

    let worse = no_redundancy.run();
    let better = redundant.run();
    assert!(better.makespan_hours <= worse.makespan_hours);
    assert_eq!(better.records.len(), 72);
    assert_eq!(worse.records.len(), 72, "work must survive outages");
}

#[test]
fn utilization_increases_when_federation_shrinks() {
    let fed = Federation::paper_us_uk();
    let full = Campaign::paper_batch_phase(5);
    let full_run = full.run();
    let mut small = Campaign::paper_batch_phase(5);
    small.federation = fed.restricted(&[0, 3]);
    let small_run = small.run();
    let u_full = federation_utilization(&full_run, &full.federation);
    let u_small = federation_utilization(&small_run, &small.federation);
    assert!(
        u_small > u_full,
        "fewer resources run hotter: {u_small:.2} vs {u_full:.2}"
    );
}

#[test]
fn co_scheduling_success_falls_with_more_grids() {
    let fed = Federation::paper_us_uk();
    let manual = ManualBookingModel::paper_manual();
    let two_grids = fed.co_schedule_success_rate(&manual, 5_000, 3);
    // A hypothetical 4-grid federation: duplicate the grids.
    let mut four = fed.clone();
    four.grids.extend(fed.grids.iter().cloned());
    let four_grids = four.co_schedule_success_rate(&manual, 5_000, 3);
    assert!(
        four_grids < two_grids,
        "§V-C-6: success decays with grid count ({four_grids:.3} vs {two_grids:.3})"
    );
}
