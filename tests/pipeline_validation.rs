//! Cross-crate physics validation: the SMD-JE pipeline must recover
//! analytically known free-energy profiles end-to-end, and the TI
//! extension must agree with it — the integration-level correctness
//! proof behind every Fig. 4 number.

use spice::core::config::Scale;
use spice::core::ti::ti_profile;
use spice::jarzynski::analytic::harmonic_pmf;
use spice::jarzynski::pmf::{Estimator, PmfCurve};
use spice::md::forces::{ForceField, Restraint};
use spice::md::integrate::LangevinBaoab;
use spice::md::units::KT_300;
use spice::md::{Simulation, System, Topology, Vec3};
use spice::smd::{run_ensemble, PullProtocol};
use spice::stats::rng::SeedSequence;

/// A single bead in U = a z² with the SMD group defined — the exactly
/// solvable system.
fn well_factory(a: f64) -> impl Fn(u64) -> Simulation + Sync {
    move |seed| {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), a));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
            0.02,
        )
    }
}

#[test]
fn smd_je_recovers_harmonic_pmf() {
    let a = 0.4;
    let span = 3.0;
    // Slow enough to stay near-equilibrium for a bead with τ ≈ 0.2 ps.
    let protocol = PullProtocol {
        kappa_pn_per_a: 500.0,
        v_a_per_ns: 100.0,
        pull_distance: span,
        dt_ps: 0.02,
        equilibration_steps: 500,
        sample_stride: 25,
    };
    let trajectories: Vec<_> = run_ensemble(well_factory(a), &protocol, 24, SeedSequence::new(11))
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    assert_eq!(trajectories.len(), 24);
    let pmf = PmfCurve::estimate(&trajectories, span, 13, KT_300, Estimator::Jarzynski);
    let reference = harmonic_pmf(a);
    for p in &pmf.points {
        let expected = reference(p.guide_disp);
        assert!(
            (p.phi - expected).abs() < 0.45 + 0.15 * expected,
            "Φ({:.2}) = {:.3} vs analytic {:.3}",
            p.guide_disp,
            p.phi,
            expected
        );
    }
}

#[test]
fn fast_pulls_overestimate_the_pmf() {
    // §IV-C: "too large a velocity produces irreversible work which
    // results in deviations from the equilibrium PMF" — and the deviation
    // is an overestimate.
    let a = 0.4;
    let span = 3.0;
    let run_at = |v: f64, seed: u64| {
        let protocol = PullProtocol {
            kappa_pn_per_a: 500.0,
            v_a_per_ns: v,
            pull_distance: span,
            dt_ps: 0.02,
            equilibration_steps: 300,
            sample_stride: 25,
        };
        let t: Vec<_> = run_ensemble(well_factory(a), &protocol, 16, SeedSequence::new(seed))
            .into_iter()
            .filter_map(Result::ok)
            .collect();
        PmfCurve::estimate(&t, span, 7, KT_300, Estimator::MeanWork)
            .points
            .last()
            .unwrap()
            .phi
    };
    let slow = run_at(100.0, 1);
    let fast = run_at(8_000.0, 2);
    let truth = a * span * span;
    assert!(
        fast > slow,
        "mean work must grow with v: fast {fast:.3} vs slow {slow:.3} (truth {truth:.3})"
    );
    assert!(
        fast - truth > 0.2,
        "ballistic pull must dissipate visibly: {fast:.3} vs {truth:.3}"
    );
}

#[test]
fn ti_matches_je_on_harmonic_well() {
    let a = 0.4;
    let span = 2.0;
    let ti = ti_profile(
        well_factory(a),
        Scale::Test,
        span,
        5,
        500.0,
        SeedSequence::new(5),
    );
    let reference = harmonic_pmf(a);
    for &(s, phi) in &ti.profile {
        let expected = reference(s);
        assert!(
            (phi - expected).abs() < 0.35 + 0.15 * expected,
            "TI Φ({s:.2}) = {phi:.3} vs analytic {expected:.3}"
        );
    }
}

#[test]
fn cumulant_and_jarzynski_agree_near_equilibrium() {
    let a = 0.4;
    let span = 2.0;
    let protocol = PullProtocol {
        kappa_pn_per_a: 500.0,
        v_a_per_ns: 100.0,
        pull_distance: span,
        dt_ps: 0.02,
        equilibration_steps: 400,
        sample_stride: 25,
    };
    let t: Vec<_> = run_ensemble(well_factory(a), &protocol, 16, SeedSequence::new(7))
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    let je = PmfCurve::estimate(&t, span, 7, KT_300, Estimator::Jarzynski);
    let cu = PmfCurve::estimate(&t, span, 7, KT_300, Estimator::Cumulant);
    let rms = je.rms_difference(&cu);
    assert!(
        rms < 0.3,
        "near equilibrium the estimators coincide; RMS difference {rms:.3}"
    );
}
