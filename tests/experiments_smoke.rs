//! Experiment-suite smoke tests: every paper artifact regenerates at Test
//! scale, and the headline claims hold in the rendered reports.

use spice::core::config::Scale;
use spice::core::experiments;

fn fact<'a>(r: &'a spice::core::Report, key: &str) -> &'a str {
    &r.facts
        .iter()
        .find(|(k, _)| k.contains(key))
        .unwrap_or_else(|| panic!("report {} lacks fact '{key}'", r.id))
        .1
}

#[test]
fn full_experiment_suite_regenerates_every_artifact() {
    let reports = experiments::run_all(Scale::Test, 20050512);
    assert_eq!(reports.len(), 13);

    let by_id = |id: &str| {
        reports
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing {id}"))
    };

    // T-cost: the §I back-of-envelope.
    let cost = by_id("T-cost");
    assert!(fact(cost, "CPU-hours per ns").contains("3072"));
    assert!(fact(cost, "min procs").contains("256"));

    // T-batch: under a week on the federation.
    let batch = by_id("T-batch");
    assert!(
        fact(batch, "federated makespan").contains("under a week: true"),
        "{}",
        fact(batch, "federated makespan")
    );

    // T-hidden: the UDP restriction is visible.
    let hidden = by_id("T-hidden");
    assert!(hidden.render().contains("UNSUPPORTED (gateway, no UDP)"));

    // F4: the sweep selected a grid point and reported a κ ranking.
    let f4 = by_id("F4");
    assert!(f4.render().contains("selected optimum"));

    // T-imd: lightpath beats commodity.
    let imd = by_id("T-imd");
    let lp: f64 = fact(imd, "slowdown on lightpath")
        .trim_end_matches('×')
        .parse()
        .unwrap();
    let gp: f64 = fact(imd, "slowdown on commodity internet")
        .trim_end_matches('×')
        .parse()
        .unwrap();
    assert!(lp < gp, "lightpath {lp} must beat commodity {gp}");

    // T-resil: resilience policies are compared with badput accounting,
    // and failover keeps the campaign off the breached node (an order of
    // magnitude under the naive three-week stall).
    let resil = by_id("T-resil");
    assert!(!fact(resil, "naive badput CPU-h").is_empty());
    assert!(resil.render().contains("ckpt+failover"));
    let naive_days: f64 = fact(resil, "naive makespan")
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let ckpt_days: f64 = fact(resil, "checkpoint+failover makespan")
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        naive_days > 3.0 * ckpt_days,
        "naive {naive_days} d must dwarf checkpoint+failover {ckpt_days} d"
    );

    // F3: stretch contrast above 1.
    let f3 = by_id("F3");
    let contrast: f64 = fact(f3, "stretch contrast")
        .trim_end_matches('×')
        .parse()
        .unwrap();
    assert!(
        contrast > 1.0,
        "stretching must localize at the constriction"
    );
}

#[test]
fn experiment_suite_is_deterministic() {
    let a = experiments::run_all(Scale::Test, 7);
    let b = experiments::run_all(Scale::Test, 7);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.render(),
            y.render(),
            "experiment {} not deterministic",
            x.id
        );
    }
}
