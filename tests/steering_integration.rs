//! Cross-crate steering workflow tests: the checkpoint & clone cycle on
//! the real pore system through the full framework stack, live IMD
//! forces, and stop semantics.

use spice::core::config::Scale;
use spice::core::pipeline::pore_simulation;
use spice::md::Vec3;
use spice::steering::message::ControlMessage;
use spice::steering::service::GridService;
use spice::steering::{HapticDevice, SteeringClient, SteeringHook, Visualizer};

#[test]
fn checkpoint_clone_workflow_on_pore_system() {
    let service = GridService::shared();
    let mut original = pore_simulation(Scale::Test, 1);
    let lead = original.force_field().topology().group("dna").unwrap()[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    let client = SteeringClient::attach(service.clone(), hook.component_id());

    client.checkpoint("v-and-v");
    original.run(30, &mut [&mut hook]).unwrap();
    let frozen = original.system().positions().to_vec();

    // Clone for "verification and validation tests without perturbing the
    // original simulation" (§III).
    let mut clone = pore_simulation(Scale::Test, 999);
    client.clone_into("v-and-v", &mut clone).unwrap();
    assert_eq!(clone.step_count(), 10);
    clone.run(200, &mut []).unwrap();

    assert_eq!(
        original.system().positions(),
        frozen.as_slice(),
        "original untouched while the clone explored"
    );
    assert_ne!(clone.system().positions(), original.system().positions());
    assert!(clone.system().is_finite());
}

#[test]
fn live_imd_forces_change_the_trajectory() {
    let service = GridService::shared();
    let mut steered = pore_simulation(Scale::Test, 2);
    let lead = steered.force_field().topology().group("dna").unwrap()[0];
    let mut hook = SteeringHook::attach(service.clone(), 5, vec![lead]);
    let vis = Visualizer::attach(service.clone(), hook.component_id());
    for _ in 0..10 {
        vis.steer(vec![lead], Vec3::new(0.0, 0.0, 20.0));
        steered.run(5, &mut [&mut hook]).unwrap();
    }

    let mut control = pore_simulation(Scale::Test, 2);
    control.run(50, &mut []).unwrap();
    assert!(
        steered.system().positions()[lead].z > control.system().positions()[lead].z,
        "persistent upward IMD force must raise the lead bead"
    );
}

#[test]
fn haptic_device_measures_forces_through_full_stack() {
    let service = GridService::shared();
    let mut sim = pore_simulation(Scale::Test, 3);
    let lead = sim.force_field().topology().group("dna").unwrap()[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    let mut vis = Visualizer::attach(service.clone(), hook.component_id())
        .with_haptic(HapticDevice::phantom());
    let z0 = sim.system().positions()[lead].z;
    for b in 0..15 {
        sim.run(10, &mut [&mut hook]).unwrap();
        while vis
            .steer_with_haptic(&[lead], z0 + b as f64 * 0.5)
            .is_some()
        {}
    }
    let device = vis.haptic.as_ref().unwrap();
    assert!(device.render_count() > 0);
    assert!(
        device.max_observed_force_pn() > 1.0,
        "dragging against the pore must register pN-scale forces: {}",
        device.max_observed_force_pn()
    );
}

#[test]
fn stop_verb_terminates_cleanly_mid_campaign() {
    let service = GridService::shared();
    let mut sim = pore_simulation(Scale::Test, 4);
    let lead = sim.force_field().topology().group("dna").unwrap()[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    service
        .lock()
        .send_control(hook.component_id(), ControlMessage::Stop);
    let done = sim.run(1000, &mut [&mut hook]).unwrap();
    assert_eq!(done, 10, "stops at the first emit point");
    assert!(hook.stopped());
}
