//! The telemetry layer's hard contract, property-tested: attaching a
//! live handle never changes the science. Positions, work values and DES
//! event order must be bit-identical with telemetry enabled vs disabled,
//! for arbitrary seeds — and the telemetry exports themselves must be
//! deterministic across reruns (the merge order is logical, never
//! scheduler-dependent).

use proptest::prelude::*;
use spice::core::config::Scale;
use spice::core::pipeline::{pore_simulation, run_cell, run_cell_traced};
use spice::gridsim::campaign::Campaign;
use spice::gridsim::resilience::{run_resilient, run_resilient_traced, ResiliencePolicy};
use spice::stats::rng::SeedSequence;
use spice::telemetry::Telemetry;

/// Bit-pattern view of a position trajectory endpoint, so NaN-safe exact
/// comparison is explicit.
fn position_bits(sim: &spice::md::Simulation) -> Vec<[u64; 3]> {
    sim.system()
        .positions()
        .iter()
        .map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// MD: the same simulation stepped with a live handle attached (span
    /// per run, force-eval probe per step, bound kernel counters) lands
    /// on bitwise-identical coordinates.
    #[test]
    fn md_positions_bit_identical_under_telemetry(seed in 0u64..1_000_000) {
        let mut plain = pore_simulation(Scale::Test, seed);
        plain.run(120, &mut []).expect("plain run");

        let t = Telemetry::enabled();
        let mut traced = pore_simulation(Scale::Test, seed);
        traced.force_field().bind_telemetry(&t);
        let track = t.track("test.md", seed);
        traced.attach_telemetry(&t, track);
        traced.run(120, &mut []).expect("traced run");

        prop_assert_eq!(position_bits(&plain), position_bits(&traced));
        // And the handle actually recorded the run it watched.
        let snap = t.snapshot();
        prop_assert!(!snap.tracks.is_empty());
        prop_assert!(snap.metrics.iter().any(|(n, _)| n == "md.kernel_invocations"));
    }

    /// DES: a resilient campaign replays with identical failures, event
    /// order and accounting whether or not the engine traces every event.
    #[test]
    fn des_event_order_bit_identical_under_telemetry(
        seed in 0u64..1_000_000,
        policy_ix in 0u8..3,
    ) {
        let mut campaign = Campaign::paper_batch_phase(seed);
        for job in campaign.jobs.iter_mut().step_by(10) {
            job.coupled = true;
        }
        let policy = match policy_ix {
            0 => ResiliencePolicy::naive(),
            1 => ResiliencePolicy::retry_only(),
            _ => ResiliencePolicy::checkpoint_failover(),
        };
        let plain = run_resilient(&campaign, &policy);
        let t = Telemetry::enabled();
        let traced = run_resilient_traced(&campaign, &policy, &t);
        // `failures` is in event order; full struct equality covers it,
        // the per-job records and the CPU-hour accounting.
        prop_assert_eq!(&plain, &traced);
        let snap = t.snapshot();
        prop_assert!(snap.metrics.iter().any(|(n, _)| n == "grid.des_events"));
    }
}

proptest! {
    // The full-cell property is expensive (an entire clone-amortized
    // ensemble per case) — a few seeds suffice on top of the per-layer
    // properties above.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// SMD-JE: a whole sweep cell — shared equilibration, cloned
    /// realizations, estimation — yields bit-identical work values and
    /// PMF under telemetry.
    #[test]
    fn cell_work_values_bit_identical_under_telemetry(seed in 0u64..100_000) {
        let plain = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(seed));
        let t = Telemetry::enabled();
        let traced =
            run_cell_traced(Scale::Test, 100.0, 100.0, SeedSequence::new(seed), &t, 0);
        let works: Vec<u64> = plain
            .trajectories
            .iter()
            .map(|w| w.final_work().to_bits())
            .collect();
        let works_traced: Vec<u64> = traced
            .trajectories
            .iter()
            .map(|w| w.final_work().to_bits())
            .collect();
        prop_assert_eq!(works, works_traced);
        prop_assert_eq!(plain.curve.points, traced.curve.points);
        prop_assert_eq!(
            plain.sigma_stat_raw.to_bits(),
            traced.sigma_stat_raw.to_bits()
        );
    }
}

/// Export determinism: two identically-seeded traced runs emit the same
/// JSONL stream and Chrome trace byte-for-byte, however rayon scheduled
/// the realizations.
#[test]
fn telemetry_exports_are_deterministic_across_reruns() {
    let run = || {
        let t = Telemetry::enabled();
        run_cell_traced(Scale::Test, 100.0, 100.0, SeedSequence::new(11), &t, 0);
        let campaign = Campaign::paper_batch_phase(11);
        run_resilient_traced(&campaign, &ResiliencePolicy::checkpoint_failover(), &t);
        (t.jsonl(), t.chrome_trace(), t.summary_tree())
    };
    let (jsonl_a, chrome_a, tree_a) = run();
    let (jsonl_b, chrome_b, tree_b) = run();
    assert_eq!(jsonl_a, jsonl_b, "JSONL stream must replay exactly");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must replay exactly");
    assert_eq!(tree_a, tree_b, "summary tree must replay exactly");
}
