//! Acceptance: the durable campaign engine (crash-safe checkpoint /
//! restore of the grid DES).
//!
//! The contract under test: a campaign killed at every K-th event and
//! restored from disk in a "fresh process" (fresh engine, fresh
//! telemetry handle — the old one dies with the process) must finish
//! with `ResilientResult` records, failure listings, and telemetry
//! export **bit-identical** to an uninterrupted run, across every
//! `DispatchPolicy` × `ResiliencePolicy` combination on the paper
//! workload.

mod common;

use common::TempDir;
use proptest::prelude::*;
use spice::gridsim::campaign::Campaign;
use spice::gridsim::des::DispatchPolicy;
use spice::gridsim::resilience::{
    run_resilient_with_dispatch, run_resilient_with_dispatch_traced, ResiliencePolicy,
    ResilientResult,
};
use spice::gridsim::trace::failure_listing;
use spice::gridsim::{run_resilient_durable, CrashPlan, DurabilityError, DurableConfig};
use spice::telemetry::Telemetry;
use std::path::Path;

const DISPATCHES: [DispatchPolicy; 3] = [
    DispatchPolicy::EarliestCompletion,
    DispatchPolicy::RoundRobin,
    DispatchPolicy::Random,
];

fn policies() -> [(&'static str, ResiliencePolicy); 3] {
    [
        ("naive", ResiliencePolicy::naive()),
        ("retry", ResiliencePolicy::retry_only()),
        ("ckpt", ResiliencePolicy::checkpoint_failover()),
    ]
}

/// Run the campaign under the durable engine, killing it at every
/// `stride`-th event and restoring from disk until it completes. Each
/// incarnation gets a **fresh** telemetry handle — simulated process
/// death takes the previous one with it, so whatever the survivor
/// exports must have been rebuilt from the snapshot plus live replay.
/// Returns the final result, the survivor's telemetry export, and how
/// many incarnations it took.
fn run_with_repeated_kills(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
    dir: &Path,
    every_events: u64,
    stride: u64,
) -> (ResilientResult, String, u32) {
    let mut next_kill = stride;
    let mut incarnations = 0u32;
    loop {
        incarnations += 1;
        assert!(
            incarnations < 10_000,
            "crash/restore loop is not making progress"
        );
        let telemetry = Telemetry::enabled();
        let cfg = DurableConfig {
            every_events,
            crash: CrashPlan::KillAfterEvents(next_kill),
            ..DurableConfig::new(dir)
        };
        match run_resilient_durable(campaign, policy, dispatch, &telemetry, &cfg) {
            Ok(out) => return (out.result, telemetry.jsonl(), incarnations),
            Err(DurabilityError::InjectedCrash { .. }) => next_kill += stride,
            Err(e) => panic!("unexpected durability error: {e}"),
        }
    }
}

/// The headline acceptance matrix: every dispatch × resilience
/// combination on the SC05 outage workload, killed at every 211th
/// event with a 64-event checkpoint cadence.
#[test]
fn killed_every_kth_event_matches_uninterrupted_for_all_policy_combinations() {
    let campaign = Campaign::sc05_outage_phase(2005);
    for dispatch in DISPATCHES {
        for (tag, policy) in policies() {
            // Uninterrupted reference: the plain (non-durable) engine.
            let reference_telemetry = Telemetry::enabled();
            let reference = run_resilient_with_dispatch_traced(
                &campaign,
                &policy,
                dispatch,
                &reference_telemetry,
            );
            let reference_json = serde_json::to_string(&reference).unwrap();
            let reference_listing = failure_listing(&reference, &campaign.federation);
            let reference_jsonl = reference_telemetry.jsonl();

            let dir = TempDir::new(&format!("durable_accept_{tag}"));
            let (survivor, survivor_jsonl, incarnations) =
                run_with_repeated_kills(&campaign, &policy, dispatch, dir.path(), 64, 211);

            assert!(
                incarnations > 1,
                "[{tag}/{dispatch:?}] the crash plan never fired — the test is vacuous"
            );
            assert_eq!(
                serde_json::to_string(&survivor).unwrap(),
                reference_json,
                "[{tag}/{dispatch:?}] restored records differ from uninterrupted"
            );
            assert_eq!(
                failure_listing(&survivor, &campaign.federation),
                reference_listing,
                "[{tag}/{dispatch:?}] restored failure listing differs"
            );
            assert_eq!(
                survivor_jsonl, reference_jsonl,
                "[{tag}/{dispatch:?}] restored telemetry export differs"
            );
        }
    }
}

/// Recovering from a *stale* generation — newer snapshots lost, an
/// older one intact — replays the missing interval forward and still
/// lands bit-identical to the uninterrupted run.
#[test]
fn stale_generation_restore_replays_forward_bit_identically() {
    let campaign = Campaign::sc05_outage_phase(7);
    let policy = ResiliencePolicy::checkpoint_failover();
    let dispatch = DispatchPolicy::EarliestCompletion;
    let reference =
        serde_json::to_string(&run_resilient_with_dispatch(&campaign, &policy, dispatch)).unwrap();

    let dir = TempDir::new("durable_stale_gen");
    // After generation 3 is written (retain = 3 keeps 1, 2, 3), the two
    // newest generations vanish and the process dies: only generation 1
    // survives.
    let cfg = DurableConfig {
        every_events: 50,
        crash: CrashPlan::StaleGeneration {
            after_generation: 3,
            drop_newest: 2,
        },
        ..DurableConfig::new(dir.path())
    };
    let err = run_resilient_durable(&campaign, &policy, dispatch, &Telemetry::disabled(), &cfg)
        .unwrap_err();
    assert!(matches!(err, DurabilityError::InjectedCrash { .. }));

    let resume = DurableConfig {
        every_events: 50,
        ..DurableConfig::new(dir.path())
    };
    let out = run_resilient_durable(
        &campaign,
        &policy,
        dispatch,
        &Telemetry::disabled(),
        &resume,
    )
    .unwrap();
    assert_eq!(
        out.recovery.resumed_from,
        Some(1),
        "must resume from the stale surviving generation"
    );
    assert_eq!(out.recovery.resumed_events, 50);
    assert_eq!(serde_json::to_string(&out.result).unwrap(), reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Restore at a *random* event index on seeded synthetic workloads,
    /// with the dispatch and resilience policies varied, and finish:
    /// the serialized result must be byte-identical to the
    /// uninterrupted run. Kills below the first checkpoint cadence are
    /// deliberately in range — recovery then degrades to a fresh start,
    /// which must also converge to the same bytes.
    #[test]
    fn restore_at_any_event_index_is_bit_identical(
        seed in 0u64..1_000,
        kill in 1u64..400,
        policy_ix in 0usize..3,
        dispatch_ix in 0usize..3,
    ) {
        let campaign = Campaign::synthetic(24, 4, seed);
        let (_, policy) = policies()[policy_ix];
        let dispatch = DISPATCHES[dispatch_ix];
        let reference = serde_json::to_string(&run_resilient_with_dispatch(
            &campaign, &policy, dispatch,
        ))
        .unwrap();

        let dir = TempDir::new("durable_prop");
        let cfg = DurableConfig {
            every_events: 16,
            crash: CrashPlan::KillAfterEvents(kill),
            ..DurableConfig::new(dir.path())
        };
        match run_resilient_durable(&campaign, &policy, dispatch, &Telemetry::disabled(), &cfg) {
            // Short campaign: it finished before the kill index — still
            // must match the plain engine.
            Ok(out) => {
                prop_assert_eq!(serde_json::to_string(&out.result).unwrap(), reference);
            }
            Err(DurabilityError::InjectedCrash { .. }) => {
                let resume = DurableConfig {
                    every_events: 16,
                    ..DurableConfig::new(dir.path())
                };
                let out = run_resilient_durable(
                    &campaign, &policy, dispatch, &Telemetry::disabled(), &resume,
                ).map_err(|e| TestCaseError::fail(format!("resume failed: {e}")))?;
                prop_assert_eq!(serde_json::to_string(&out.result).unwrap(), reference);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}
