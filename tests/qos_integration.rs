//! Cross-crate network/QoS integration: the paper's §II argument chain,
//! end-to-end — interactivity needs processors AND network quality, and
//! the hidden-IP/gateway/TCP models compose.

use spice::core::costing::CostModel;
use spice::gridsim::hidden_ip::{connect_inbound, effective_path, Gateway, Protocol};
use spice::gridsim::network::tcp::{flows_needed, mathis_throughput_mbps, DEFAULT_MSS};
use spice::gridsim::network::{Path, QosProfile};
use spice::gridsim::resource::paper_federation_sites;
use spice::steering::imd::{simulate_session, ImdConfig};

/// The full §II chain: a 300k-atom simulation on 256 procs, coupled over
/// each network profile — lightpath keeps the session interactive,
/// commodity degrades it, and the degradation is monotone in every QoS
/// knob.
#[test]
fn interactivity_argument_chain() {
    let cost = CostModel::paper();
    let cfg = ImdConfig {
        step_wall_ms: cost.step_wall_ms(256),
        steps_per_exchange: 10,
        n_exchanges: 300,
        seed: 7,
        ..ImdConfig::default()
    };
    let run = |p: QosProfile| {
        let path = Path::new(vec![p.link()]);
        simulate_session(&cfg, &path, &path)
    };
    let lan = run(QosProfile::Lan);
    let lp = run(QosProfile::TransAtlanticLightpath);
    let gp = run(QosProfile::TransAtlanticCommodity);
    assert!(lan.slowdown() < lp.slowdown());
    assert!(lp.slowdown() < gp.slowdown());
    // The lightpath session stays near-interactive: ≥ 0.8 Hz updates.
    assert!(
        lp.frame_rate_hz() > 0.8,
        "lightpath frame rate {:.2} Hz",
        lp.frame_rate_hz()
    );
}

/// Gateway-routed IMD: a coupled session through PSC's gateway under load
/// is strictly worse than a direct lightpath session — the paper's
/// "routing multiple processes through … gateway nodes can present a
/// bottleneck".
#[test]
fn gateway_routed_imd_is_worse_under_load() {
    let cost = CostModel::paper();
    let cfg = ImdConfig {
        step_wall_ms: cost.step_wall_ms(256),
        steps_per_exchange: 10,
        n_exchanges: 200,
        frame_bytes: 2_000_000, // detail frames make bandwidth matter
        seed: 11,
        ..ImdConfig::default()
    };
    let base = QosProfile::TransAtlanticLightpath.link();
    let direct = Path::new(vec![base]);
    let gw = Gateway::psc();
    let routed_loaded = effective_path(base, Some((&gw, 128)));
    let s_direct = simulate_session(&cfg, &direct, &direct);
    let s_routed = simulate_session(&cfg, &routed_loaded, &routed_loaded);
    assert!(
        s_routed.slowdown() > s_direct.slowdown() * 1.2,
        "loaded gateway {} vs direct {}",
        s_routed.slowdown(),
        s_direct.slowdown()
    );
}

/// Addressability × protocol matrix over the real federation: the set of
/// sites usable for coupled (bidirectional UDP-or-TCP) runs matches the
/// paper's §V-C account.
#[test]
fn usable_sites_for_coupled_runs() {
    let sites = paper_federation_sites();
    let gw = Gateway::psc();
    let tcp_usable: Vec<&str> = sites
        .iter()
        .filter(|s| {
            let gateway = if s.has_gateway { Some(&gw) } else { None };
            connect_inbound(s, gateway, Protocol::Tcp).is_ok()
        })
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(
        tcp_usable,
        vec!["NCSA", "SDSC", "PSC", "NGS-Oxford", "NGS-Leeds"],
        "HPCx is the unusable hidden-IP site"
    );
    let udp_usable = sites
        .iter()
        .filter(|s| {
            let gateway = if s.has_gateway { Some(&gw) } else { None };
            connect_inbound(s, gateway, Protocol::Udp).is_ok()
        })
        .count();
    assert_eq!(udp_usable, 4, "PSC additionally drops out for UDP traffic");
}

/// TCP reality check: a smooth interactive frame stream (≈200 kB ×
/// 10 Hz ≈ 16 Mbit/s) fits easily in a single lightpath flow but needs
/// many parallel flows on the lossy commodity path — the GridFTP-era
/// workaround the lightpath makes unnecessary.
#[test]
fn frame_stream_vs_tcp_ceiling() {
    let needed_mbps = 200_000.0 * 8.0 * 10.0 / 1e6; // 10 frames/s
    let lp = QosProfile::TransAtlanticLightpath.link();
    let gp = QosProfile::TransAtlanticCommodity.link();
    // Lightpath single-flow ceiling (~160 Mbit/s at 90 ms RTT, 1e-6
    // loss) clears the 16 Mbit/s stream with wide margin.
    assert!(mathis_throughput_mbps(&lp, DEFAULT_MSS) > 5.0 * needed_mbps);
    let flows = flows_needed(&gp, needed_mbps, DEFAULT_MSS).unwrap();
    assert!(
        flows >= 5,
        "commodity path should need many parallel flows for the frame stream: {flows}"
    );
}
