//! Integration: checkpoint durability through the filesystem — the grid
//! failure story (§V-C-4) depends on snapshots surviving a process, not
//! just a function call.

mod common;

use common::TempDir;
use spice::core::config::Scale;
use spice::core::pipeline::pore_simulation;
use spice::md::checkpoint::{Snapshot, SNAPSHOT_SCHEMA_VERSION};
use spice::md::MdError;

#[test]
fn checkpoint_survives_disk_roundtrip_and_resumes_exactly() {
    let dir = TempDir::new("md_ckpt_roundtrip");
    let path = dir.join("mid-campaign.json");

    // Run, checkpoint to disk, keep running → trajectory A.
    let mut original = pore_simulation(Scale::Test, 77);
    original.run(120, &mut []).unwrap();
    Snapshot::capture(&original, "mid-campaign")
        .save(&path)
        .unwrap();
    original.run(200, &mut []).unwrap();
    let final_a = original.system().positions().to_vec();

    // "Site failure": a brand-new simulation restores from disk and
    // replays the remaining steps → must land on exactly trajectory A.
    let loaded = Snapshot::load(&path).unwrap();
    assert_eq!(loaded.label, "mid-campaign");
    assert_eq!(loaded.step, 120);
    assert_eq!(loaded.schema, SNAPSHOT_SCHEMA_VERSION);
    let mut resumed = pore_simulation(Scale::Test, 77);
    loaded.restore(&mut resumed).unwrap();
    resumed.run(200, &mut []).unwrap();
    assert_eq!(
        resumed.system().positions(),
        final_a.as_slice(),
        "disk-restored replica must be bit-identical"
    );

    // Corrupted checkpoint fails loudly, not silently.
    std::fs::write(&path, b"{ not json").unwrap();
    assert!(Snapshot::load(&path).is_err());

    // A snapshot from a different schema generation fails with the
    // *version* error, not generic corruption.
    std::fs::write(&path, b"{\"step\": 120, \"label\": \"old\"}").unwrap();
    assert!(matches!(
        Snapshot::load(&path),
        Err(MdError::CheckpointVersion {
            found: 0,
            supported: SNAPSHOT_SCHEMA_VERSION,
        })
    ));
}

#[test]
fn snapshots_of_different_phases_are_distinct() {
    let mut sim = pore_simulation(Scale::Test, 3);
    let s0 = Snapshot::capture(&sim, "t0");
    sim.run(100, &mut []).unwrap();
    let s1 = Snapshot::capture(&sim, "t1");
    assert_ne!(s0.system.positions(), s1.system.positions());
    assert_ne!(s0.step, s1.step);
}
