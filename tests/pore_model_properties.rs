//! Property tests on the pore model through the public facade.

use proptest::prelude::*;
use spice::md::forces::ExternalPotential;
use spice::md::Vec3;
use spice::pore::geometry::PoreGeometry;
use spice::pore::potential::{AxialCorrugation, PoreWall, SPECIES_DNA};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lumen radius is positive and bounded everywhere inside the
    /// pore, and infinite (bulk) outside.
    #[test]
    fn radius_profile_sane(z in -50.0f64..150.0) {
        let g = PoreGeometry::alpha_hemolysin();
        let r = g.radius(z);
        if (g.barrel_lo..=g.cap_hi).contains(&z) {
            prop_assert!(r >= g.constriction_radius * 0.5 - 1e-9);
            prop_assert!(r <= g.mouth_radius + g.corrugation_amplitude + 1e-9);
        } else {
            prop_assert!(!r.is_finite());
        }
    }

    /// The wall never pushes a bead outward: the radial force component
    /// always points toward the axis (or vanishes).
    #[test]
    fn wall_force_is_centripetal(
        rho in 0.0f64..30.0,
        angle in 0.0f64..std::f64::consts::TAU,
        z in 0.0f64..100.0,
    ) {
        let wall = PoreWall::new(PoreGeometry::alpha_hemolysin(), 5.0, 2.5);
        let p = Vec3::new(rho * angle.cos(), rho * angle.sin(), z);
        let (e, f) = wall.energy_force(p, SPECIES_DNA);
        prop_assert!(e >= 0.0);
        if rho > 1e-9 {
            let radial = (f.x * p.x + f.y * p.y) / rho;
            prop_assert!(radial <= 1e-9, "outward wall force {radial} at rho={rho}, z={z}");
        }
    }

    /// Wall energy is continuous: nearby points have nearby energies
    /// (no cliffs a bead could fall off numerically).
    #[test]
    fn wall_energy_is_continuous(
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
        z in 1.0f64..99.0,
    ) {
        let wall = PoreWall::new(PoreGeometry::alpha_hemolysin(), 5.0, 2.5);
        let p = Vec3::new(x, y, z);
        let e0 = wall.energy_force(p, SPECIES_DNA).0;
        for d in [Vec3::new(1e-4, 0.0, 0.0), Vec3::new(0.0, 0.0, 1e-4)] {
            let e1 = wall.energy_force(p + d, SPECIES_DNA).0;
            prop_assert!((e1 - e0).abs() < 0.15 * (1.0 + e0), "cliff at {p:?}: {e0} → {e1}");
        }
    }

    /// Corrugation is strictly confined to its windowed region and
    /// bounded by its amplitude.
    #[test]
    fn corrugation_bounded_and_windowed(z in -20.0f64..120.0) {
        let c = AxialCorrugation {
            amplitude: 1.5,
            period: 6.0,
            z_lo: 10.0,
            z_hi: 60.0,
            ramp: 3.0,
        };
        let (e, f) = c.energy_force(Vec3::new(0.3, -0.1, z), SPECIES_DNA);
        prop_assert!(e.abs() <= 1.5 + 1e-9);
        if !(10.0..=60.0).contains(&z) {
            prop_assert_eq!(e, 0.0);
            prop_assert_eq!(f, Vec3::zero());
        }
        prop_assert_eq!(f.x, 0.0, "corrugation is purely axial");
        prop_assert_eq!(f.y, 0.0);
    }
}
