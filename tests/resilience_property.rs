//! Property tests for the fault-tolerant campaign engine: under random
//! failure schedules and every resilience policy, the simulation must
//! conserve processors, account for every job (completed or
//! retry-exhausted), and replay bit-identically under a fixed seed.

use proptest::prelude::*;
use spice::gridsim::campaign::Campaign;
use spice::gridsim::failure::{FailureModel, Outage, OutageCause};
use spice::gridsim::resilience::{run_resilient, ResiliencePolicy, ResilientResult};

/// A randomized campaign: the 72-job production set with a random seed
/// and up to three random outage windows.
fn random_campaign(seed: u64, outages: &[(u32, f64, f64)]) -> Campaign {
    let mut c = Campaign::paper_batch_phase(seed);
    c.outages = outages
        .iter()
        .map(|&(site, start, dur)| {
            Outage::new(site % 6, start, start + dur.max(0.5), OutageCause::Hardware)
        })
        .collect();
    // A few coupled jobs so the gateway path is exercised too.
    for job in c.jobs.iter_mut().step_by(10) {
        job.coupled = true;
    }
    c
}

fn policy(index: u8, failures: FailureModel) -> ResiliencePolicy {
    let mut p = match index % 3 {
        0 => ResiliencePolicy::naive(),
        1 => ResiliencePolicy::retry_only(),
        _ => ResiliencePolicy::checkpoint_failover(),
    };
    p.failures = failures;
    p
}

/// Sweep each site's successful-attempt records and assert concurrent
/// processor demand never exceeds the site's capacity.
fn assert_processor_conservation(r: &ResilientResult, c: &Campaign) {
    for site in &c.federation.sites {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for rec in r.result.records.iter().filter(|rec| rec.site == site.id) {
            events.push((rec.started, i64::from(rec.procs)));
            events.push((rec.finished, -i64::from(rec.procs)));
        }
        // Ends before starts at equal times (a finish frees processors
        // for a same-instant start).
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut in_use = 0i64;
        for (t, delta) in events {
            in_use += delta;
            assert!(
                in_use <= i64::from(site.procs),
                "site {} oversubscribed at t={t}: {in_use} > {} procs",
                site.name,
                site.procs
            );
        }
        assert_eq!(in_use, 0, "site {} sweep must return to idle", site.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Processor conservation + full job accounting under random failure
    /// schedules, for all three policies.
    #[test]
    fn jobs_accounted_and_processors_conserved(
        seed in 0u64..1_000_000,
        pol in 0u8..3,
        crash in 0.0f64..0.2,
        p_launch in 0.0f64..0.5,
        site in 0u32..6,
        start in 0.0f64..60.0,
        dur in 1.0f64..200.0,
    ) {
        let c = random_campaign(seed, &[(site, start, dur)]);
        let failures = FailureModel {
            p_launch,
            p_launch_immature: (p_launch * 2.0).min(0.9),
            crash_rate_per_hour: crash,
            gateway_drop_rate_per_hour: crash,
        };
        let r = run_resilient(&c, &policy(pol, failures));

        // Every job either completed or exhausted its retries.
        prop_assert_eq!(
            r.result.records.len() + r.abandoned.len(),
            c.jobs.len(),
            "jobs lost by the engine"
        );
        let max_retries = policy(pol, failures).retry.max_retries;
        for &job in &r.abandoned {
            let attempts = r.failures.iter().filter(|f| f.job == job).count() as u32;
            prop_assert_eq!(
                attempts,
                max_retries + 1,
                "abandoned job {} did not exhaust its retries", job
            );
        }
        // No record claims more attempts than the policy allows.
        for rec in &r.result.records {
            prop_assert!(rec.attempts <= max_retries + 1);
            prop_assert!(rec.lost_cpu_hours >= 0.0);
            prop_assert!(rec.finished > rec.started);
        }
        // Accounting identities.
        prop_assert!(r.goodput_cpu_hours >= 0.0);
        prop_assert!(r.badput_cpu_hours >= 0.0);

        assert_processor_conservation(&r, &c);
    }

    /// Bit-identical replay: the same campaign under the same policy and
    /// seed produces an identical result, failures and all.
    #[test]
    fn fixed_seed_replays_bit_identically(
        seed in 0u64..1_000_000,
        pol in 0u8..3,
        site in 0u32..6,
        start in 0.0f64..48.0,
        dur in 1.0f64..300.0,
    ) {
        let c = random_campaign(seed, &[(site, start, dur)]);
        let p = policy(pol, FailureModel::sc05());
        let a = run_resilient(&c, &p);
        let b = run_resilient(&c, &p);
        prop_assert_eq!(a, b);
    }
}

/// Deterministic spot-check outside the proptest harness: all three
/// policies on the SC05 scenario account for every job.
#[test]
fn sc05_scenario_accounts_for_all_jobs_under_all_policies() {
    let c = Campaign::sc05_outage_phase(123);
    for p in [
        ResiliencePolicy::naive(),
        ResiliencePolicy::retry_only(),
        ResiliencePolicy::checkpoint_failover(),
    ] {
        let r = run_resilient(&c, &p);
        assert_eq!(r.result.records.len() + r.abandoned.len(), 72);
        assert_processor_conservation(&r, &c);
    }
}
