//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! inputs, not just the curated cases in unit tests.

use proptest::prelude::*;
use spice::gridsim::event::{EventQueue, SimTime};
use spice::gridsim::scheduler::profile::CapacityProfile;
use spice::jarzynski::crooks::bar_free_energy;
use spice::jarzynski::{cumulant_free_energy, jarzynski_free_energy, mean_work};
use spice::md::units::KT_300;
use spice::smd::{segment_trajectory, WorkSample, WorkTrajectory};
use spice::stats::{log_mean_exp, log_sum_exp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Jensen's inequality: the JE estimate never exceeds the mean work,
    /// for any finite work sample.
    #[test]
    fn je_never_exceeds_mean_work(works in prop::collection::vec(-50.0f64..50.0, 1..64)) {
        let je = jarzynski_free_energy(&works, KT_300);
        let mw = mean_work(&works);
        prop_assert!(je <= mw + 1e-9, "JE {je} > mean work {mw}");
    }

    /// The JE estimate is bounded below by min(W) − kT·ln(n).
    #[test]
    fn je_lower_bound(works in prop::collection::vec(-50.0f64..50.0, 1..64)) {
        let je = jarzynski_free_energy(&works, KT_300);
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = min - KT_300 * (works.len() as f64).ln();
        prop_assert!(je >= bound - 1e-9, "JE {je} below bound {bound}");
    }

    /// Cumulant estimate is translation-equivariant: shifting all works by
    /// c shifts the estimate by exactly c.
    #[test]
    fn estimators_translation_equivariant(
        works in prop::collection::vec(-20.0f64..20.0, 2..40),
        shift in -10.0f64..10.0,
    ) {
        let shifted: Vec<f64> = works.iter().map(|w| w + shift).collect();
        let je0 = jarzynski_free_energy(&works, KT_300);
        let je1 = jarzynski_free_energy(&shifted, KT_300);
        prop_assert!((je1 - je0 - shift).abs() < 1e-7);
        let cu0 = cumulant_free_energy(&works, KT_300);
        let cu1 = cumulant_free_energy(&shifted, KT_300);
        prop_assert!((cu1 - cu0 - shift).abs() < 1e-7);
    }

    /// BAR antisymmetry: swapping forward and reverse flips the sign.
    #[test]
    fn bar_antisymmetric(
        fwd in prop::collection::vec(0.0f64..20.0, 4..32),
        rev in prop::collection::vec(-5.0f64..15.0, 4..32),
    ) {
        let a = bar_free_energy(&fwd, &rev, KT_300);
        let b = bar_free_energy(&rev, &fwd, KT_300);
        prop_assert!((a + b).abs() < 0.05, "BAR({a}) and swapped ({b}) must be antisymmetric");
    }

    /// log_sum_exp is permutation-invariant and exp-consistent for small
    /// inputs.
    #[test]
    fn log_sum_exp_properties(mut xs in prop::collection::vec(-30.0f64..30.0, 1..40)) {
        let a = log_sum_exp(&xs);
        xs.reverse();
        let b = log_sum_exp(&xs);
        prop_assert!((a - b).abs() < 1e-9);
        // Monotone up to 1 ulp: a bumped element far below the max moves
        // the true sum by less than f64 rounding of the intermediate
        // exp-sum, so allow an epsilon.
        let mut ys = xs.clone();
        ys[0] += 1.0;
        prop_assert!(log_sum_exp(&ys) >= a - 1e-12);
        // mean-exp ≤ max.
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(log_mean_exp(&xs) <= max + 1e-9);
    }

    /// Segmenting a monotone work trajectory preserves total work over
    /// complete segments and keeps every segment well-formed.
    #[test]
    fn segmentation_invariants(
        slope in -3.0f64..3.0,
        seg_frac in 0.15f64..0.6,
        n in 20usize..200,
    ) {
        let traj = WorkTrajectory {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            seed: 0,
            samples: (0..=n)
                .map(|i| {
                    let s = i as f64 * 10.0 / n as f64;
                    WorkSample { t_ps: s, guide_disp: s, com_disp: s, work: slope * s, force: slope }
                })
                .collect(),
        };
        let seg_len = 10.0 * seg_frac;
        let segs = segment_trajectory(&traj, seg_len);
        let expected = (10.0 / seg_len).floor() as usize;
        prop_assert_eq!(segs.len(), expected);
        for seg in &segs {
            prop_assert!(seg.is_well_formed());
            prop_assert!(seg.samples[0].work.abs() < 1e-9);
        }
        // Each segment's accumulated work matches the slope over the
        // distance between its first and last retained samples (segment
        // boundaries need not align with sample points, and work is
        // re-zeroed at the first retained sample).
        for seg in &segs {
            let first = seg.samples.first().unwrap().guide_disp;
            let last = seg.samples.last().unwrap().guide_disp;
            let expected_work = slope * (last - first);
            prop_assert!(
                (seg.final_work() - expected_work).abs() < 1e-6 + 0.01 * expected_work.abs(),
                "segment work {} vs slope×(last−first) {}",
                seg.final_work(),
                expected_work
            );
        }
    }

    /// Capacity profiles never report a committed window as free and
    /// earliest_start always returns a feasible slot.
    #[test]
    fn capacity_profile_soundness(
        commitments in prop::collection::vec((1u32..50, 0.0f64..20.0, 0.1f64..8.0), 0..12),
        procs in 1u32..50,
        duration in 0.1f64..6.0,
    ) {
        let mut p = CapacityProfile::new(64);
        for (c_procs, start, len) in &commitments {
            if p.fits(*c_procs, *start, start + len) {
                p.commit(*c_procs, *start, start + len);
            }
        }
        if let Some(t) = p.earliest_start(procs, duration, 0.0, &[]) {
            prop_assert!(p.fits(procs, t, t + duration),
                "earliest_start returned infeasible slot t={t}");
        } else {
            prop_assert!(procs > 64);
        }
    }

    /// The event queue is a total order: any mix of times pops sorted,
    /// equal times pop FIFO.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..100.0, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_hours(t), i);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut last_seq_at_t = None::<usize>;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t.hours() >= last_t);
            if t.hours() == last_t {
                if let Some(prev) = last_seq_at_t {
                    prop_assert!(seq > prev, "FIFO violated at t={}", t.hours());
                }
            }
            last_t = t.hours();
            last_seq_at_t = Some(seq);
        }
    }
}
