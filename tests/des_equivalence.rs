//! The indexed DES engine's hard contract: it is the *same simulator*
//! as the seed engine, just faster. The frozen oracle in
//! `gridsim::reference` replays the pre-rework code verbatim; these
//! tests drive both engines over every policy combination on the paper
//! workloads and over randomized synthetic campaigns, and require
//! bit-identical results — records, failure log, goodput/badput
//! accounting, and serialized bytes.
//!
//! The engines intentionally differ in one dimension: the seed engine
//! keeps a redundant poke chain alive per submission, so it processes
//! (many) more wakeup events. Event-stream *diagnostics* — the
//! `grid.des_events` counter, `events_processed`, the event-queue peak,
//! and the campaign track's event-driven clock — therefore differ by
//! design (see DESIGN.md §13), and the tests pin the direction: the
//! indexed engine never processes more events than the seed. Everything
//! observable about the *simulation* (start/finish times, failures,
//! per-job telemetry tracks, site queue peaks) must stay byte-equal.

use proptest::prelude::*;
use spice::gridsim::campaign::Campaign;
use spice::gridsim::des::DispatchPolicy;
use spice::gridsim::reference::run_resilient_reference;
use spice::gridsim::resilience::{run_resilient_with_stats, EngineStats, ResiliencePolicy};
use spice::gridsim::trace::failure_listing;
use spice::telemetry::Telemetry;

const DISPATCHES: [DispatchPolicy; 3] = [
    DispatchPolicy::EarliestCompletion,
    DispatchPolicy::RoundRobin,
    DispatchPolicy::Random,
];

fn policies() -> [(&'static str, ResiliencePolicy); 4] {
    [
        ("none", ResiliencePolicy::none()),
        ("naive", ResiliencePolicy::naive()),
        ("retry_only", ResiliencePolicy::retry_only()),
        (
            "checkpoint_failover",
            ResiliencePolicy::checkpoint_failover(),
        ),
    ]
}

/// Mark a sprinkling of jobs steering-coupled so the gateway-drop and
/// connectivity-filter paths execute.
fn couple_some(c: &mut Campaign) {
    for job in c.jobs.iter_mut().step_by(7) {
        job.coupled = true;
    }
}

/// The engines replay the same site trajectories, so queue high-water
/// marks agree exactly; the indexed engine drops redundant wakeups, so
/// its event count is bounded by the seed's.
fn assert_stats_consistent(new_s: &EngineStats, old_s: &EngineStats) {
    assert_eq!(
        new_s.site_queue_peak, old_s.site_queue_peak,
        "site queue trajectories diverged"
    );
    assert!(
        new_s.events_processed <= old_s.events_processed,
        "indexed engine processed more events ({}) than the seed ({})",
        new_s.events_processed,
        old_s.events_processed
    );
}

/// Both engines, untraced; assert full equality including serialized
/// bytes (serde equality is stricter than PartialEq for f64 payloads:
/// it pins the exact decimal rendering too).
fn assert_engines_agree(campaign: &Campaign, policy: &ResiliencePolicy, dispatch: DispatchPolicy) {
    let off = Telemetry::disabled();
    let (new_r, new_s) = run_resilient_with_stats(campaign, policy, dispatch, &off);
    let (old_r, old_s) = run_resilient_reference(campaign, policy, dispatch, &off);
    assert_eq!(new_r, old_r, "replay diverged under {dispatch:?}");
    assert_stats_consistent(&new_s, &old_s);
    let new_json = serde_json::to_string(&new_r).expect("serialize indexed result");
    let old_json = serde_json::to_string(&old_r).expect("serialize reference result");
    assert_eq!(new_json, old_json, "serialized bytes diverged");
    assert_eq!(
        failure_listing(&new_r, &campaign.federation),
        failure_listing(&old_r, &campaign.federation)
    );
}

/// Every dispatch × resilience policy on the paper batch phase (with
/// coupled jobs) and on the SC05 outage history: bit-identical.
#[test]
fn indexed_engine_matches_seed_engine_on_paper_workloads() {
    for seed in [3u64, 11] {
        let mut batch = Campaign::paper_batch_phase(seed);
        couple_some(&mut batch);
        let mut outage = Campaign::sc05_outage_phase(seed);
        couple_some(&mut outage);
        for campaign in [&batch, &outage] {
            for (name, policy) in &policies() {
                for dispatch in DISPATCHES {
                    eprintln!("seed {seed} policy {name} dispatch {dispatch:?}");
                    assert_engines_agree(campaign, policy, dispatch);
                }
            }
        }
    }
}

/// A JSONL line that derives from the raw event *stream* rather than
/// the simulated trajectory: the campaign track (its clock ticks per
/// popped event) and the event-count diagnostics. Only these may differ
/// between the engines.
fn is_event_stream_line(line: &str) -> bool {
    line.contains("\"track\":\"grid.campaign\"")
        || line.contains("\"name\":\"grid.des_events\"")
        || line.contains("\"name\":\"grid.events_processed\"")
        || line.contains("\"name\":\"grid.event_queue_peak\"")
}

fn trajectory_lines(jsonl: &str) -> Vec<&str> {
    jsonl.lines().filter(|l| !is_event_stream_line(l)).collect()
}

/// Traced replays export byte-identical *trajectory* telemetry from
/// both engines: every per-job track (attempt spans, failures, retries,
/// checkpoint restores), every domain counter, and the site-queue-peak
/// gauge, in the same order. Only the event-stream diagnostics listed
/// in [`is_event_stream_line`] may differ, and the campaign-level
/// instants (outages) inside the campaign track still agree.
#[test]
fn traced_trajectory_telemetry_is_byte_identical_across_engines() {
    let mut campaign = Campaign::sc05_outage_phase(5);
    couple_some(&mut campaign);
    let policy = ResiliencePolicy::checkpoint_failover();
    for dispatch in DISPATCHES {
        let t_new = Telemetry::enabled();
        let (new_r, new_s) = run_resilient_with_stats(&campaign, &policy, dispatch, &t_new);
        let t_old = Telemetry::enabled();
        let (old_r, old_s) = run_resilient_reference(&campaign, &policy, dispatch, &t_old);
        assert_eq!(new_r, old_r);
        assert_stats_consistent(&new_s, &old_s);
        let new_jsonl = t_new.jsonl();
        let old_jsonl = t_old.jsonl();
        assert_eq!(
            trajectory_lines(&new_jsonl),
            trajectory_lines(&old_jsonl),
            "trajectory telemetry diverged"
        );
        // The campaign track still carries the same outage instants.
        let outages = |jsonl: &str| {
            jsonl
                .lines()
                .filter(|l| l.contains("\"name\":\"grid.outage\""))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            outages(&new_jsonl),
            outages(&old_jsonl),
            "outage instants diverged"
        );
        // And the event-stream diagnostics really are present in both.
        assert!(new_jsonl.contains("\"name\":\"grid.des_events\""));
        assert!(old_jsonl.contains("\"name\":\"grid.des_events\""));
    }
}

proptest! {
    // Each case replays a full campaign through two engines — a modest
    // case count covers a lot of event-space.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized synthetic campaigns (outages, coupled jobs,
    /// heavy-tailed runtimes, odd site topologies) replay identically
    /// through both engines under arbitrary policies.
    #[test]
    fn indexed_engine_matches_seed_engine_on_synthetic_campaigns(
        seed in 0u64..1_000_000,
        n_jobs in 1usize..60,
        n_sites in 1usize..9,
        policy_ix in 0usize..4,
        dispatch_ix in 0usize..3,
    ) {
        let campaign = Campaign::synthetic(n_jobs, n_sites, seed);
        let (_, policy) = &policies()[policy_ix];
        let dispatch = DISPATCHES[dispatch_ix];
        let off = Telemetry::disabled();
        let (new_r, new_s) = run_resilient_with_stats(&campaign, policy, dispatch, &off);
        let (old_r, old_s) = run_resilient_reference(&campaign, policy, dispatch, &off);
        prop_assert_eq!(&new_r, &old_r);
        prop_assert_eq!(new_s.site_queue_peak, old_s.site_queue_peak);
        prop_assert!(new_s.events_processed <= old_s.events_processed);
    }
}
