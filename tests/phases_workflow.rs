//! Integration: the paper's three-phase workflow runs end-to-end at Test
//! scale — priming informs the parameter range, the interactive phase
//! measures forces, the batch phase produces the PMF and the grid record.

use spice::core::config::Scale;
use spice::core::phases::{run_batch, run_interactive, run_priming};

#[test]
fn three_phase_workflow_end_to_end() {
    // Phase 1: priming — "helps in choosing the initial range of
    // parameters over which we will try to find the optimal value".
    let priming = run_priming(Scale::Test, 31);
    let (k_lo, k_hi) = priming.kappa_range_pn_per_a;
    assert!(
        k_lo < 100.0 && 100.0 < k_hi,
        "priming must bracket the eventual optimum"
    );

    // Phase 2: interactive — forces and constraints from live steering.
    let interactive = run_interactive(Scale::Test, 32);
    assert!(interactive.peak_haptic_force_pn > 0.0);
    assert!(interactive.lightpath.slowdown() < interactive.commodity.slowdown());

    // Phase 3: batch — production PMF at the chosen optimum plus the
    // federated campaign record.
    let batch = run_batch(Scale::Test, 33);
    let s = batch.summary();
    assert!(
        s.under_a_week,
        "batch phase must finish under a simulated week"
    );
    assert!(
        s.single_site_days > 7.0,
        "the single-site counterfactual exceeds a week"
    );
    assert!(!batch.pmf.curve.points.is_empty());
    assert_eq!(batch.pmf.kappa_pn_per_a, 100.0);
    assert_eq!(batch.pmf.v_label, 12.5);
}

#[test]
fn phases_are_deterministic() {
    assert_eq!(run_priming(Scale::Test, 5), run_priming(Scale::Test, 5));
    assert_eq!(
        run_interactive(Scale::Test, 5),
        run_interactive(Scale::Test, 5)
    );
}
