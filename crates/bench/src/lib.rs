//! # spice-bench
//!
//! Benchmark harness for the SPICE reproduction. Each `benches/bench_*.rs`
//! target regenerates one paper artifact (see DESIGN.md's experiment
//! index) and prints the corresponding report before timing the
//! underlying kernel:
//!
//! | bench              | artifact |
//! |--------------------|----------|
//! | `bench_build`      | F1 (system assembly, radius profile) |
//! | `bench_steering`   | F2 (steering framework round-trips) |
//! | `bench_translocation` | F3 (stretching at the constriction) |
//! | `bench_fig4`       | F4a–d + T-opt (the (κ,v) sweep) |
//! | `bench_subtraj`    | T-subtraj |
//! | `bench_cost`       | T-cost |
//! | `bench_campaign`   | T-batch + T-fail |
//! | `bench_qos`        | T-imd |
//! | `bench_hidden_ip`  | T-hidden |
//! | `bench_reservation`| T-resv |
//! | `bench_ti`         | T-ti |
//! | `bench_jarzynski`  | estimator micro-kernels |
//! | `bench_md_engine`  | MD substrate kernels (forces, neighbor, steps) |
//! | `bench_scaling`    | T-scale (ensemble strong scaling) |
//!
//! Run everything with `cargo bench --workspace`; each target also prints
//! its experiment report so `bench_output.txt` doubles as the
//! paper-vs-measured record.

/// Shared master seed so bench reports match EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 20050512;
