//! Durable-engine overhead, machine-readable: runs the paper batch and
//! a 10⁴-job synthetic campaign with and without the checkpointing
//! layer (DESIGN.md §14), times a mid-campaign kill + cold restore,
//! records snapshot sizes, verifies every durable replay stays
//! bit-identical to the plain engine while timing it, and writes
//! `BENCH_durability.json`.
//!
//! ```sh
//! cargo bench -p spice-bench --bench bench_durability
//! ```
//!
//! There is no exit-code gate: the bit-identity asserts are the gate;
//! the timings are the report (EXPERIMENTS.md T-durable).

use spice_gridsim::campaign::Campaign;
use spice_gridsim::des::DispatchPolicy;
use spice_gridsim::resilience::{run_resilient_with_stats, ResiliencePolicy};
use spice_gridsim::{run_resilient_durable, CrashPlan, DurabilityError, DurableConfig};
use spice_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Instant;

struct Row {
    label: &'static str,
    n_jobs: usize,
    every_events: u64,
    events: u64,
    snapshots_written: u64,
    snapshot_bytes_max: u64,
    wall_plain_s: f64,
    wall_durable_s: f64,
    wall_recover_s: f64,
}

impl Row {
    fn overhead(&self) -> f64 {
        self.wall_durable_s / self.wall_plain_s - 1.0
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spice_bench_dur_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn time_best<R>(rounds: u32, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let r = run();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one round"))
}

fn bench_case(label: &'static str, campaign: &Campaign, every_events: u64, rounds: u32) -> Row {
    let policy = ResiliencePolicy::checkpoint_failover();
    let dispatch = DispatchPolicy::EarliestCompletion;
    let off = Telemetry::disabled();

    let (wall_plain, (plain, stats)) = time_best(rounds, || {
        run_resilient_with_stats(campaign, &policy, dispatch, &off)
    });

    let dir = scratch_dir(label);
    let (wall_durable, outcome) = time_best(rounds, || {
        // Fresh directory every round: leftover generations would turn
        // the next round into a (much cheaper) restore instead of a run.
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DurableConfig {
            every_events,
            ..DurableConfig::new(&dir)
        };
        run_resilient_durable(campaign, &policy, dispatch, &off, &cfg)
            .expect("durable run without a crash plan cannot fail")
    });
    assert_eq!(
        outcome.result, plain,
        "{label}: durable replay diverged from the plain engine"
    );
    let snapshot_bytes_max = std::fs::read_dir(&dir)
        .expect("bench scratch dir readable")
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .max()
        .unwrap_or(0);

    // Kill mid-campaign, then time the cold restart: recovery scan +
    // snapshot load + telemetry replay + the remaining half of the run.
    let kill_at = stats.events_processed / 2;
    let (_, wall_recover) = {
        let _ = std::fs::remove_dir_all(&dir);
        let crash_cfg = DurableConfig {
            every_events,
            crash: CrashPlan::KillAfterEvents(kill_at),
            ..DurableConfig::new(&dir)
        };
        match run_resilient_durable(campaign, &policy, dispatch, &off, &crash_cfg) {
            Err(DurabilityError::InjectedCrash { .. }) => {}
            other => panic!("{label}: expected the injected kill, got {other:?}"),
        }
        let resume_cfg = DurableConfig {
            every_events,
            ..DurableConfig::new(&dir)
        };
        let (wall, resumed) = time_best(1, || {
            run_resilient_durable(campaign, &policy, dispatch, &off, &resume_cfg)
                .expect("recovery run completes")
        });
        assert_eq!(
            resumed.result, plain,
            "{label}: recovered replay diverged from the plain engine"
        );
        // A kill before the first checkpoint boundary legitimately
        // restarts from scratch; past it, recovery must use a snapshot.
        if kill_at >= every_events {
            assert!(
                resumed.recovery.resumed_from.is_some(),
                "{label}: recovery must resume from a snapshot, not restart"
            );
        }
        (resumed, wall)
    };
    let _ = std::fs::remove_dir_all(&dir);

    let row = Row {
        label,
        n_jobs: campaign.jobs.len(),
        every_events,
        events: stats.events_processed,
        snapshots_written: outcome.recovery.snapshots_written,
        snapshot_bytes_max,
        wall_plain_s: wall_plain,
        wall_durable_s: wall_durable,
        wall_recover_s: wall_recover,
    };
    eprintln!(
        "{label:>18}: {:>8} events, every {:>5}: plain {:>7.4}s, durable {:>7.4}s \
         ({:>5.1}% overhead, {} snapshots, max {} B), kill@half+recover {:>7.4}s",
        row.events,
        row.every_events,
        row.wall_plain_s,
        row.wall_durable_s,
        row.overhead() * 100.0,
        row.snapshots_written,
        row.snapshot_bytes_max,
        row.wall_recover_s,
    );
    row
}

fn main() {
    let paper = Campaign::sc05_outage_phase(2005);
    let synth = Campaign::synthetic(10_000, 12, 11);
    let rows = [
        bench_case("paper/64", &paper, 64, 5),
        bench_case("paper/256", &paper, 256, 5),
        bench_case("synthetic-10k/1k", &synth, 1_024, 3),
        bench_case("synthetic-10k/8k", &synth, 8_192, 3),
    ];

    let row_json = |r: &Row| {
        format!(
            "    {{\"label\": \"{}\", \"n_jobs\": {}, \"every_events\": {}, \
             \"events\": {}, \"snapshots_written\": {}, \"snapshot_bytes_max\": {}, \
             \"wall_s_plain\": {:.5}, \"wall_s_durable\": {:.5}, \
             \"wall_s_recover\": {:.5}, \"overhead\": {:.4}}}",
            r.label,
            r.n_jobs,
            r.every_events,
            r.events,
            r.snapshots_written,
            r.snapshot_bytes_max,
            r.wall_plain_s,
            r.wall_durable_s,
            r.wall_recover_s,
            r.overhead(),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"durability\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("{json}");
}
