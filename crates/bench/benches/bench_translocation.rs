//! F3 — translocation stretching at the constriction.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::fig3_translocation;

fn translocation(c: &mut Criterion) {
    let report = fig3_translocation::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("measure_stretch", |b| {
        b.iter(|| fig3_translocation::measure(Scale::Test, 3));
    });
    g.finish();
}

criterion_group!(benches, translocation);
criterion_main!(benches);
