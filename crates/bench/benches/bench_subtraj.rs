//! T-subtraj — sub-trajectory decomposition error study.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::subtrajectory;
use spice_smd::{segment_trajectory, WorkSample, WorkTrajectory};

fn subtraj(c: &mut Criterion) {
    let report = subtrajectory::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("subtraj");
    g.bench_function("segment_1000_samples", |b| {
        let t = WorkTrajectory {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            seed: 0,
            samples: (0..=1000)
                .map(|i| {
                    let s = i as f64 * 0.02;
                    WorkSample {
                        t_ps: s,
                        guide_disp: s,
                        com_disp: s,
                        work: 1.5 * s,
                        force: 1.5,
                    }
                })
                .collect(),
        };
        b.iter(|| segment_trajectory(&t, 5.0));
    });
    g.finish();
}

criterion_group!(benches, subtraj);
criterion_main!(benches);
