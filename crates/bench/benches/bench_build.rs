//! F1 — system assembly and the structural summary.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::fig1_system;
use spice_pore::build::PoreSystemBuilder;
use spice_pore::geometry::PoreGeometry;

fn build(c: &mut Criterion) {
    let report = fig1_system::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("build");
    g.bench_function("assemble_pore_system", |b| {
        b.iter(|| PoreSystemBuilder::new().build());
    });
    g.bench_function("radius_profile_0p1A", |b| {
        let geom = PoreGeometry::alpha_hemolysin();
        b.iter(|| geom.radius_profile(0.1));
    });
    g.finish();
}

criterion_group!(benches, build);
criterion_main!(benches);
