//! F2 — steering framework round-trips: frame publication, control
//! routing, checkpoint capture.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::fig2_steering;
use spice_md::forces::{ForceField, Restraint};
use spice_md::integrate::LangevinBaoab;
use spice_md::{Simulation, System, Topology, Vec3};
use spice_steering::message::ControlMessage;
use spice_steering::service::GridService;
use spice_steering::SteeringHook;

fn small_sim(seed: u64) -> Simulation {
    let mut sys = System::new();
    for i in 0..16 {
        sys.add_particle(Vec3::new(i as f64, 0.0, 0.0), 10.0, 0.0, 0);
    }
    let mut ff = ForceField::new(Topology::new());
    for i in 0..16 {
        ff = ff.with_restraint(Restraint::harmonic(i, Vec3::new(i as f64, 0.0, 0.0), 1.0));
    }
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
        0.01,
    )
}

fn steering(c: &mut Criterion) {
    let report = fig2_steering::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("steering");
    g.bench_function("steered_100_steps", |b| {
        b.iter(|| {
            let service = GridService::shared();
            let mut hook = SteeringHook::attach(service.clone(), 10, vec![0]);
            let mut sim = small_sim(1);
            sim.run(100, &mut [&mut hook]).unwrap()
        });
    });
    g.bench_function("unsteered_100_steps", |b| {
        b.iter(|| {
            let mut sim = small_sim(1);
            sim.run(100, &mut []).unwrap()
        });
    });
    g.bench_function("control_roundtrip", |b| {
        let service = GridService::shared();
        let id = {
            let mut s = service.lock();
            s.register(spice_steering::service::ComponentKind::Simulation)
        };
        b.iter(|| {
            let mut s = service.lock();
            s.send_control(id, ControlMessage::Pause);
            s.poll_control(id)
        });
    });
    g.finish();
}

criterion_group!(benches, steering);
criterion_main!(benches);
