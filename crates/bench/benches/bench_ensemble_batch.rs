//! Batched SoA ensemble throughput, machine-readable: times
//! `run_ensemble_cloned` against `run_ensemble_batched` on the ISSUE-10
//! fixtures (single restrained bead; 12-bead bonded/charged chain) at
//! 64+ replicas, spot-checks that the two paths stay bit-identical, and
//! writes `BENCH_ensemble_batch.json`.
//!
//! ```sh
//! cargo bench -p spice-bench --bench bench_ensemble_batch
//! ```
//!
//! Gate: the best ≥64-replica config must beat the cloned path by the
//! tier floor — ≥5× realizations/sec on AVX-512 (the committed-baseline
//! hardware), with lower floors on narrower ISAs where the lane sweep
//! simply has fewer f64 slots per vector (2.5× AVX2, 1.2× generic). The
//! bit-identity assert has no floor anywhere: both paths must produce
//! the same f64 bits on every sample.

use spice_md::batch::simd_tier_name;
use spice_md::forces::nonbonded::{LjParams, NonBonded};
use spice_md::forces::Restraint;
use spice_md::integrate::LangevinBaoab;
use spice_md::{ForceField, Simulation, System, Topology, Vec3};
use spice_smd::{run_ensemble_batched, run_ensemble_cloned, PullProtocol};
use spice_stats::rng::SeedSequence;
use std::time::Instant;

const BENCH_SEED: u64 = 20050512;
const DECORRELATION_STEPS: u64 = 60;

/// Single restrained bead: the minimal SMD system. Per-step work is
/// almost pure integrator + spring, so this row isolates the lane-sweep
/// win on the BAOAB kernel itself.
fn bead_factory(seed: u64) -> Simulation {
    let mut sys = System::new();
    sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
    let mut topo = Topology::new();
    topo.set_group("smd", vec![0]);
    let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.01,
    )
}

/// 12-bead bonded, charged chain with WCA + Debye–Hückel non-bonded
/// terms — the standard-pore-sized workload where the shared tiered
/// pair list amortizes across all lanes.
fn chain_factory(seed: u64) -> Simulation {
    let mut sys = System::new();
    let mut topo = Topology::new();
    for i in 0..12usize {
        let f = i as f64;
        sys.add_particle(
            Vec3::new(
                f * 1.1 + 0.05 * (f * 0.7).sin(),
                0.2 * (f * 1.3).cos(),
                0.1 * f,
            ),
            15.0,
            if i % 3 == 0 { 0.0 } else { -1.0 },
            0,
        );
        if i > 0 {
            topo.add_harmonic_bond(i - 1, i, 1.1, 40.0);
        }
        if i > 1 {
            topo.add_angle(i - 2, i - 1, i, 2.6, 6.0);
        }
    }
    topo.set_group("smd", (0..12).collect());
    let anchor = sys.positions()[0];
    let ff = ForceField::new(topo)
        .with_nonbonded(
            NonBonded::new(LjParams::wca(1.0, 0.8), 4.0, 0.4).with_debye_huckel(3.0, 80.0),
        )
        .with_restraint(Restraint::harmonic(0, anchor, 5.0));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.01,
    )
}

fn proto() -> PullProtocol {
    PullProtocol {
        kappa_pn_per_a: 300.0,
        v_a_per_ns: 2000.0,
        pull_distance: 4.0,
        dt_ps: 0.01,
        equilibration_steps: 200,
        sample_stride: 20,
    }
}

fn time_best(rounds: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    label: &'static str,
    replicas: usize,
    steps_per_realization: u64,
    wall_s_cloned: f64,
    wall_s_batched: f64,
}

impl Row {
    fn per_sec_cloned(&self) -> f64 {
        self.replicas as f64 / self.wall_s_cloned
    }
    fn per_sec_batched(&self) -> f64 {
        self.replicas as f64 / self.wall_s_batched
    }
    fn ratio(&self) -> f64 {
        self.wall_s_cloned / self.wall_s_batched
    }
}

fn bench_case(
    label: &'static str,
    factory: fn(u64) -> Simulation,
    replicas: usize,
    rounds: u32,
) -> Row {
    let p = proto();
    let wall_s_cloned = time_best(rounds, || {
        let r = run_ensemble_cloned(
            factory,
            &p,
            replicas,
            SeedSequence::new(BENCH_SEED),
            DECORRELATION_STEPS,
        );
        assert!(
            r.iter().all(Result::is_ok),
            "{label}: cloned realization failed"
        );
    });
    let wall_s_batched = time_best(rounds, || {
        let r = run_ensemble_batched(
            factory,
            &p,
            replicas,
            SeedSequence::new(BENCH_SEED),
            DECORRELATION_STEPS,
        );
        assert!(
            r.iter().all(Result::is_ok),
            "{label}: batched realization failed"
        );
    });
    let row = Row {
        label,
        replicas,
        steps_per_realization: p.equilibration_steps + DECORRELATION_STEPS + p.pull_steps(),
        wall_s_cloned,
        wall_s_batched,
    };
    eprintln!(
        "{label:>10}: {replicas:>3} replicas × {} steps: cloned {:>8.2}/s, batched {:>8.2}/s — {:.2}x",
        row.steps_per_realization,
        row.per_sec_cloned(),
        row.per_sec_batched(),
        row.ratio(),
    );
    row
}

/// The contract the throughput comparison rests on: per-seed work
/// distributions from the two paths are the same bits.
fn assert_bit_identical(factory: fn(u64) -> Simulation, n: usize) {
    let p = proto();
    let cloned = run_ensemble_cloned(
        factory,
        &p,
        n,
        SeedSequence::new(BENCH_SEED),
        DECORRELATION_STEPS,
    );
    let batched = run_ensemble_batched(
        factory,
        &p,
        n,
        SeedSequence::new(BENCH_SEED),
        DECORRELATION_STEPS,
    );
    assert_eq!(cloned.len(), batched.len());
    for (l, (c, b)) in cloned.iter().zip(&batched).enumerate() {
        let (c, b) = (
            c.as_ref().expect("cloned ok"),
            b.as_ref().expect("batched ok"),
        );
        assert_eq!(c.seed, b.seed, "replica {l} seed");
        assert_eq!(
            c.samples, b.samples,
            "replica {l}: work samples must be bit-identical"
        );
    }
}

fn main() {
    let tier = simd_tier_name();
    // The committed baseline is produced on AVX-512; narrower ISAs get
    // proportionally lower floors (8 → 4 → 1 f64 lanes per vector).
    let gate_ratio_min = match tier {
        "avx512" => 5.0,
        "avx2" => 2.5,
        _ => 1.2,
    };

    assert_bit_identical(bead_factory, 8);
    assert_bit_identical(chain_factory, 8);
    eprintln!("bit-identity spot checks passed (bead + chain, 8 replicas)");

    let rows = [
        bench_case("bead/64", bead_factory, 64, 5),
        bench_case("bead/128", bead_factory, 128, 5),
        bench_case("chain12/64", chain_factory, 64, 5),
    ];

    let best = rows
        .iter()
        .filter(|r| r.replicas >= 64)
        .map(|r| r.ratio())
        .fold(0.0f64, f64::max);
    let gate_met = best >= gate_ratio_min;

    let row_json = |r: &Row| {
        format!(
            "    {{\"label\": \"{}\", \"replicas\": {}, \"steps_per_realization\": {}, \
             \"wall_s_cloned\": {:.5}, \"wall_s_batched\": {:.5}, \
             \"realizations_per_sec_cloned\": {:.1}, \"realizations_per_sec_batched\": {:.1}, \
             \"speedup_ratio\": {:.3}}}",
            r.label,
            r.replicas,
            r.steps_per_realization,
            r.wall_s_cloned,
            r.wall_s_batched,
            r.per_sec_cloned(),
            r.per_sec_batched(),
            r.ratio(),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"ensemble_batch\",\n  \"simd_tier\": \"{tier}\",\n  \
         \"gate_ratio_min\": {gate_ratio_min:.1},\n  \"rows\": [\n{}\n  ],\n  \
         \"best_ratio\": {best:.3},\n  \"bit_identical\": true,\n  \"gate_met\": {gate_met}\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_ensemble_batch.json", &json).expect("write BENCH_ensemble_batch.json");
    println!("{json}");

    if !gate_met {
        eprintln!("FAIL: best ≥64-replica speedup {best:.2}x is below the {gate_ratio_min:.1}x {tier} floor");
        std::process::exit(1);
    }
}
