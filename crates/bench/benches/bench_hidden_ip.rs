//! T-hidden — hidden-IP addressability and gateway bottleneck.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_core::experiments::hidden_ip;
use spice_gridsim::hidden_ip::{effective_path, Gateway};
use spice_gridsim::network::QosProfile;

fn hidden(c: &mut Criterion) {
    let report = hidden_ip::run();
    println!("{}", report.render());

    let mut g = c.benchmark_group("hidden_ip");
    g.bench_function("gateway_sweep", |b| {
        b.iter(hidden_ip::gateway_bottleneck_sweep);
    });
    g.bench_function("routed_message_1MB", |b| {
        let gw = Gateway::psc();
        let base = QosProfile::TransAtlanticLightpath.link();
        let path = effective_path(base, Some((&gw, 64)));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            path.message_time_ms(1_000_000, 5, n)
        });
    });
    g.finish();
}

criterion_group!(benches, hidden);
criterion_main!(benches);
