//! T-cost — the cost model (fast analytic kernels; the report is the
//! artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use spice_core::costing::{CostModel, SmdJeCosting};
use spice_core::experiments::cost_model;

fn cost(c: &mut Criterion) {
    let report = cost_model::run();
    println!("{}", report.render());

    let mut g = c.benchmark_group("cost_model");
    g.bench_function("full_model", |b| {
        b.iter(|| {
            let m = CostModel::paper();
            let c = SmdJeCosting::paper();
            (
                m.vanilla_cpu_hours(10.0),
                m.min_procs_for_interactivity(1.0, 10),
                c.reduction_factor(&m),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, cost);
criterion_main!(benches);
