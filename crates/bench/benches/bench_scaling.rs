//! T-scale — §VI: "there is no theoretical limit to how well our approach
//! scales; the only constraint is the availability of computational
//! resources." Strong scaling of the realization ensemble over thread
//! counts (the in-process analogue of adding grid sites).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spice_core::config::Scale;
use spice_core::pipeline::pore_simulation;
use spice_smd::run_ensemble;
use spice_stats::rng::SeedSequence;

fn scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ensemble_strong_scaling");
    g.sample_size(10);
    let protocol = Scale::Test.protocol(100.0, 100.0);
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("8_realizations", threads),
            &threads,
            |b, &threads| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                b.iter(|| {
                    pool.install(|| {
                        run_ensemble(
                            |seed| pore_simulation(Scale::Test, seed),
                            &protocol,
                            8,
                            SeedSequence::new(3),
                        )
                    })
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
