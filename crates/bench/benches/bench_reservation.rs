//! T-resv — reservation workflows and co-allocation decay.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::experiments::reservations;
use spice_gridsim::federation::Federation;
use spice_gridsim::scheduler::reservation::ManualBookingModel;

fn reservation(c: &mut Criterion) {
    let report = reservations::run(BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("booking");
    g.bench_function("manual_10k", |b| {
        let m = ManualBookingModel::paper_manual();
        b.iter(|| m.expected(10_000, 3));
    });
    g.bench_function("co_schedule_10k", |b| {
        let fed = Federation::paper_us_uk();
        let m = ManualBookingModel::paper_manual();
        b.iter(|| fed.co_schedule_success_rate(&m, 10_000, 4));
    });
    g.finish();
}

criterion_group!(benches, reservation);
criterion_main!(benches);
