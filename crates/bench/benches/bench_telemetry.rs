//! Telemetry overhead gate, machine-readable: proves the disabled
//! telemetry handle adds < 2% to the MD hot path and quantifies the cost
//! of a fully enabled handle, then writes `BENCH_telemetry.json` so CI
//! can enforce the "instrumentation is free unless you turn it on"
//! contract from DESIGN.md §12.
//!
//! Three arms, interleaved round-robin so machine noise hits all arms
//! equally, best-of-N throughput per arm (best-of filters scheduler
//! jitter, which is the only thing that differs between repeats of a
//! deterministic simulation):
//!
//! * **plain** — no telemetry anywhere (the default production path);
//! * **disabled** — `Telemetry::disabled()` attached, i.e. the exact
//!   path every `*_traced` delegation takes: one `Option` check per
//!   step;
//! * **enabled** — live handle with a track, bound kernel counters and
//!   an installed force-eval probe (the worst realistic case).
//!
//! The gate compares plain vs disabled. Exits nonzero when the gate
//! fails, so `cargo bench -p spice-bench --bench bench_telemetry` is a
//! CI check, not just a report.
//!
//! ```sh
//! cargo bench -p spice-bench --bench bench_telemetry
//! ```

use spice_md::forces::{ForceField, LjParams, NonBonded, Restraint};
use spice_md::integrate::LangevinBaoab;
use spice_md::{Simulation, System, Topology, Vec3};
use spice_telemetry::{ProbePoint, Telemetry};
use std::time::Instant;

/// Maximum tolerated slowdown of the disabled-telemetry path, percent.
const GATE_OVERHEAD_PCT: f64 = 2.0;

/// The same n-bead charged chain as `bench_md_engine`, so the numbers
/// here are directly comparable to PR 1's `BENCH_md_engine.json`.
fn chain_parts(n: usize) -> (System, Topology) {
    let mut sys = System::new();
    let side = (n as f64).cbrt().ceil().max(2.0) as usize;
    for i in 0..n {
        let p = Vec3::new(
            (i % side) as f64 * 6.5,
            ((i / side) % side) as f64 * 6.5,
            (i / (side * side)) as f64 * 6.5,
        );
        sys.add_particle(p, 330.0, if i % 2 == 0 { -1.0 } else { 0.0 }, 1);
    }
    let mut topo = Topology::new();
    for i in 0..n - 1 {
        topo.add_harmonic_bond(i, i + 1, 6.5, 5.0);
    }
    topo.set_group("smd", (0..n).collect());
    (sys, topo)
}

fn chain_simulation(n: usize, seed: u64) -> Simulation {
    let (sys, topo) = chain_parts(n);
    let positions: Vec<Vec3> = sys.positions().to_vec();
    let mut ff = ForceField::new(topo).with_nonbonded(
        NonBonded::new(LjParams::wca(6.0, 0.5), 13.0, 1.0).with_debye_huckel(3.04, 78.0),
    );
    for (i, p) in positions.iter().enumerate() {
        ff = ff.with_restraint(Restraint::harmonic(i, *p, 0.5));
    }
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.01,
    )
}

#[derive(Clone, Copy)]
enum Arm {
    Plain,
    Disabled,
    Enabled,
}

/// Steps/sec through the full integration loop under one arm.
fn time_steps(n: usize, steps: u64, arm: Arm) -> f64 {
    let mut sim = chain_simulation(n, 1);
    // Keep the enabled handle alive across the run; dropped at the end.
    let telemetry = match arm {
        Arm::Plain => None,
        Arm::Disabled => {
            let t = Telemetry::disabled();
            let track = t.track("bench.md", 0);
            sim.attach_telemetry(&t, track);
            Some(t)
        }
        Arm::Enabled => {
            let t = Telemetry::enabled();
            let track = t.track("bench.md", 0);
            sim.attach_telemetry(&t, track);
            sim.force_field().bind_telemetry(&t);
            // Worst realistic case: a handler actually installed at the
            // per-step probe point.
            let c = t.counter("bench.probe_hits");
            t.on_probe(ProbePoint::ForceEval, move |_| c.incr());
            Some(t)
        }
    };
    sim.run(50, &mut []).expect("warm-up");
    let t0 = Instant::now();
    sim.run(steps, &mut []).expect("timed run");
    let sps = steps as f64 / t0.elapsed().as_secs_f64();
    drop(telemetry);
    sps
}

/// Pure force-kernel throughput (no telemetry touches this loop at
/// all): evals/sec, for the cross-check against PR 1's baseline file.
fn time_force_evals(n: usize, iters: u64) -> f64 {
    let (mut sys, topo) = chain_parts(n);
    let mut ff = ForceField::new(topo).with_nonbonded(
        NonBonded::new(LjParams::wca(6.0, 0.5), 13.0, 1.0).with_debye_huckel(3.04, 78.0),
    );
    for _ in 0..100 {
        ff.evaluate(&mut sys);
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        ff.evaluate(&mut sys);
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

struct Row {
    n_beads: usize,
    sps_plain: f64,
    sps_disabled: f64,
    sps_enabled: f64,
}

impl Row {
    fn disabled_overhead_pct(&self) -> f64 {
        (1.0 - self.sps_disabled / self.sps_plain) * 100.0
    }
    fn enabled_overhead_pct(&self) -> f64 {
        (1.0 - self.sps_enabled / self.sps_plain) * 100.0
    }
}

/// PR 1's recorded 12-bead tiered kernel throughput, if the baseline
/// file is reachable from the current working directory.
fn baseline_evals_per_sec() -> Option<f64> {
    for path in ["crates/bench/BENCH_md_engine.json", "BENCH_md_engine.json"] {
        if let Ok(text) = std::fs::read_to_string(path) {
            // First kernel row is the 12-bead one.
            let key = "\"force_evals_per_sec_tiered\": ";
            if let Some(at) = text.find(key) {
                let rest = &text[at + key.len()..];
                let end = rest
                    .find(|c: char| c != '.' && !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                if let Ok(v) = rest[..end].parse::<f64>() {
                    return Some(v);
                }
            }
        }
    }
    None
}

fn main() {
    let mut rows = Vec::new();
    for &n in &[12usize, 256] {
        let (steps, rounds) = if n <= 64 { (100_000, 5) } else { (4_000, 3) };
        let (mut plain, mut disabled, mut enabled) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..rounds {
            plain = plain.max(time_steps(n, steps, Arm::Plain));
            disabled = disabled.max(time_steps(n, steps, Arm::Disabled));
            enabled = enabled.max(time_steps(n, steps, Arm::Enabled));
        }
        let row = Row {
            n_beads: n,
            sps_plain: plain,
            sps_disabled: disabled,
            sps_enabled: enabled,
        };
        eprintln!(
            "n={n}: steps/sec plain {plain:.0}, disabled-attached {disabled:.0} \
             ({:+.2}%), enabled {enabled:.0} ({:+.2}%)",
            row.disabled_overhead_pct(),
            row.enabled_overhead_pct()
        );
        rows.push(row);
    }

    let evals_12 = time_force_evals(12, 300_000);
    let baseline = baseline_evals_per_sec();
    let baseline_ratio = baseline.map(|b| evals_12 / b);

    // Gate: the disabled handle must be free (< 2% on every size).
    let overhead_ok = rows
        .iter()
        .all(|r| r.disabled_overhead_pct() < GATE_OVERHEAD_PCT);

    let row_json = |r: &Row| {
        format!(
            "    {{\"n_beads\": {}, \"steps_per_sec_plain\": {:.1}, \
             \"steps_per_sec_disabled\": {:.1}, \"steps_per_sec_enabled\": {:.1}, \
             \"disabled_overhead_pct\": {:.3}, \"enabled_overhead_pct\": {:.3}}}",
            r.n_beads,
            r.sps_plain,
            r.sps_disabled,
            r.sps_enabled,
            r.disabled_overhead_pct(),
            r.enabled_overhead_pct(),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"gate_overhead_pct_max\": {GATE_OVERHEAD_PCT:.1},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"force_evals_per_sec_12_bead\": {evals_12:.1},\n  \
         \"baseline_force_evals_per_sec_12_bead\": {},\n  \
         \"force_evals_vs_baseline_ratio\": {},\n  \
         \"overhead_ok\": {overhead_ok}\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
        baseline.map_or("null".to_string(), |b| format!("{b:.1}")),
        baseline_ratio.map_or("null".to_string(), |r| format!("{r:.3}")),
    );
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    println!("{json}");

    if !overhead_ok {
        eprintln!("FAIL: disabled-telemetry overhead exceeds {GATE_OVERHEAD_PCT}%");
        std::process::exit(1);
    }
}
