//! Jarzynski analysis kernels: exponential averaging, PMF assembly,
//! bootstrap error bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spice_jarzynski::error::statistical::pmf_bootstrap_sigma;
use spice_jarzynski::pmf::{Estimator, PmfCurve};
use spice_jarzynski::{cumulant_free_energy, jarzynski_free_energy};
use spice_md::rng::GaussianStream;
use spice_md::units::KT_300;
use spice_smd::{WorkSample, WorkTrajectory};

fn works(n: usize) -> Vec<f64> {
    let g = GaussianStream::new(1);
    (0..n).map(|i| 5.0 + 2.0 * g.sample(i as u64, 0)).collect()
}

fn ensemble(n: usize) -> Vec<WorkTrajectory> {
    let g = GaussianStream::new(2);
    (0..n)
        .map(|r| WorkTrajectory {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            seed: r as u64,
            samples: (0..=100)
                .map(|i| {
                    let s = i as f64 * 0.1;
                    WorkSample {
                        t_ps: s,
                        guide_disp: s,
                        com_disp: s,
                        work: 2.0 * s + 0.3 * g.sample(r as u64, i),
                        force: 2.0,
                    }
                })
                .collect(),
        })
        .collect()
}

fn jarzynski(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimators");
    for &n in &[100usize, 10_000] {
        let w = works(n);
        g.bench_with_input(BenchmarkId::new("jarzynski", n), &n, |b, _| {
            b.iter(|| jarzynski_free_energy(&w, KT_300));
        });
        g.bench_with_input(BenchmarkId::new("cumulant", n), &n, |b, _| {
            b.iter(|| cumulant_free_energy(&w, KT_300));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("pmf");
    let ens = ensemble(64);
    g.bench_function("estimate_64x100", |b| {
        b.iter(|| PmfCurve::estimate(&ens, 10.0, 21, KT_300, Estimator::Jarzynski));
    });
    g.sample_size(10);
    g.bench_function("bootstrap_200", |b| {
        b.iter(|| pmf_bootstrap_sigma(&ens, 10.0, 21, KT_300, Estimator::Jarzynski, 200, 9));
    });
    g.finish();
}

criterion_group!(benches, jarzynski);
criterion_main!(benches);
