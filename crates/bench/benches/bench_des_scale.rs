//! Federated-DES scale gate, machine-readable: drives the indexed
//! resilient engine and the frozen seed-engine oracle over campaigns
//! from the paper's 72 jobs up to 10⁶ synthetic jobs, records wall-clock
//! and events/sec for both, verifies the replays stay bit-identical
//! while timing them, and writes `BENCH_des_scale.json`.
//!
//! The two engines simulate identical trajectories but process
//! different event counts: the seed keeps one poke chain alive per
//! submission (quadratic in campaign size), the indexed engine
//! coalesces the duplicate `(time, site)` pokes into one event with a
//! multiplicity — see DESIGN.md §13. Comparing raw events/sec across
//! different event
//! streams would be meaningless, so the per-tier `speedup` is the
//! replay speedup `wall_seed / wall_indexed`: equivalently, the rate at
//! which the indexed engine retires the *seed's* event workload,
//! divided by the seed's own rate.
//!
//! The gate: at the 10⁴-job tier the indexed engine must replay the
//! campaign ≥ 10× faster than the seed engine. Exits nonzero when the
//! gate fails, so this bench is a CI check, not just a report.
//!
//! ```sh
//! cargo bench -p spice-bench --bench bench_des_scale          # full, up to 10⁶ jobs
//! cargo bench -p spice-bench --bench bench_des_scale -- smoke # CI: stop at 10⁴
//! ```
//!
//! The seed oracle is only run up to 10⁴ jobs — its quadratic event
//! count makes 10⁵ jobs a coffee-break, which is the point of the
//! rework.

use spice_gridsim::campaign::Campaign;
use spice_gridsim::des::DispatchPolicy;
use spice_gridsim::reference::run_resilient_reference;
use spice_gridsim::resilience::{run_resilient_with_stats, EngineStats, ResiliencePolicy};
use spice_telemetry::Telemetry;
use std::time::Instant;

/// Minimum indexed-over-seed replay speedup at the gate tier.
const GATE_SPEEDUP_MIN: f64 = 10.0;
/// Campaign size whose speedup is the CI gate.
const GATE_TIER: usize = 10_000;

struct Row {
    n_jobs: usize,
    n_sites: usize,
    events_new: u64,
    events_old: Option<u64>,
    wall_new_s: f64,
    wall_old_s: Option<f64>,
}

impl Row {
    /// Replay speedup: how much faster the indexed engine finishes the
    /// same campaign (= seed-workload events/sec over the seed's rate).
    fn speedup(&self) -> Option<f64> {
        self.wall_old_s.map(|old| old / self.wall_new_s)
    }

    fn events_per_sec_new(&self) -> f64 {
        self.events_new as f64 / self.wall_new_s
    }

    fn events_per_sec_old(&self) -> Option<f64> {
        match (self.events_old, self.wall_old_s) {
            (Some(e), Some(w)) => Some(e as f64 / w),
            _ => None,
        }
    }
}

fn campaign_for(n_jobs: usize) -> Campaign {
    if n_jobs == 72 {
        // The paper's own production batch, not a synthetic lookalike.
        Campaign::paper_batch_phase(11)
    } else {
        Campaign::synthetic(n_jobs, 12, 11)
    }
}

/// Best-of-N wall-clock for one engine over one campaign; returns the
/// result of the last run so the caller can cross-check replays.
fn time_engine<R>(rounds: u32, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let r = run();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one round"))
}

fn bench_tier(n_jobs: usize, run_reference: bool) -> Row {
    let campaign = campaign_for(n_jobs);
    let policy = ResiliencePolicy::checkpoint_failover();
    let dispatch = DispatchPolicy::EarliestCompletion;
    let off = Telemetry::disabled();
    let rounds = if n_jobs >= 100_000 { 1 } else { 3 };

    let (wall_new, (new_r, new_s)): (f64, (_, EngineStats)) = time_engine(rounds, || {
        run_resilient_with_stats(&campaign, &policy, dispatch, &off)
    });

    let (wall_old, events_old) = if run_reference {
        let (wall_old, (old_r, old_s)) = time_engine(rounds, || {
            run_resilient_reference(&campaign, &policy, dispatch, &off)
        });
        assert_eq!(new_r, old_r, "{n_jobs}-job replay diverged between engines");
        assert_eq!(
            new_s.site_queue_peak, old_s.site_queue_peak,
            "{n_jobs}-job site queue trajectories diverged"
        );
        assert!(
            new_s.events_processed <= old_s.events_processed,
            "{n_jobs}-job indexed engine processed more events than the seed"
        );
        (Some(wall_old), Some(old_s.events_processed))
    } else {
        (None, None)
    };

    let row = Row {
        n_jobs,
        n_sites: campaign.federation.sites.len(),
        events_new: new_s.events_processed,
        events_old,
        wall_new_s: wall_new,
        wall_old_s: wall_old,
    };
    eprintln!(
        "jobs {n_jobs:>7}: indexed {:>10} events {:>8.3}s ({:>12.0} ev/s){}",
        row.events_new,
        row.wall_new_s,
        row.events_per_sec_new(),
        match (row.events_old, row.wall_old_s, row.speedup()) {
            (Some(e), Some(w), Some(s)) => format!(
                ", seed {e:>11} events {w:>8.3}s ({:>12.0} ev/s), speedup {s:.1}x",
                row.events_per_sec_old().expect("seed timed")
            ),
            _ => String::from(", seed skipped"),
        }
    );
    row
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let tiers: &[usize] = if smoke {
        &[72, 1_000, 10_000]
    } else {
        &[72, 1_000, 10_000, 100_000, 1_000_000]
    };

    let rows: Vec<Row> = tiers
        .iter()
        .map(|&n| bench_tier(n, n <= GATE_TIER))
        .collect();

    let gate_row = rows
        .iter()
        .find(|r| r.n_jobs == GATE_TIER)
        .expect("gate tier always runs");
    let speedup = gate_row.speedup().expect("gate tier times both engines");
    let speedup_ok = speedup >= GATE_SPEEDUP_MIN;

    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let row_json = |r: &Row| {
        format!(
            "    {{\"n_jobs\": {}, \"n_sites\": {}, \
             \"events_indexed\": {}, \"events_seed\": {}, \
             \"wall_s_indexed\": {:.4}, \"wall_s_seed\": {}, \
             \"events_per_sec_indexed\": {:.1}, \"events_per_sec_seed\": {}, \
             \"speedup\": {}}}",
            r.n_jobs,
            r.n_sites,
            r.events_new,
            opt_u64(r.events_old),
            r.wall_new_s,
            r.wall_old_s
                .map_or("null".to_string(), |w| format!("{w:.4}")),
            r.events_per_sec_new(),
            r.events_per_sec_old()
                .map_or("null".to_string(), |e| format!("{e:.1}")),
            r.speedup()
                .map_or("null".to_string(), |s| format!("{s:.2}")),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"des_scale\",\n  \"smoke\": {smoke},\n  \
         \"gate_tier_jobs\": {GATE_TIER},\n  \
         \"gate_speedup_min\": {GATE_SPEEDUP_MIN:.1},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"gate_speedup\": {speedup:.2},\n  \
         \"speedup_ok\": {speedup_ok}\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_des_scale.json", &json).expect("write BENCH_des_scale.json");
    println!("{json}");

    if !speedup_ok {
        eprintln!(
            "FAIL: indexed engine replays the {GATE_TIER}-job campaign only \
             {speedup:.2}x faster than the seed engine (gate: {GATE_SPEEDUP_MIN}x)"
        );
        std::process::exit(1);
    }
}
