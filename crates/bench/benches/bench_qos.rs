//! T-imd — interactive MD slowdown vs network QoS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::imd_qos;
use spice_gridsim::network::{Path, QosProfile};
use spice_steering::imd::{simulate_session, ImdConfig};

fn qos(c: &mut Criterion) {
    let report = imd_qos::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("imd_session");
    for (name, profile) in [
        ("lightpath", QosProfile::TransAtlanticLightpath),
        ("commodity", QosProfile::TransAtlanticCommodity),
        ("lan", QosProfile::Lan),
    ] {
        g.bench_with_input(BenchmarkId::new("simulate", name), &profile, |b, &p| {
            let path = Path::new(vec![p.link()]);
            let cfg = ImdConfig::default();
            b.iter(|| simulate_session(&cfg, &path, &path));
        });
    }
    g.finish();
}

criterion_group!(benches, qos);
criterion_main!(benches);
