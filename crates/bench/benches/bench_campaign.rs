//! T-batch / T-fail — the 72-simulation campaign on the federation.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::experiments::campaign as campaign_exp;
use spice_gridsim::campaign::Campaign;
use spice_gridsim::des::run_des;
use spice_gridsim::federation::Federation;

fn campaign(c: &mut Criterion) {
    let report = campaign_exp::run(BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("campaign");
    g.bench_function("federated_72_jobs", |b| {
        b.iter(|| Campaign::paper_batch_phase(7).run());
    });
    g.bench_function("des_execution_72_jobs", |b| {
        let c = Campaign::paper_batch_phase(7);
        b.iter(|| run_des(&c));
    });
    g.bench_function("single_site_72_jobs", |b| {
        b.iter(|| {
            let mut one = Campaign::paper_batch_phase(7);
            one.federation = Federation::paper_us_uk().restricted(&[0]);
            one.run()
        });
    });
    g.finish();
}

criterion_group!(benches, campaign);
criterion_main!(benches);
