//! F4 — the Fig. 4 (κ, v) sweep. Prints the full report once (the
//! paper-vs-measured record), then times a representative cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::fig4_pmf;
use spice_core::pipeline::run_cell;
use spice_stats::rng::SeedSequence;

fn fig4(c: &mut Criterion) {
    // One full sweep, printed: this is the artifact regeneration.
    let report = fig4_pmf::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());

    let mut g = c.benchmark_group("fig4_cell");
    g.sample_size(10);
    for &(kappa, v) in &[(10.0, 100.0), (100.0, 100.0), (1000.0, 100.0)] {
        g.bench_with_input(
            BenchmarkId::new("run_cell", format!("k{kappa}_v{v}")),
            &(kappa, v),
            |b, &(kappa, v)| {
                b.iter(|| run_cell(Scale::Test, kappa, v, SeedSequence::new(1)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
