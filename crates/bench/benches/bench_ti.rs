//! T-ti — thermodynamic-integration extension.

use criterion::{criterion_group, criterion_main, Criterion};
use spice_bench::BENCH_SEED;
use spice_core::config::Scale;
use spice_core::experiments::{bidirectional, ti_extension};
use spice_core::pipeline::pore_simulation;
use spice_core::ti::ti_profile;
use spice_stats::rng::SeedSequence;

fn ti(c: &mut Criterion) {
    let report = ti_extension::run(Scale::Bench, BENCH_SEED);
    println!("{}", report.render());
    // T-bidir shares the §VI "other methods" theme; its report lives here.
    println!("{}", bidirectional::run(Scale::Bench, BENCH_SEED).render());

    let mut g = c.benchmark_group("ti");
    g.sample_size(10);
    g.bench_function("profile_5_windows", |b| {
        b.iter(|| {
            ti_profile(
                |seed| pore_simulation(Scale::Test, seed),
                Scale::Test,
                4.0,
                5,
                100.0,
                SeedSequence::new(2),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, ti);
criterion_main!(benches);
