//! MD substrate kernels: force evaluation, neighbor search, Langevin
//! steps — the per-step cost everything else multiplies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spice_md::forces::{ForceField, LjParams, NonBonded};
use spice_md::integrate::LangevinBaoab;
use spice_md::neighbor::{brute_force_pairs, CellList};
use spice_md::{Simulation, System, Topology, Vec3};

fn dense_system(n: usize) -> System {
    let mut sys = System::new();
    let side = (n as f64).cbrt().ceil() as usize;
    for i in 0..n {
        let p = Vec3::new(
            (i % side) as f64 * 6.5,
            ((i / side) % side) as f64 * 6.5,
            (i / (side * side)) as f64 * 6.5,
        );
        sys.add_particle(p, 330.0, if i % 2 == 0 { -1.0 } else { 0.0 }, 1);
    }
    sys
}

fn force_field() -> ForceField {
    ForceField::new(Topology::new()).with_nonbonded(
        NonBonded::new(LjParams::wca(6.0, 0.5), 13.0, 1.0).with_debye_huckel(3.04, 78.0),
    )
}

fn md_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("force_eval");
    for &n in &[64usize, 256, 1024, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("wca_dh", n), &n, |b, &n| {
            let mut sys = dense_system(n);
            let mut ff = force_field();
            b.iter(|| ff.evaluate(&mut sys));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("neighbor");
    for &n in &[256usize, 1024, 4096] {
        let sys = dense_system(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("cell_list", n), &n, |b, _| {
            b.iter(|| CellList::build(sys.positions(), 13.0));
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
                b.iter(|| brute_force_pairs(sys.positions(), 13.0));
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("langevin_step");
    g.bench_function("256_beads", |b| {
        let sys = dense_system(256);
        let mut sim = Simulation::new(
            sys,
            force_field(),
            Box::new(LangevinBaoab::new(300.0, 2.0, 1)),
            0.01,
        );
        b.iter(|| sim.step_once());
    });
    g.finish();
}

criterion_group!(benches, md_engine);
criterion_main!(benches);
