//! MD substrate kernels, machine-readable: times the tiered pair kernel
//! against the legacy per-pair-checked baseline and the clone-amortized
//! ensemble against fully independent equilibrations, then writes
//! `BENCH_md_engine.json` (force evals/sec, pairs/sec, integration
//! steps/sec, ensemble wall-clock) so CI and EXPERIMENTS.md can track
//! kernel performance.
//!
//! ```sh
//! cargo bench -p spice-bench --bench bench_md_engine
//! ```

use spice_md::forces::{ForceField, LjParams, NonBonded, Restraint};
use spice_md::integrate::LangevinBaoab;
use spice_md::{Simulation, System, Topology, Vec3};
use spice_smd::{run_ensemble, run_ensemble_cloned, PullProtocol};
use spice_stats::rng::SeedSequence;
use std::time::Instant;

/// Per-size kernel measurements.
struct KernelRow {
    n_beads: usize,
    evals_per_sec_tiered: f64,
    evals_per_sec_legacy: f64,
    pairs_per_sec_tiered: f64,
    pairs_per_sec_legacy: f64,
    steps_per_sec_tiered: f64,
    steps_per_sec_legacy: f64,
}

/// The fixed bench system: an n-bead charged chain (alternating −1/0
/// backbone pattern, matching the coarse-grained ssDNA bead charges),
/// bonded along the chain. The 12-bead instance mirrors the Bench-scale
/// strand (12 bases → 12 beads).
fn chain_parts(n: usize) -> (System, Topology) {
    let mut sys = System::new();
    let side = (n as f64).cbrt().ceil().max(2.0) as usize;
    for i in 0..n {
        let p = Vec3::new(
            (i % side) as f64 * 6.5,
            ((i / side) % side) as f64 * 6.5,
            (i / (side * side)) as f64 * 6.5,
        );
        sys.add_particle(p, 330.0, if i % 2 == 0 { -1.0 } else { 0.0 }, 1);
    }
    let mut topo = Topology::new();
    for i in 0..n - 1 {
        topo.add_harmonic_bond(i, i + 1, 6.5, 5.0);
    }
    topo.set_group("smd", (0..n).collect());
    (sys, topo)
}

fn chain_nonbonded(reference_kernel: bool) -> NonBonded {
    NonBonded::new(LjParams::wca(6.0, 0.5), 13.0, 1.0)
        .with_debye_huckel(3.04, 78.0)
        .with_reference_kernel(reference_kernel)
}

/// Full simulation over the bench chain, every bead restrained to its
/// lattice site so ensembles stay bounded.
fn chain_simulation(n: usize, seed: u64, reference_kernel: bool) -> Simulation {
    let (sys, topo) = chain_parts(n);
    let positions: Vec<Vec3> = sys.positions().to_vec();
    let mut ff = ForceField::new(topo).with_nonbonded(chain_nonbonded(reference_kernel));
    for (i, p) in positions.iter().enumerate() {
        ff = ff.with_restraint(Restraint::harmonic(i, *p, 0.5));
    }
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.01,
    )
}

/// Force-evaluation throughput (the kernel the tiered list rebuilt):
/// (evals/sec, pairs/sec).
fn time_force_evals(n: usize, reference_kernel: bool, iters: u64) -> (f64, f64) {
    let (mut sys, topo) = chain_parts(n);
    let mut ff = ForceField::new(topo).with_nonbonded(chain_nonbonded(reference_kernel));
    for _ in 0..100 {
        ff.evaluate(&mut sys);
    }
    let pairs0 = ff.kernel_counters().pairs_evaluated;
    let t0 = Instant::now();
    for _ in 0..iters {
        ff.evaluate(&mut sys);
    }
    let dt = t0.elapsed().as_secs_f64();
    let pairs = ff.kernel_counters().pairs_evaluated - pairs0;
    (iters as f64 / dt, pairs as f64 / dt)
}

/// Full Langevin integration throughput: steps/sec.
fn time_steps(n: usize, reference_kernel: bool, steps: u64) -> f64 {
    let mut sim = chain_simulation(n, 1, reference_kernel);
    sim.run(50, &mut []).expect("warm-up");
    let t0 = Instant::now();
    sim.run(steps, &mut []).expect("timed run");
    steps as f64 / t0.elapsed().as_secs_f64()
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    (spice_stats::mean(xs), spice_stats::variance(xs))
}

fn main() {
    // ---- Kernel throughput: tiered vs legacy per-pair-checked -------
    let mut rows = Vec::new();
    for &n in &[12usize, 256] {
        let (eval_iters, step_iters) = if n <= 64 {
            (1_000_000, 200_000)
        } else {
            (30_000, 5_000)
        };
        let (eps_new, pps_new) = time_force_evals(n, false, eval_iters);
        let (eps_old, pps_old) = time_force_evals(n, true, eval_iters);
        let sps_new = time_steps(n, false, step_iters);
        let sps_old = time_steps(n, true, step_iters);
        eprintln!(
            "n={n}: force evals/sec {eps_new:.3e} vs {eps_old:.3e} ({:.2}x), \
             pairs/sec {pps_new:.3e} vs {pps_old:.3e}, \
             full steps/sec {sps_new:.0} vs {sps_old:.0} ({:.2}x)",
            eps_new / eps_old,
            sps_new / sps_old
        );
        rows.push(KernelRow {
            n_beads: n,
            evals_per_sec_tiered: eps_new,
            evals_per_sec_legacy: eps_old,
            pairs_per_sec_tiered: pps_new,
            pairs_per_sec_legacy: pps_old,
            steps_per_sec_tiered: sps_new,
            steps_per_sec_legacy: sps_old,
        });
    }
    let speedup_12 = rows[0].evals_per_sec_tiered / rows[0].evals_per_sec_legacy;

    // ---- Ensemble wall-clock: cloned vs independent -----------------
    // One fixed (κ, v) sweep cell over the 12-bead system, 24
    // realizations, equilibration-heavy (the regime clone amortization
    // targets: one shared 1500-step equilibration vs 24 independent
    // ones, 100-step post-clone decorrelation).
    let n_real = 24;
    let protocol = PullProtocol {
        kappa_pn_per_a: 300.0,
        v_a_per_ns: 800.0,
        pull_distance: 2.0,
        dt_ps: 0.01,
        equilibration_steps: 1_500,
        sample_stride: 10,
    };
    let decorrelation_steps = 100;
    let factory = |seed: u64| chain_simulation(12, seed, false);

    let t0 = Instant::now();
    let indep: Vec<f64> = run_ensemble(factory, &protocol, n_real, SeedSequence::new(31))
        .into_iter()
        .map(|r| r.expect("independent realization").final_work())
        .collect();
    let wall_indep = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let cloned: Vec<f64> = run_ensemble_cloned(
        factory,
        &protocol,
        n_real,
        SeedSequence::new(32),
        decorrelation_steps,
    )
    .into_iter()
    .map(|r| r.expect("cloned realization").final_work())
    .collect();
    let wall_cloned = t0.elapsed().as_secs_f64();

    let ensemble_speedup = wall_indep / wall_cloned;
    let (mi, vi) = mean_var(&indep);
    let (mc, vc) = mean_var(&cloned);
    // Statistical equivalence gate: means within 3 combined standard
    // errors, variances within the χ² scatter of n = 24 samples.
    let se = (vi / n_real as f64 + vc / n_real as f64).sqrt();
    let work_stats_ok = (mi - mc).abs() < 3.0 * se.max(0.05) && vc > vi / 6.25 && vc < vi * 6.25;
    eprintln!(
        "ensemble: independent {wall_indep:.2}s vs cloned {wall_cloned:.2}s \
         ({ensemble_speedup:.2}x); work mean {mi:.3} vs {mc:.3}, var {vi:.3} vs {vc:.3}"
    );

    // ---- Emit BENCH_md_engine.json ----------------------------------
    let row_json = |r: &KernelRow| {
        format!(
            "    {{\"n_beads\": {}, \
             \"force_evals_per_sec_tiered\": {:.1}, \
             \"force_evals_per_sec_legacy\": {:.1}, \
             \"force_eval_speedup\": {:.3}, \
             \"pairs_per_sec_tiered\": {:.1}, \
             \"pairs_per_sec_legacy\": {:.1}, \
             \"sim_steps_per_sec_tiered\": {:.1}, \
             \"sim_steps_per_sec_legacy\": {:.1}, \
             \"sim_steps_speedup\": {:.3}}}",
            r.n_beads,
            r.evals_per_sec_tiered,
            r.evals_per_sec_legacy,
            r.evals_per_sec_tiered / r.evals_per_sec_legacy,
            r.pairs_per_sec_tiered,
            r.pairs_per_sec_legacy,
            r.steps_per_sec_tiered,
            r.steps_per_sec_legacy,
            r.steps_per_sec_tiered / r.steps_per_sec_legacy,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"md_engine\",\n  \"kernel\": [\n{}\n  ],\n  \
         \"force_eval_speedup_12_bead\": {:.3},\n  \"ensemble\": {{\n    \
         \"realizations\": {},\n    \"equilibration_steps\": {},\n    \
         \"decorrelation_steps\": {},\n    \"pull_steps\": {},\n    \
         \"wall_clock_independent_s\": {:.4},\n    \
         \"wall_clock_cloned_s\": {:.4},\n    \"speedup\": {:.3},\n    \
         \"work_mean_independent\": {:.6},\n    \"work_mean_cloned\": {:.6},\n    \
         \"work_var_independent\": {:.6},\n    \"work_var_cloned\": {:.6},\n    \
         \"work_stats_within_tolerance\": {}\n  }}\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
        speedup_12,
        n_real,
        protocol.equilibration_steps,
        decorrelation_steps,
        protocol.pull_steps(),
        wall_indep,
        wall_cloned,
        ensemble_speedup,
        mi,
        mc,
        vi,
        vc,
        work_stats_ok
    );
    std::fs::write("BENCH_md_engine.json", &json).expect("write BENCH_md_engine.json");
    println!("{json}");
}
