//! Bootstrap and jackknife resampling.
//!
//! Fig. 4's statistical error bars (σ_stat) are estimated by bootstrap over
//! the finite set of SMD work realizations; the Jarzynski estimator is a
//! *nonlinear* function of the sample (log of an exponential mean), so a
//! plain standard error of the mean would be wrong. Bootstrap and jackknife
//! handle arbitrary statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bootstrap resampler over a fixed sample.
///
/// Generic over the statistic: pass any `Fn(&[f64]) -> f64` (mean, a
/// Jarzynski estimate, a quantile…).
pub struct Bootstrap<'a> {
    data: &'a [f64],
    resamples: usize,
    rng: StdRng,
}

impl<'a> Bootstrap<'a> {
    /// Create a resampler drawing `resamples` bootstrap replicates,
    /// deterministic under `seed`.
    pub fn new(data: &'a [f64], resamples: usize, seed: u64) -> Self {
        Bootstrap {
            data,
            resamples,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Distribution of the statistic over bootstrap replicates.
    pub fn replicates<F: Fn(&[f64]) -> f64>(&mut self, stat: F) -> Vec<f64> {
        let n = self.data.len();
        let mut buf = vec![0.0; n];
        let mut out = Vec::with_capacity(self.resamples);
        for _ in 0..self.resamples {
            for slot in buf.iter_mut() {
                *slot = self.data[self.rng.gen_range(0..n)];
            }
            out.push(stat(&buf));
        }
        out
    }

    /// Bootstrap estimate of the statistic's standard error.
    pub fn std_error<F: Fn(&[f64]) -> f64>(&mut self, stat: F) -> f64 {
        let reps = self.replicates(stat);
        crate::descriptive::std_dev(&reps)
    }

    /// Percentile confidence interval `(lo, hi)` at the given level
    /// (e.g. 0.95 → 2.5th and 97.5th percentiles of the replicates).
    pub fn confidence_interval<F: Fn(&[f64]) -> f64>(&mut self, stat: F, level: f64) -> (f64, f64) {
        let reps = self.replicates(stat);
        let alpha = (1.0 - level) / 2.0;
        (
            crate::descriptive::quantile(&reps, alpha),
            crate::descriptive::quantile(&reps, 1.0 - alpha),
        )
    }
}

/// Bootstrap standard error of the *mean* — convenience wrapper.
///
/// Returns `(mean, bootstrap standard error)`.
pub fn bootstrap_mean_std(data: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    let m = crate::descriptive::mean(data);
    let se = Bootstrap::new(data, resamples, seed).std_error(crate::descriptive::mean);
    (m, se)
}

/// Jackknife (leave-one-out) estimate of a statistic's bias-corrected value
/// and standard error.
///
/// Returns `(bias-corrected estimate, standard error)`. Needs at least two
/// samples; returns `(stat(data), NaN)` otherwise.
pub fn jackknife<F: Fn(&[f64]) -> f64>(data: &[f64], stat: F) -> (f64, f64) {
    let n = data.len();
    let full = stat(data);
    if n < 2 {
        return (full, f64::NAN);
    }
    let mut buf = Vec::with_capacity(n - 1);
    let mut loo = Vec::with_capacity(n);
    for i in 0..n {
        buf.clear();
        buf.extend_from_slice(&data[..i]);
        buf.extend_from_slice(&data[i + 1..]);
        loo.push(stat(&buf));
    }
    let loo_mean = crate::descriptive::mean(&loo);
    let bias_corrected = n as f64 * full - (n - 1) as f64 * loo_mean;
    let var = loo
        .iter()
        .map(|&x| (x - loo_mean) * (x - loo_mean))
        .sum::<f64>()
        * (n - 1) as f64
        / n as f64;
    (bias_corrected, var.sqrt())
}

/// Jackknife mean and standard error — convenience wrapper.
pub fn jackknife_mean_std(data: &[f64]) -> (f64, f64) {
    jackknife(data, crate::descriptive::mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, std_error};

    fn sample() -> Vec<f64> {
        (0..200)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 / 100.0)
            .collect()
    }

    #[test]
    fn bootstrap_se_close_to_analytic_se_of_mean() {
        let xs = sample();
        let (_, se_boot) = bootstrap_mean_std(&xs, 2000, 42);
        let se_exact = std_error(&xs);
        assert!(
            (se_boot - se_exact).abs() / se_exact < 0.15,
            "bootstrap {se_boot} vs analytic {se_exact}"
        );
    }

    #[test]
    fn bootstrap_is_deterministic_under_seed() {
        let xs = sample();
        let a = Bootstrap::new(&xs, 100, 7).replicates(mean);
        let b = Bootstrap::new(&xs, 100, 7).replicates(mean);
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_different_seeds_differ() {
        let xs = sample();
        let a = Bootstrap::new(&xs, 100, 7).replicates(mean);
        let b = Bootstrap::new(&xs, 100, 8).replicates(mean);
        assert_ne!(a, b);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let xs = sample();
        let m = mean(&xs);
        let (lo, hi) = Bootstrap::new(&xs, 1000, 1).confidence_interval(mean, 0.95);
        assert!(lo < m && m < hi, "CI [{lo}, {hi}] should bracket {m}");
    }

    #[test]
    fn jackknife_mean_is_unbiased() {
        // The mean is a linear statistic: jackknife bias correction is exact
        // and the estimate equals the plain mean.
        let xs = sample();
        let (est, se) = jackknife_mean_std(&xs);
        assert!((est - mean(&xs)).abs() < 1e-10);
        assert!((se - std_error(&xs)).abs() / std_error(&xs) < 1e-10);
    }

    #[test]
    fn jackknife_single_sample() {
        let (est, se) = jackknife_mean_std(&[5.0]);
        assert_eq!(est, 5.0);
        assert!(se.is_nan());
    }

    #[test]
    fn jackknife_corrects_nonlinear_bias() {
        // stat = (mean)^2 has bias +var/n; jackknife should shrink it.
        let xs = sample();
        let stat = |d: &[f64]| mean(d) * mean(d);
        let n = xs.len() as f64;
        let biased = stat(&xs);
        let truth_bias = crate::descriptive::variance(&xs) / n;
        let (corrected, _) = jackknife(&xs, stat);
        // The corrected estimate should move by approximately -bias.
        assert!(
            (biased - corrected - truth_bias).abs() < truth_bias * 0.2,
            "correction {} vs expected bias {}",
            biased - corrected,
            truth_bias
        );
    }
}
