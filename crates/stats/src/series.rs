//! x/y series utilities: binning scattered samples onto a grid and block
//! averaging of correlated sequences.
//!
//! The PMF of Fig. 4 is reported on a displacement grid; individual SMD
//! realizations sample work at slightly different center-of-mass positions,
//! so the pipeline bins (displacement, work) pairs onto a common grid
//! before applying the Jarzynski average per bin.

use crate::descriptive::RunningStats;

/// Per-bin aggregation of (x, y) samples over a uniform grid on `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    lo: f64,
    width: f64,
    bins: Vec<RunningStats>,
    /// Raw y-samples per bin, kept so nonlinear estimators (Jarzynski) can
    /// operate on the full per-bin sample, not just its moments.
    samples: Vec<Vec<f64>>,
}

impl BinnedSeries {
    /// New empty grid over `[lo, hi)` with `nbins` bins.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && hi > lo, "invalid binned-series grid");
        BinnedSeries {
            lo,
            width: (hi - lo) / nbins as f64,
            bins: vec![RunningStats::new(); nbins],
            samples: vec![Vec::new(); nbins],
        }
    }

    /// Record an (x, y) pair; out-of-range x is ignored and reported back
    /// as `false`.
    pub fn record(&mut self, x: f64, y: f64) -> bool {
        let idx = (x - self.lo) / self.width;
        if idx < 0.0 {
            return false;
        }
        let idx = idx as usize;
        if idx >= self.bins.len() {
            return false;
        }
        self.bins[idx].push(y);
        self.samples[idx].push(y);
        true
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Center x of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Streaming stats of bin `i`.
    pub fn stats(&self, i: usize) -> &RunningStats {
        &self.bins[i]
    }

    /// Raw y-samples collected in bin `i`.
    pub fn samples(&self, i: usize) -> &[f64] {
        &self.samples[i]
    }

    /// Mean y per bin (NaN where empty), paired with bin centers.
    pub fn mean_curve(&self) -> Vec<(f64, f64)> {
        (0..self.nbins())
            .map(|i| (self.bin_center(i), self.bins[i].mean()))
            .collect()
    }

    /// Merge a compatible grid (same lo/width/nbins) into this one.
    ///
    /// # Panics
    /// Panics on grid mismatch.
    pub fn merge(&mut self, other: &BinnedSeries) {
        assert_eq!(self.lo, other.lo, "grid lo mismatch");
        assert_eq!(self.width, other.width, "grid width mismatch");
        assert_eq!(self.nbins(), other.nbins(), "grid size mismatch");
        for i in 0..self.nbins() {
            self.bins[i].merge(&other.bins[i]);
            self.samples[i].extend_from_slice(&other.samples[i]);
        }
    }
}

/// Bin scattered (x, y) pairs onto a uniform grid; convenience wrapper.
pub fn bin_series(pairs: &[(f64, f64)], lo: f64, hi: f64, nbins: usize) -> BinnedSeries {
    let mut b = BinnedSeries::new(lo, hi, nbins);
    for &(x, y) in pairs {
        b.record(x, y);
    }
    b
}

/// Block-average a series into `nblocks` contiguous blocks and return the
/// block means. Standard technique for error estimation on correlated data:
/// the variance of block means converges to the true variance of the mean
/// as blocks exceed the correlation time.
///
/// Trailing samples that do not fill a block are dropped. Returns an empty
/// vector when the series is shorter than `nblocks`.
pub fn block_average(xs: &[f64], nblocks: usize) -> Vec<f64> {
    if nblocks == 0 || xs.len() < nblocks {
        return Vec::new();
    }
    let bs = xs.len() / nblocks;
    (0..nblocks)
        .map(|b| xs[b * bs..(b + 1) * bs].iter().sum::<f64>() / bs as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_bins() {
        let mut b = BinnedSeries::new(0.0, 10.0, 10);
        assert!(b.record(0.1, 1.0));
        assert!(b.record(9.9, 2.0));
        assert!(!b.record(10.0, 3.0));
        assert!(!b.record(-0.5, 3.0));
        assert_eq!(b.stats(0).count(), 1);
        assert_eq!(b.stats(9).count(), 1);
        assert_eq!(b.samples(9), &[2.0]);
    }

    #[test]
    fn mean_curve_recovers_function() {
        let pairs: Vec<(f64, f64)> = (0..1000)
            .map(|i| {
                let x = i as f64 / 100.0;
                (x, 2.0 * x)
            })
            .collect();
        let b = bin_series(&pairs, 0.0, 10.0, 10);
        for (x, y) in b.mean_curve() {
            assert!((y - 2.0 * x).abs() < 0.1, "bin at {x} gave {y}");
        }
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = BinnedSeries::new(0.0, 1.0, 2);
        let mut b = BinnedSeries::new(0.0, 1.0, 2);
        a.record(0.25, 1.0);
        b.record(0.25, 3.0);
        a.merge(&b);
        assert_eq!(a.stats(0).count(), 2);
        assert!((a.stats(0).mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.samples(0), &[1.0, 3.0]);
    }

    #[test]
    fn block_average_partitions() {
        let xs: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let blocks = block_average(&xs, 3);
        assert_eq!(blocks, vec![1.5, 5.5, 9.5]);
    }

    #[test]
    fn block_average_drops_tail() {
        let xs: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let blocks = block_average(&xs, 3);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], 1.5);
    }

    #[test]
    fn block_average_degenerate() {
        assert!(block_average(&[1.0], 3).is_empty());
        assert!(block_average(&[1.0, 2.0], 0).is_empty());
    }
}
