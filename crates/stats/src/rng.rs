//! Deterministic seed derivation.
//!
//! The paper's campaign runs 72 independent simulations; our reproduction
//! runs ensembles of realizations across rayon threads. To make every
//! experiment bit-reproducible regardless of thread scheduling, every
//! logical stream (realization i, particle j, network link k…) derives its
//! own seed *by value* from a master seed using SplitMix64 — the standard
//! stateless mixer also used to seed xoshiro generators.

/// One round of the SplitMix64 output mixer (stateless).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of logical stream `index` from `master`.
///
/// Distinct `(master, index)` pairs map to well-separated seeds; identical
/// pairs always map to the same seed (reproducibility across runs and
/// thread schedules).
#[inline]
pub fn seed_stream(master: u64, index: u64) -> u64 {
    // Two mixing rounds over a combined word; one round already decorrelates,
    // the second guards against low-entropy (master, index) patterns.
    splitmix64(splitmix64(master ^ 0xA076_1D64_78BD_642F).wrapping_add(index))
}

/// Map 64 random bits to a uniform f64 in [0, 1) using the top 53 bits
/// (the mantissa trick). Shared by every stochastic sampler that draws
/// from a [`seed_stream`], so all crates produce identical uniforms from
/// identical bits.
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A hierarchical seed sequence: `SeedSequence` for an experiment, child
/// sequences per component, leaf seeds per stream.
///
/// ```
/// use spice_stats::rng::SeedSequence;
/// let root = SeedSequence::new(42);
/// let md = root.child(0);
/// let grid = root.child(1);
/// assert_ne!(md.stream(0), grid.stream(0));
/// // Re-derivation is stable:
/// assert_eq!(root.child(0).stream(5), md.stream(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Root sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            state: splitmix64(master),
        }
    }

    /// Child sequence for component `index`.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            state: seed_stream(self.state, index),
        }
    }

    /// Leaf seed for stream `index`.
    pub fn stream(&self, index: u64) -> u64 {
        seed_stream(self.state, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(seed_stream(1, 2), seed_stream(1, 2));
        assert_eq!(
            SeedSequence::new(9).child(3).stream(4),
            SeedSequence::new(9).child(3).stream(4)
        );
    }

    #[test]
    fn streams_distinct() {
        let mut seen = HashSet::new();
        for master in 0..8u64 {
            for idx in 0..1000u64 {
                assert!(
                    seen.insert(seed_stream(master, idx)),
                    "collision at ({master},{idx})"
                );
            }
        }
    }

    #[test]
    fn sequential_indices_decorrelated() {
        // Hamming distance between seeds of adjacent indices should be large.
        let a = seed_stream(0, 0);
        let b = seed_stream(0, 1);
        let hd = (a ^ b).count_ones();
        assert!(hd > 10, "adjacent streams too similar: hamming {hd}");
    }

    #[test]
    fn child_trees_do_not_collide() {
        let root = SeedSequence::new(1234);
        let mut seen = HashSet::new();
        for c in 0..50u64 {
            for s in 0..50u64 {
                assert!(seen.insert(root.child(c).stream(s)));
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
        for i in 0..1000u64 {
            let u = unit_f64(seed_stream(7, i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of the reference SplitMix64 stream seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
