//! Ordinary least squares on (x, y) pairs.
//!
//! Used to extract trends from experiment sweeps (e.g. slowdown vs latency
//! in T-imd, error growth vs sub-trajectory length in T-subtraj).

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Fit `y = slope·x + intercept` by least squares.
    ///
    /// Returns `None` for fewer than two points or zero x-variance.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        let n = xs.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mx = xs.iter().sum::<f64>() / nf;
        let my = ys.iter().sum::<f64>() / nf;
        let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
        // spice-lint: allow(N002) exact-zero spread sentinel: all x identical
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let syy: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
        // spice-lint: allow(N002) exact-zero spread sentinel: all y identical
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
            n,
        })
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 7.0).collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 7.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_close() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 1.0 + 0.01 * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(LinearFit::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn flat_line_r2_is_one() {
        let f = LinearFit::fit(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
        assert_eq!(f.predict(10.0), 5.0);
    }
}
