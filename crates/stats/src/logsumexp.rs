//! Numerically stable exponential averaging.
//!
//! The Jarzynski estimator ΔF = −kT·ln⟨exp(−W/kT)⟩ involves averaging
//! exponentials of work values that can span hundreds of kT. Naive
//! evaluation overflows/underflows; the standard remedy is the
//! log-sum-exp trick implemented here.

/// Stable `ln Σᵢ exp(xᵢ)`.
///
/// Returns `-inf` for an empty slice (the empty sum). Infinite inputs are
/// handled: any `+inf` dominates and yields `+inf`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if m.is_infinite() {
        return f64::INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Stable `ln ( (1/n) Σᵢ exp(xᵢ) )`.
pub fn log_mean_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    log_sum_exp(xs) - (xs.len() as f64).ln()
}

/// Stable weighted `ln Σᵢ wᵢ exp(xᵢ)` for non-negative weights.
///
/// Entries with zero weight are ignored; returns `-inf` when the total
/// weight is zero.
pub fn log_sum_exp_weighted(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weights must match values");
    let m = xs
        .iter()
        .zip(ws)
        .filter(|(_, &w)| w > 0.0)
        .map(|(&x, _)| x)
        .fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs
        .iter()
        .zip(ws)
        .filter(|(_, &w)| w > 0.0)
        .map(|(&x, &w)| w * (x - m).exp())
        .sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_for_small_values() {
        let xs = [0.1, -0.3, 0.7, 0.0];
        let naive = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn survives_huge_magnitudes() {
        let xs = [1000.0, 1000.0];
        // ln(2 e^1000) = 1000 + ln 2
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        let ys = [-1000.0, -1000.0];
        assert!((log_sum_exp(&ys) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn empty_sum_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn mean_exp_of_constant_is_constant() {
        let xs = [3.5; 17];
        assert!((log_mean_exp(&xs) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn all_neg_inf_inputs() {
        let xs = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert_eq!(log_sum_exp(&xs), f64::NEG_INFINITY);
    }

    #[test]
    fn weighted_reduces_to_unweighted() {
        let xs = [0.2, 1.4, -0.9];
        let ws = [1.0, 1.0, 1.0];
        assert!((log_sum_exp_weighted(&xs, &ws) - log_sum_exp(&xs)).abs() < 1e-12);
    }

    #[test]
    fn weighted_ignores_zero_weight() {
        let xs = [0.2, 1e9];
        let ws = [1.0, 0.0];
        assert!((log_sum_exp_weighted(&xs, &ws) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_total_weight_is_neg_inf() {
        assert_eq!(
            log_sum_exp_weighted(&[1.0, 2.0], &[0.0, 0.0]),
            f64::NEG_INFINITY
        );
    }
}
