//! Batch and streaming descriptive statistics.
//!
//! The streaming accumulator ([`RunningStats`]) uses Welford's algorithm so
//! that long MD time series (millions of steps) can be summarized in one
//! pass without storing samples and without catastrophic cancellation.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n-1) sample variance. Returns `NaN` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean, `s / sqrt(n)`, assuming independent samples.
///
/// For correlated series use [`crate::autocorr::effective_sample_size`]
/// to deflate `n` first.
pub fn std_error(xs: &[f64]) -> f64 {
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Linear-interpolated quantile of an **unsorted** slice, `q` in `[0, 1]`.
///
/// Copies and sorts internally; intended for analysis-time use, not inner
/// loops. Returns `NaN` for an empty slice or `q` outside `[0, 1]`. NaN
/// samples sort deterministically after every finite value (`total_cmp`
/// order) instead of poisoning the sort.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Single-pass streaming moments via Welford's algorithm.
///
/// Tracks count, mean, M2/M3/M4 central-moment accumulators, min and max.
/// Numerically stable for long series; merging two accumulators is supported
/// for parallel reduction (rayon `reduce`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Accumulate every element of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (parallel reduction step).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Sample skewness (biased, population form).
    pub fn skewness(&self) -> f64 {
        // spice-lint: allow(N002) exact-zero M2 sentinel: degenerate series
        if self.n < 2 || self.m2 == 0.0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis (population form; 0 for a Gaussian).
    pub fn kurtosis(&self) -> f64 {
        // spice-lint: allow(N002) exact-zero M2 sentinel: degenerate series
        if self.n < 2 || self.m2 == 0.0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mean_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_of_known_values() {
        // var([2,4,4,4,5,5,7,9]) with n-1 = 32/7
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_single_sample_is_nan() {
        assert!(variance(&[3.0]).is_nan());
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1.0)
            .collect();
        let mut rs = RunningStats::new();
        rs.extend(&xs);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-10);
        assert_eq!(rs.count(), 100);
        assert_eq!(rs.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(
            rs.max(),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let ys: Vec<f64> = (50..200).map(|i| (i as f64).sqrt() * -0.5).collect();
        let mut a = RunningStats::new();
        a.extend(&xs);
        let mut b = RunningStats::new();
        b.extend(&ys);
        a.merge(&b);

        let mut all = RunningStats::new();
        all.extend(&xs);
        all.extend(&ys);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert!((a.skewness() - all.skewness()).abs() < 1e-8);
        assert!((a.kurtosis() - all.kurtosis()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn gaussian_moments_via_kurtosis() {
        // A deterministic symmetric series should have ~0 skewness.
        let xs: Vec<f64> = (-500..=500).map(|i| i as f64 / 100.0).collect();
        let mut rs = RunningStats::new();
        rs.extend(&xs);
        assert!(rs.skewness().abs() < 1e-10);
        // Uniform distribution has excess kurtosis -1.2.
        assert!((rs.kurtosis() + 1.2).abs() < 0.01);
    }

    #[test]
    fn std_error_scales_with_n() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let se = std_error(&xs);
        assert!((se - std_dev(&xs) / (8f64).sqrt()).abs() < 1e-15);
    }
}
