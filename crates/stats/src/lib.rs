//! # spice-stats
//!
//! Statistical foundations for the SPICE reproduction.
//!
//! Every quantitative claim in the paper rests on estimating means,
//! fluctuations and their uncertainties from finite, correlated samples:
//! the Jarzynski free-energy estimator, the statistical-vs-systematic error
//! trade-off of Fig. 4, bootstrap error bars, and the discrete-event grid
//! model's stochastic service and network processes.
//!
//! This crate provides:
//!
//! * [`descriptive`] — streaming (Welford) and batch moments, quantiles.
//! * [`histogram`] — fixed-width binned accumulation with under/overflow.
//! * [`resample`] — bootstrap and jackknife uncertainty estimation.
//! * [`autocorr`] — autocorrelation functions, integrated autocorrelation
//!   time and effective sample size for correlated MD time series.
//! * [`logsumexp`] — numerically stable `log Σ exp` / `log ⟨exp⟩`
//!   primitives used by the exponential (Jarzynski) average.
//! * [`regression`] — ordinary least squares for trend extraction.
//! * [`series`] — x/y series utilities: binning a scattered series onto a
//!   grid, block averaging.
//! * [`rng`] — deterministic seeding helpers (SplitMix64 stream derivation)
//!   so every experiment is reproducible from a single master seed.
//!
//! All routines are `f64`, allocation-conscious, and deterministic given a
//! seed, per the HPC guide's reproducibility idioms.

#![warn(missing_docs)]

pub mod autocorr;
pub mod descriptive;
pub mod histogram;
pub mod logsumexp;
pub mod regression;
pub mod resample;
pub mod rng;
pub mod series;

pub use autocorr::{autocorrelation, effective_sample_size, integrated_autocorr_time};
pub use descriptive::{mean, quantile, std_dev, variance, RunningStats};
pub use histogram::Histogram;
pub use logsumexp::{log_mean_exp, log_sum_exp};
pub use regression::LinearFit;
pub use resample::{bootstrap_mean_std, jackknife_mean_std, Bootstrap};
pub use rng::{seed_stream, SeedSequence};
pub use series::{bin_series, block_average, BinnedSeries};
