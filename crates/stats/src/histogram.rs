//! Fixed-width histograms with underflow/overflow tracking.
//!
//! Used for work distributions (§IV), network latency/jitter distributions
//! (T-imd), and queue-wait distributions in the grid simulator.

use serde::{Deserialize, Serialize};

/// A fixed-width 1-D histogram over `[lo, hi)` with `nbins` bins.
///
/// Observations outside the range are counted separately (they are *not*
/// clamped into edge bins), so the caller can detect a misjudged range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total_in_range: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `nbins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            width: (hi - lo) / nbins as f64,
            counts: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total_in_range: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            // Floating-point rounding can land exactly on len(); clamp.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
            self.total_in_range += 1;
        }
    }

    /// Record every element of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center x-value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.total_in_range + self.underflow + self.overflow
    }

    /// In-range observations.
    pub fn total_in_range(&self) -> u64 {
        self.total_in_range
    }

    /// Probability density estimate for bin `i` (normalized over in-range
    /// observations). `NaN` when empty.
    pub fn density(&self, i: usize) -> f64 {
        if self.total_in_range == 0 {
            return f64::NAN;
        }
        self.counts[i] as f64 / (self.total_in_range as f64 * self.width)
    }

    /// Index of the most populated bin (first one on ties), or `None` when
    /// no in-range data has been recorded.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total_in_range == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// Merge another histogram with identical binning.
    ///
    /// # Panics
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bin mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total_in_range += other.total_in_range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total_in_range(), 3);
    }

    #[test]
    fn out_of_range_tracked_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // upper edge is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total_in_range(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn density_normalizes_to_one() {
        let mut h = Histogram::new(-2.0, 2.0, 16);
        for i in 0..1000 {
            h.record((i as f64 / 1000.0) * 3.6 - 1.8);
        }
        let integral: f64 = (0..h.nbins()).map(|i| h.density(i) * (4.0 / 16.0)).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn mode_of_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn mode_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend(&[0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.record(0.25);
        b.record(0.25);
        b.record(0.75);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.underflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin mismatch")]
    fn merge_rejects_different_binning() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }
}
