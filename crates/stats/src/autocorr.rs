//! Autocorrelation analysis for correlated time series.
//!
//! MD observables are strongly autocorrelated, so naive `s/√n` error bars
//! are over-optimistic. The integrated autocorrelation time τ_int deflates
//! the sample count to an *effective* sample size n_eff = n / (2 τ_int),
//! which the SMD-JE error analysis uses when realizations are harvested
//! from a single long trajectory.

/// Normalized autocorrelation function ρ(k) for lags `0..max_lag`.
///
/// ρ(0) = 1 by construction. Returns an empty vector for series shorter
/// than 2 or zero-variance series.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let m = crate::descriptive::mean(xs);
    let c0: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / n as f64;
    // spice-lint: allow(N002) exact-zero variance is the constant-series sentinel
    if c0 == 0.0 {
        return Vec::new();
    }
    let kmax = max_lag.min(n - 1);
    let mut rho = Vec::with_capacity(kmax + 1);
    for k in 0..=kmax {
        let ck: f64 = (0..n - k)
            .map(|i| (xs[i] - m) * (xs[i + k] - m))
            .sum::<f64>()
            / n as f64;
        rho.push(ck / c0);
    }
    rho
}

/// Integrated autocorrelation time τ_int = 1/2 + Σ_{k≥1} ρ(k), using the
/// standard "first negative" truncation (summation stops when ρ(k) < 0).
///
/// Lags are computed incrementally and summation stops at the first
/// negative ρ(k), so the cost is O(n · k_stop), not O(n²).
///
/// Returns 0.5 for white noise; larger values indicate correlation.
/// Returns `NaN` for degenerate input.
pub fn integrated_autocorr_time(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let m = crate::descriptive::mean(xs);
    let c0: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / n as f64;
    // spice-lint: allow(N002) exact-zero variance is the constant-series sentinel
    if c0 == 0.0 {
        return f64::NAN;
    }
    let mut tau = 0.5;
    for k in 1..n {
        let ck: f64 = (0..n - k)
            .map(|i| (xs[i] - m) * (xs[i + k] - m))
            .sum::<f64>()
            / n as f64;
        let rho = ck / c0;
        if rho < 0.0 {
            break;
        }
        tau += rho;
    }
    tau
}

/// Effective number of independent samples, n / (2 τ_int), clamped to
/// `[1, n]`.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let tau = integrated_autocorr_time(xs);
    if !tau.is_finite() || tau <= 0.0 {
        return n;
    }
    (n / (2.0 * tau)).clamp(1.0, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rho_zero_is_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 1.3).sin()).collect();
        let rho = autocorrelation(&xs, 10);
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn white_noise_has_tau_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20000).map(|_| rng.gen::<f64>() - 0.5).collect();
        let tau = integrated_autocorr_time(&xs);
        assert!(
            (tau - 0.5).abs() < 0.2,
            "white-noise tau should be ~0.5, got {tau}"
        );
        let neff = effective_sample_size(&xs);
        assert!(neff > 0.5 * xs.len() as f64);
    }

    #[test]
    fn ar1_process_has_known_tau() {
        // AR(1): x_{t+1} = phi x_t + noise, tau_int = 1/2 (1+phi)/(1-phi).
        let phi = 0.8;
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| {
                x = phi * x + (rng.gen::<f64>() - 0.5);
                x
            })
            .collect();
        let tau = integrated_autocorr_time(&xs);
        let expected = 0.5 * (1.0 + phi) / (1.0 - phi); // 4.5
        assert!(
            (tau - expected).abs() / expected < 0.25,
            "AR(1) tau {tau} vs expected {expected}"
        );
    }

    #[test]
    fn constant_series_degenerates() {
        let xs = [2.0; 50];
        assert!(autocorrelation(&xs, 5).is_empty());
        assert!(integrated_autocorr_time(&xs).is_nan());
        assert_eq!(effective_sample_size(&xs), 50.0);
    }

    #[test]
    fn ess_never_exceeds_n() {
        let xs: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let ess = effective_sample_size(&xs);
        assert!((1.0..=64.0).contains(&ess));
    }
}
