//! Grids and the grid-of-grids federation (Fig. 5).

use crate::resource::{paper_federation_sites, Site, SiteId};
use crate::scheduler::reservation::{co_allocation_success_probability, ManualBookingModel};
use serde::{Deserialize, Serialize};
use spice_stats::rng::seed_stream;

/// A single administrative grid (TeraGrid or NGS).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Grid {
    /// Name.
    pub name: String,
    /// Member site ids.
    pub sites: Vec<SiteId>,
}

/// A federation of independently administered grids.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Federation {
    /// All sites, indexed by [`SiteId`].
    pub sites: Vec<Site>,
    /// Constituent grids.
    pub grids: Vec<Grid>,
}

impl Federation {
    /// The paper's US–UK federation: TeraGrid (NCSA, SDSC, PSC) + UK NGS
    /// (NGS-Oxford, NGS-Leeds, HPCx).
    pub fn paper_us_uk() -> Federation {
        let sites = paper_federation_sites();
        let grids = vec![
            Grid {
                name: "TeraGrid".into(),
                sites: sites
                    .iter()
                    .filter(|s| s.grid == "TeraGrid")
                    .map(|s| s.id)
                    .collect(),
            },
            Grid {
                name: "NGS".into(),
                sites: sites
                    .iter()
                    .filter(|s| s.grid == "NGS")
                    .map(|s| s.id)
                    .collect(),
            },
        ];
        Federation { sites, grids }
    }

    /// Site lookup.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id as usize]
    }

    /// Total processors across the federation.
    pub fn total_procs(&self) -> u32 {
        self.sites.iter().map(|s| s.procs).sum()
    }

    /// Sites of one grid by name.
    pub fn grid_sites(&self, grid: &str) -> Vec<&Site> {
        self.sites.iter().filter(|s| s.grid == grid).collect()
    }

    /// A federation restricted to the given sites (e.g. the
    /// single-site comparison of T-batch).
    pub fn restricted(&self, keep: &[SiteId]) -> Federation {
        let sites: Vec<Site> = self
            .sites
            .iter()
            .filter(|s| keep.contains(&s.id))
            .cloned()
            .collect();
        let grids = self
            .grids
            .iter()
            .map(|g| Grid {
                name: g.name.clone(),
                sites: g
                    .sites
                    .iter()
                    .copied()
                    .filter(|id| keep.contains(id))
                    .collect(),
            })
            .filter(|g| !g.sites.is_empty())
            .collect();
        Federation { sites, grids }
    }

    /// Monte-Carlo co-scheduling experiment: attempt to book one advance
    /// reservation *per grid* simultaneously using the given booking
    /// model; co-allocation succeeds only if all succeed. Returns the
    /// empirical success rate over `trials` — the measured counterpart of
    /// [`co_allocation_success_probability`].
    pub fn co_schedule_success_rate(
        &self,
        booking: &ManualBookingModel,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut ok = 0usize;
        for t in 0..trials {
            let all = self.grids.iter().enumerate().all(|(g, _)| {
                booking
                    .simulate(seed_stream(seed, (t * self.grids.len() + g) as u64))
                    .confirmed
            });
            if all {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }

    /// Analytic co-allocation success for this federation's grid count.
    pub fn co_allocation_probability(&self, p_single: f64) -> f64 {
        co_allocation_success_probability(p_single, self.grids.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_federation_structure() {
        let f = Federation::paper_us_uk();
        assert_eq!(f.grids.len(), 2);
        assert_eq!(f.grids[0].name, "TeraGrid");
        assert_eq!(f.grids[1].name, "NGS");
        assert_eq!(f.sites.len(), 6);
        assert_eq!(f.total_procs(), 384 + 256 + 256 + 128 + 128 + 256);
        assert_eq!(f.grid_sites("NGS").len(), 3);
    }

    #[test]
    fn restriction_keeps_only_requested_sites() {
        let f = Federation::paper_us_uk();
        let single = f.restricted(&[0]);
        assert_eq!(single.sites.len(), 1);
        assert_eq!(single.grids.len(), 1);
        assert_eq!(single.sites[0].name, "NCSA");
    }

    #[test]
    fn empirical_co_scheduling_matches_analytic() {
        let f = Federation::paper_us_uk();
        let model = ManualBookingModel::paper_manual();
        // Single-grid success probability = 1 - p_abandon = 0.95.
        let p_single = 1.0 - model.p_abandon;
        let analytic = f.co_allocation_probability(p_single);
        let empirical = f.co_schedule_success_rate(&model, 50_000, 17);
        assert!(
            (empirical - analytic).abs() < 0.01,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn more_grids_less_success() {
        let f = Federation::paper_us_uk();
        assert!(f.co_allocation_probability(0.9) < 0.9);
    }
}
