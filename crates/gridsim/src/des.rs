//! Event-driven campaign execution.
//!
//! [`crate::campaign::Campaign::run`] *plans* with profile-based list
//! scheduling (clairvoyant about runtimes). This module *executes* the
//! same campaign through the discrete-event engine with per-site FCFS +
//! backfill queues and a myopic dispatcher — the grid as it actually
//! behaved, where nothing is clairvoyant. Comparing the two quantifies
//! what 2005-era queue opportunism cost relative to a coordinated plan
//! (the coordination gap §V-C-3 complains about).
//!
//! The execution engine itself lives in [`crate::resilience`]; this
//! module's entry points run it in the failure-free configuration
//! ([`crate::resilience::ResiliencePolicy::none`]), where outages simply
//! block new starts and every job succeeds on its first attempt.

use crate::campaign::{Campaign, CampaignResult};
use crate::resilience::{run_resilient_with_dispatch, ResiliencePolicy};

/// Job-placement policy of the federation dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Greedy: cheapest estimated completion (queue wait + backlog +
    /// runtime + known outage time) — what a broker with site state can
    /// do.
    EarliestCompletion,
    /// Round-robin over sites that fit the job — state-free placement.
    RoundRobin,
    /// Seeded-random placement over fitting sites — the "no broker"
    /// baseline.
    Random,
}

/// Execute a campaign through the discrete-event engine with the greedy
/// dispatcher. Deterministic under the campaign seed; returns the same
/// result type as the planner.
pub fn run_des(campaign: &Campaign) -> CampaignResult {
    run_des_with_policy(campaign, DispatchPolicy::EarliestCompletion)
}

/// Execute a campaign with an explicit dispatch policy (scheduling
/// ablation: how much does broker intelligence buy on a federation?).
pub fn run_des_with_policy(campaign: &Campaign, policy: DispatchPolicy) -> CampaignResult {
    run_resilient_with_dispatch(campaign, &ResiliencePolicy::none(), policy).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;

    #[test]
    fn des_completes_all_72_jobs_under_a_week() {
        let c = Campaign::paper_batch_phase(11);
        let r = run_des(&c);
        assert_eq!(r.records.len(), 72);
        assert!(
            r.makespan_days() < 7.0,
            "DES execution took {:.1} days",
            r.makespan_days()
        );
        assert!((r.cpu_hours - 75_000.0).abs() < 10_000.0);
    }

    #[test]
    fn des_is_deterministic() {
        let c = Campaign::paper_batch_phase(3);
        assert_eq!(run_des(&c), run_des(&c));
    }

    #[test]
    fn des_close_to_clairvoyant_plan() {
        // The myopic DES should be within ~2.5× of the clairvoyant planner
        // (and never beat it by much — sanity both ways).
        let c = Campaign::paper_batch_phase(5);
        let plan = c.run();
        let des = run_des(&c);
        let ratio = des.makespan_hours / plan.makespan_hours;
        assert!(
            (0.6..2.5).contains(&ratio),
            "DES/plan makespan ratio {ratio:.2} implausible ({} vs {})",
            des.makespan_hours,
            plan.makespan_hours
        );
    }

    #[test]
    fn des_respects_outages() {
        let base = run_des(&Campaign::paper_batch_phase(7));
        let mut c = Campaign::paper_batch_phase(7);
        c.outages = vec![
            Outage::new(0, 0.0, 48.0, crate::failure::OutageCause::Hardware),
            Outage::new(1, 0.0, 48.0, crate::failure::OutageCause::Hardware),
        ];
        let degraded = run_des(&c);
        assert!(degraded.makespan_hours >= base.makespan_hours);
        assert_eq!(degraded.records.len(), 72);
        // No job started on a downed site before recovery.
        for r in &degraded.records {
            if r.site == 0 || r.site == 1 {
                assert!(r.started >= 48.0 - 1e-9, "job started during outage: {r:?}");
            }
        }
    }

    #[test]
    fn greedy_dispatcher_beats_blind_policies() {
        let c = Campaign::paper_batch_phase(9);
        let greedy = run_des_with_policy(&c, DispatchPolicy::EarliestCompletion);
        let rr = run_des_with_policy(&c, DispatchPolicy::RoundRobin);
        let rand = run_des_with_policy(&c, DispatchPolicy::Random);
        assert_eq!(rr.records.len(), 72);
        assert_eq!(rand.records.len(), 72);
        // Broker intelligence must not lose to blind placement (allow a
        // small tolerance: stochastic queue waits).
        assert!(
            greedy.makespan_hours <= rr.makespan_hours * 1.1,
            "greedy {} vs round-robin {}",
            greedy.makespan_hours,
            rr.makespan_hours
        );
        assert!(
            greedy.makespan_hours <= rand.makespan_hours * 1.1,
            "greedy {} vs random {}",
            greedy.makespan_hours,
            rand.makespan_hours
        );
    }

    #[test]
    fn records_consistent() {
        let r = run_des(&Campaign::paper_batch_phase(2));
        for rec in &r.records {
            assert!(rec.finished > rec.started);
            assert!(rec.started >= rec.submitted);
            assert_eq!(rec.attempts, 1, "failure-free run must not retry");
            assert_eq!(rec.lost_cpu_hours, 0.0);
        }
    }
}
