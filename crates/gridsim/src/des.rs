//! Event-driven campaign execution.
//!
//! [`crate::campaign::Campaign::run`] *plans* with profile-based list
//! scheduling (clairvoyant about runtimes). This module *executes* the
//! same campaign through the discrete-event engine with per-site FCFS +
//! backfill queues and a myopic dispatcher — the grid as it actually
//! behaved, where nothing is clairvoyant. Comparing the two quantifies
//! what 2005-era queue opportunism cost relative to a coordinated plan
//! (the coordination gap §V-C-3 complains about).

use crate::campaign::{Campaign, CampaignResult};
use crate::event::{EventQueue, SimTime};
use crate::failure::blocked_windows;
use crate::job::JobRecord;
use crate::resource::SiteId;
use crate::scheduler::fcfs::SiteScheduler;
use spice_stats::rng::seed_stream;

/// Job-placement policy of the federation dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Greedy: cheapest estimated completion (queue wait + backlog +
    /// runtime) — what a broker with site state can do.
    EarliestCompletion,
    /// Round-robin over sites that fit the job — state-free placement.
    RoundRobin,
    /// Seeded-random placement over fitting sites — the "no broker"
    /// baseline.
    Random,
}

#[derive(Debug)]
enum Ev {
    /// A job enters the dispatcher.
    Submit(usize),
    /// A job finishes on a site.
    Finish(SiteId, u32),
    /// A site recovers from an outage (or a job becomes queue-eligible):
    /// re-attempt starts.
    Poke(SiteId),
}

/// Execute a campaign through the discrete-event engine with the greedy
/// dispatcher. Deterministic under the campaign seed; returns the same
/// result type as the planner.
pub fn run_des(campaign: &Campaign) -> CampaignResult {
    run_des_with_policy(campaign, DispatchPolicy::EarliestCompletion)
}

/// Execute a campaign with an explicit dispatch policy (scheduling
/// ablation: how much does broker intelligence buy on a federation?).
pub fn run_des_with_policy(campaign: &Campaign, policy: DispatchPolicy) -> CampaignResult {
    assert!(!campaign.jobs.is_empty() && !campaign.federation.sites.is_empty());
    let nsites = campaign.federation.sites.len();
    let mut schedulers: Vec<SiteScheduler> = campaign
        .federation
        .sites
        .iter()
        .map(|s| SiteScheduler::new(s.procs))
        .collect();
    // Outages: FCFS scheduler blocks starts until the latest outage end.
    for (si, site) in campaign.federation.sites.iter().enumerate() {
        for (start, end) in blocked_windows(&campaign.outages, site.id) {
            // Conservative: the site refuses new starts from campaign
            // begin if the outage begins within the campaign horizon.
            let _ = start;
            schedulers[si].set_down_until(end);
        }
    }

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (ji, job) in campaign.jobs.iter().enumerate() {
        q.schedule(SimTime::from_hours(job.release_hours), Ev::Submit(ji));
    }

    let mut records: Vec<JobRecord> = Vec::with_capacity(campaign.jobs.len());
    let mut jobs_per_site = vec![0usize; nsites];
    // Track pending work per site for the myopic dispatcher estimate.
    let mut backlog_cpu_h = vec![0.0f64; nsites];
    let mut rr_cursor = 0usize;

    let try_start = |si: usize,
                     now: f64,
                     schedulers: &mut Vec<SiteScheduler>,
                     q: &mut EventQueue<Ev>,
                     records: &mut Vec<JobRecord>,
                     jobs_per_site: &mut Vec<usize>| {
        let site = &campaign.federation.sites[si];
        let started = schedulers[si].try_start(now, |j| site.runtime(j.wall_hours));
        for (job, finish) in started {
            records.push(JobRecord {
                job: job.id,
                site: site.id,
                submitted: job.release_hours,
                started: now,
                finished: finish,
                procs: job.procs,
            });
            jobs_per_site[si] += 1;
            q.schedule(SimTime::from_hours(finish), Ev::Finish(site.id, job.id));
        }
    };

    #[cfg(feature = "audit")]
    let mut submitted = 0usize;
    while let Some((t, ev)) = q.pop() {
        let now = t.hours();
        match ev {
            Ev::Submit(ji) => {
                #[cfg(feature = "audit")]
                {
                    submitted += 1;
                }
                let job = &campaign.jobs[ji];
                let fitting: Vec<usize> = campaign
                    .federation
                    .sites
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.fits(job.procs))
                    .map(|(si, _)| si)
                    .collect();
                assert!(
                    !fitting.is_empty(),
                    "job {} fits nowhere in the federation",
                    job.name
                );
                // One stochastic queue-wait sample per (job, site), used
                // both for the dispatcher's estimate and as the applied
                // wait — a single definition so they cannot diverge.
                let wait_at = |si: usize| -> f64 {
                    let u = (seed_stream(campaign.seed, (ji as u64) << 8 | si as u64) >> 11) as f64
                        / (1u64 << 53) as f64;
                    -campaign.federation.sites[si].mean_queue_wait * (1.0 - u).max(1e-12).ln()
                };
                let si = match policy {
                    DispatchPolicy::EarliestCompletion => {
                        // Myopic: cheapest estimated completion among
                        // fitting sites, using current backlog.
                        let mut best: Option<(usize, f64)> = None;
                        for &si in &fitting {
                            let site = &campaign.federation.sites[si];
                            let est = wait_at(si)
                                + backlog_cpu_h[si] / site.procs as f64
                                + site.runtime(job.wall_hours);
                            if best.is_none_or(|(_, b)| est < b) {
                                best = Some((si, est));
                            }
                        }
                        best.expect("fitting is non-empty").0
                    }
                    DispatchPolicy::RoundRobin => {
                        let si = fitting[rr_cursor % fitting.len()];
                        rr_cursor += 1;
                        si
                    }
                    DispatchPolicy::Random => {
                        let u = seed_stream(campaign.seed ^ 0x5EED, ji as u64);
                        fitting[(u % fitting.len() as u64) as usize]
                    }
                };
                let queue_wait = wait_at(si);
                backlog_cpu_h[si] += job.cpu_hours();
                schedulers[si].submit(job.clone(), now + queue_wait);
                q.schedule(
                    SimTime::from_hours(now + queue_wait),
                    Ev::Poke(si as SiteId),
                );
            }
            Ev::Finish(site_id, job_id) => {
                let si = site_id as usize;
                schedulers[si].finish(job_id);
                if let Some(rec) = records.iter().find(|r| r.job == job_id) {
                    backlog_cpu_h[si] -= rec.cpu_hours();
                }
                try_start(
                    si,
                    now,
                    &mut schedulers,
                    &mut q,
                    &mut records,
                    &mut jobs_per_site,
                );
            }
            Ev::Poke(site_id) => {
                let si = site_id as usize;
                try_start(
                    si,
                    now,
                    &mut schedulers,
                    &mut q,
                    &mut records,
                    &mut jobs_per_site,
                );
                // If the site is down, re-poke at recovery time handled by
                // the next Finish/Poke; ensure at least one retry after any
                // active downtime by scheduling a poke at next_ready.
                if schedulers[si].queued() > 0 {
                    if let Some((_, f)) = schedulers[si].next_finish().filter(|&(_, f)| f > now) {
                        q.schedule(SimTime::from_hours(f), Ev::Poke(site_id));
                    } else {
                        // Nothing running (site likely down): retry hourly.
                        q.schedule(SimTime::from_hours(now + 1.0), Ev::Poke(site_id));
                    }
                }
            }
        }
        // Audit: every job handed to the federation is still accounted
        // for — sitting in some site queue or already started (a record
        // exists for running and finished jobs alike).
        #[cfg(feature = "audit")]
        {
            let queued: usize = schedulers.iter().map(SiteScheduler::queued).sum();
            if queued + records.len() != submitted {
                // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                panic!(
                    "spice-audit[gridsim.job_conservation]: {submitted} jobs \
                     submitted but {queued} queued + {} started",
                    records.len()
                );
            }
        }
    }

    assert_eq!(
        records.len(),
        campaign.jobs.len(),
        "DES lost jobs: {} of {}",
        records.len(),
        campaign.jobs.len()
    );
    let makespan = records.iter().map(|r| r.finished).fold(0.0f64, f64::max);
    let cpu_hours = records.iter().map(JobRecord::cpu_hours).sum();
    CampaignResult {
        records,
        makespan_hours: makespan,
        cpu_hours,
        jobs_per_site: campaign
            .federation
            .sites
            .iter()
            .zip(&jobs_per_site)
            .map(|(s, &n)| (s.id, n))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;

    #[test]
    fn des_completes_all_72_jobs_under_a_week() {
        let c = Campaign::paper_batch_phase(11);
        let r = run_des(&c);
        assert_eq!(r.records.len(), 72);
        assert!(
            r.makespan_days() < 7.0,
            "DES execution took {:.1} days",
            r.makespan_days()
        );
        assert!((r.cpu_hours - 75_000.0).abs() < 10_000.0);
    }

    #[test]
    fn des_is_deterministic() {
        let c = Campaign::paper_batch_phase(3);
        assert_eq!(run_des(&c), run_des(&c));
    }

    #[test]
    fn des_close_to_clairvoyant_plan() {
        // The myopic DES should be within ~2.5× of the clairvoyant planner
        // (and never beat it by much — sanity both ways).
        let c = Campaign::paper_batch_phase(5);
        let plan = c.run();
        let des = run_des(&c);
        let ratio = des.makespan_hours / plan.makespan_hours;
        assert!(
            (0.6..2.5).contains(&ratio),
            "DES/plan makespan ratio {ratio:.2} implausible ({} vs {})",
            des.makespan_hours,
            plan.makespan_hours
        );
    }

    #[test]
    fn des_respects_outages() {
        let base = run_des(&Campaign::paper_batch_phase(7));
        let mut c = Campaign::paper_batch_phase(7);
        c.outages = vec![
            Outage::new(0, 0.0, 48.0, crate::failure::OutageCause::Hardware),
            Outage::new(1, 0.0, 48.0, crate::failure::OutageCause::Hardware),
        ];
        let degraded = run_des(&c);
        assert!(degraded.makespan_hours >= base.makespan_hours);
        assert_eq!(degraded.records.len(), 72);
        // No job started on a downed site before recovery.
        for r in &degraded.records {
            if r.site == 0 || r.site == 1 {
                assert!(r.started >= 48.0 - 1e-9, "job started during outage: {r:?}");
            }
        }
    }

    #[test]
    fn greedy_dispatcher_beats_blind_policies() {
        let c = Campaign::paper_batch_phase(9);
        let greedy = run_des_with_policy(&c, DispatchPolicy::EarliestCompletion);
        let rr = run_des_with_policy(&c, DispatchPolicy::RoundRobin);
        let rand = run_des_with_policy(&c, DispatchPolicy::Random);
        assert_eq!(rr.records.len(), 72);
        assert_eq!(rand.records.len(), 72);
        // Broker intelligence must not lose to blind placement (allow a
        // small tolerance: stochastic queue waits).
        assert!(
            greedy.makespan_hours <= rr.makespan_hours * 1.1,
            "greedy {} vs round-robin {}",
            greedy.makespan_hours,
            rr.makespan_hours
        );
        assert!(
            greedy.makespan_hours <= rand.makespan_hours * 1.1,
            "greedy {} vs random {}",
            greedy.makespan_hours,
            rand.makespan_hours
        );
    }

    #[test]
    fn records_consistent() {
        let r = run_des(&Campaign::paper_batch_phase(2));
        for rec in &r.records {
            assert!(rec.finished > rec.started);
            assert!(rec.started >= rec.submitted);
        }
    }
}
