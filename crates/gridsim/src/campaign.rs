//! The production batch phase (§III, T-batch): map a set of simulations
//! onto the federation and measure makespan and CPU-hours.
//!
//! "We used the grid infrastructure in Fig. 5, to perform to completion
//! 72 parallel MD simulations in under a week with each individual
//! simulation running on 128 or 256 processors (…) This required
//! approximately 75,000 CPU hours: it is unlikely that such computations
//! would be possible in under a week without a grid infrastructure in
//! place."
//!
//! Scheduling model: greedy earliest-completion list scheduling over
//! per-site capacity profiles (profile-based backfill), with stochastic
//! per-job queue-entry delays representing competing background load, and
//! full-site outage windows.

use crate::failure::{blocked_windows, Outage};
use crate::federation::Federation;
use crate::job::{Job, JobRecord};
use crate::resource::SiteId;
use crate::scheduler::profile::CapacityProfile;
use serde::{Deserialize, Serialize};
use spice_stats::rng::seed_stream;

/// A campaign: jobs + federation + outages.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The resources.
    pub federation: Federation,
    /// The work.
    pub jobs: Vec<Job>,
    /// Outage windows.
    pub outages: Vec<Outage>,
    /// Master seed for stochastic queue waits.
    pub seed: u64,
}

/// Result of simulating a campaign.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CampaignResult {
    /// Per-job execution records.
    pub records: Vec<JobRecord>,
    /// Time from first submission to last completion (hours).
    pub makespan_hours: f64,
    /// Total CPU-hours consumed.
    pub cpu_hours: f64,
    /// Jobs per site.
    pub jobs_per_site: Vec<(SiteId, usize)>,
}

impl CampaignResult {
    /// Makespan in days.
    pub fn makespan_days(&self) -> f64 {
        self.makespan_hours / 24.0
    }

    /// Mean queue wait (hours). An empty campaign (every job abandoned,
    /// or no jobs at all) has zero mean wait, not NaN.
    pub fn mean_wait(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let waits: Vec<f64> = self.records.iter().map(JobRecord::wait).collect();
        spice_stats::mean(&waits)
    }

    /// Mean retries per completed job (0 when no records).
    pub fn mean_retries(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let r: u32 = self.records.iter().map(JobRecord::retries).sum();
        f64::from(r) / self.records.len() as f64
    }
}

/// The paper's 72-simulation production set: half on 128 processors, half
/// on 256, sized so the campaign totals ≈75,000 CPU-hours (the in-text
/// figure), i.e. ≈1,040 CPU-hours per simulation — a few nanoseconds of
/// the 300k-atom system per realization.
pub fn paper_production_jobs() -> Vec<Job> {
    (0..72u32)
        .map(|i| {
            let procs = if i % 2 == 0 { 128 } else { 256 };
            // 75,000 CPU-h over 72 jobs with the 128/256 split:
            // wall hours chosen per class so both classes cost the same.
            let wall = if procs == 128 { 8.14 } else { 4.07 };
            let mut j = Job::new(i, format!("smd-prod-{i:02}"), procs, wall);
            // Realizations release in three waves (parameter priming →
            // production batches), as campaigns actually stage work.
            j.release_hours = (i / 24) as f64 * 2.0;
            j
        })
        .collect()
}

/// The outage history §V-C-4 reports around SC05: UK middleware churn
/// left NGS-Leeds uncoordinatable for the first three weeks (so Oxford
/// was the one usable UK node), and then "as luck would have it" that
/// surviving node suffered a security breach at day 1 that took weeks to
/// sanitize.
pub fn sc05_outages() -> Vec<Outage> {
    vec![
        Outage::new(
            4,
            0.0,
            504.0,
            crate::failure::OutageCause::MiddlewareImmaturity,
        ),
        Outage::security_breach(3, 24.0, 3.0),
    ]
}

impl Campaign {
    /// The paper's production campaign on the full US–UK federation.
    pub fn paper_batch_phase(seed: u64) -> Campaign {
        Campaign {
            federation: Federation::paper_us_uk(),
            jobs: paper_production_jobs(),
            outages: Vec::new(),
            seed,
        }
    }

    /// The production campaign under the SC05 outage history
    /// ([`sc05_outages`]).
    pub fn sc05_outage_phase(seed: u64) -> Campaign {
        Campaign {
            outages: sc05_outages(),
            ..Campaign::paper_batch_phase(seed)
        }
    }

    /// Simulate the campaign; deterministic under the seed.
    pub fn run(&self) -> CampaignResult {
        assert!(!self.jobs.is_empty(), "campaign has no jobs");
        assert!(!self.federation.sites.is_empty(), "campaign has no sites");
        let mut profiles: Vec<CapacityProfile> = self
            .federation
            .sites
            .iter()
            .map(|s| CapacityProfile::new(s.procs))
            .collect();
        let blocked: Vec<Vec<(f64, f64)>> = self
            .federation
            .sites
            .iter()
            .map(|s| blocked_windows(&self.outages, s.id))
            .collect();

        // Jobs in release order (stable by id) — the order the campaign
        // manager submits them.
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            self.jobs[a]
                .release_hours
                .total_cmp(&self.jobs[b].release_hours)
                .then(self.jobs[a].id.cmp(&self.jobs[b].id))
        });

        let mut records = Vec::with_capacity(self.jobs.len());
        let mut jobs_per_site = vec![0usize; self.federation.sites.len()];
        for &ji in &order {
            let job = &self.jobs[ji];
            // Greedy: place on the site with earliest completion.
            let mut best: Option<(usize, f64, f64)> = None; // (site idx, start, finish)
            for (si, site) in self.federation.sites.iter().enumerate() {
                if !site.fits(job.procs) {
                    continue;
                }
                // Stochastic background-queue delay, per (job, site).
                let u = (seed_stream(self.seed, (ji as u64) << 8 | si as u64) >> 11) as f64
                    / (1u64 << 53) as f64;
                let queue_wait = -site.mean_queue_wait * (1.0 - u).max(1e-12).ln();
                let runtime = site.runtime(job.wall_hours);
                let not_before = job.release_hours + queue_wait;
                if let Some(start) =
                    profiles[si].earliest_start(job.procs, runtime, not_before, &blocked[si])
                {
                    let finish = start + runtime;
                    let better = match best {
                        None => true,
                        Some((_, _, bf)) => finish < bf,
                    };
                    if better {
                        best = Some((si, start, finish));
                    }
                }
            }
            let (si, start, finish) = best.unwrap_or_else(|| {
                // spice-lint: allow(P001) planner contract: a job that fits no site is a config error, not a recoverable state
                panic!(
                    "job {} ({} procs) fits nowhere in the federation",
                    job.name, job.procs
                )
            });
            let runtime = finish - start;
            profiles[si].commit(job.procs, start, start + runtime);
            jobs_per_site[si] += 1;
            records.push(JobRecord::clean(
                job.id,
                self.federation.sites[si].id,
                job.release_hours,
                start,
                finish,
                job.procs,
            ));
        }

        let makespan = records.iter().map(|r| r.finished).fold(0.0f64, f64::max);
        let cpu_hours = records.iter().map(JobRecord::cpu_hours).sum();
        CampaignResult {
            records,
            makespan_hours: makespan,
            cpu_hours,
            jobs_per_site: self
                .federation
                .sites
                .iter()
                .zip(&jobs_per_site)
                .map(|(s, &n)| (s.id, n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::OutageCause;

    #[test]
    fn paper_jobs_total_75k_cpu_hours() {
        let jobs = paper_production_jobs();
        assert_eq!(jobs.len(), 72);
        let total: f64 = jobs.iter().map(Job::cpu_hours).sum();
        assert!(
            (total - 75_000.0).abs() < 1_500.0,
            "campaign must total ≈75k CPU-hours, got {total}"
        );
        assert!(jobs.iter().all(|j| j.procs == 128 || j.procs == 256));
    }

    #[test]
    fn federated_campaign_finishes_under_a_week() {
        let result = Campaign::paper_batch_phase(11).run();
        assert_eq!(result.records.len(), 72);
        assert!(
            result.makespan_days() < 7.0,
            "paper claim: < 1 week on the federation; got {:.1} days",
            result.makespan_days()
        );
        assert!((result.cpu_hours - 75_000.0).abs() < 10_000.0);
    }

    #[test]
    fn single_site_takes_much_longer() {
        let fed = Federation::paper_us_uk();
        let mut single = Campaign::paper_batch_phase(11);
        // Best single site: NCSA (largest).
        single.federation = fed.restricted(&[0]);
        let fed_result = Campaign::paper_batch_phase(11).run();
        let single_result = single.run();
        assert!(
            single_result.makespan_hours > 1.8 * fed_result.makespan_hours,
            "single site {} h vs federation {} h",
            single_result.makespan_hours,
            fed_result.makespan_hours
        );
    }

    #[test]
    fn campaign_spreads_over_multiple_sites() {
        let result = Campaign::paper_batch_phase(3).run();
        let used_sites = result.jobs_per_site.iter().filter(|(_, n)| *n > 0).count();
        assert!(
            used_sites >= 4,
            "federation must actually be used: {used_sites} sites"
        );
    }

    #[test]
    fn outage_delays_campaign() {
        let base = Campaign::paper_batch_phase(5).run();
        let mut with_outage = Campaign::paper_batch_phase(5);
        // Knock out the two biggest sites for the first three days.
        with_outage.outages = vec![
            Outage::new(0, 0.0, 72.0, OutageCause::Hardware),
            Outage::new(1, 0.0, 72.0, OutageCause::Maintenance),
        ];
        let degraded = with_outage.run();
        assert!(
            degraded.makespan_hours > base.makespan_hours,
            "outages must hurt: {} vs {}",
            degraded.makespan_hours,
            base.makespan_hours
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Campaign::paper_batch_phase(9).run();
        let b = Campaign::paper_batch_phase(9).run();
        assert_eq!(a, b);
        let c = Campaign::paper_batch_phase(10).run();
        assert_ne!(a.makespan_hours, c.makespan_hours);
    }

    #[test]
    fn records_are_consistent() {
        let result = Campaign::paper_batch_phase(2).run();
        for r in &result.records {
            assert!(r.started >= r.submitted, "start before submission");
            assert!(r.finished > r.started);
            assert!(r.procs == 128 || r.procs == 256);
        }
        assert!(result.mean_wait() >= 0.0);
    }

    #[test]
    fn empty_result_aggregates_are_zero_not_nan() {
        // A campaign where every job was abandoned produces an empty
        // record set; aggregates must degrade to 0.0, not NaN.
        let empty = CampaignResult {
            records: Vec::new(),
            makespan_hours: 0.0,
            cpu_hours: 0.0,
            jobs_per_site: Vec::new(),
        };
        assert_eq!(empty.mean_wait(), 0.0);
        assert_eq!(empty.mean_retries(), 0.0);
        assert!(!empty.mean_wait().is_nan());
    }

    #[test]
    fn sc05_outage_scenario_is_well_formed() {
        let outs = sc05_outages();
        assert_eq!(outs.len(), 2);
        // Leeds (site 4) down for three weeks from campaign start.
        assert_eq!(outs[0].site, 4);
        assert_eq!(outs[0].duration(), 504.0);
        // Oxford (site 3) breached at day 1, weeks-long sanitization.
        assert_eq!(outs[1].site, 3);
        assert_eq!(outs[1].cause, OutageCause::SecurityBreach);
        assert!(outs[1].duration() >= 2.0 * 168.0);
        let c = Campaign::sc05_outage_phase(1);
        assert_eq!(c.outages, outs);
        assert_eq!(c.jobs.len(), 72);
    }

    #[test]
    #[should_panic(expected = "fits nowhere")]
    fn oversized_job_panics() {
        let mut c = Campaign::paper_batch_phase(1);
        c.jobs = vec![Job::new(0, "huge", 100_000, 1.0)];
        c.run();
    }
}
