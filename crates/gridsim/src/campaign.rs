//! The production batch phase (§III, T-batch): map a set of simulations
//! onto the federation and measure makespan and CPU-hours.
//!
//! "We used the grid infrastructure in Fig. 5, to perform to completion
//! 72 parallel MD simulations in under a week with each individual
//! simulation running on 128 or 256 processors (…) This required
//! approximately 75,000 CPU hours: it is unlikely that such computations
//! would be possible in under a week without a grid infrastructure in
//! place."
//!
//! Scheduling model: greedy earliest-completion list scheduling over
//! per-site capacity profiles (profile-based backfill), with stochastic
//! per-job queue-entry delays representing competing background load, and
//! full-site outage windows.

use crate::failure::{blocked_windows, Outage, OutageCause};
use crate::federation::{Federation, Grid};
use crate::job::{Job, JobRecord};
use crate::resource::{Site, SiteId};
use crate::scheduler::profile::CapacityProfile;
use serde::{Deserialize, Serialize};
use spice_stats::rng::{seed_stream, unit_f64};

/// Salt separating the synthetic-campaign generator's seed streams from
/// the engine's own per-(job, site) queue-wait streams.
const SYNTH_SALT: u64 = 0x5359_4E54_4845_5449; // "SYNTHETI"

/// A campaign: jobs + federation + outages.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The resources.
    pub federation: Federation,
    /// The work.
    pub jobs: Vec<Job>,
    /// Outage windows.
    pub outages: Vec<Outage>,
    /// Master seed for stochastic queue waits.
    pub seed: u64,
}

/// Result of simulating a campaign.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CampaignResult {
    /// Per-job execution records.
    pub records: Vec<JobRecord>,
    /// Time from first submission to last completion (hours).
    pub makespan_hours: f64,
    /// Total CPU-hours consumed.
    pub cpu_hours: f64,
    /// Jobs per site.
    pub jobs_per_site: Vec<(SiteId, usize)>,
}

impl CampaignResult {
    /// Makespan in days.
    pub fn makespan_days(&self) -> f64 {
        self.makespan_hours / 24.0
    }

    /// Mean queue wait (hours). An empty campaign (every job abandoned,
    /// or no jobs at all) has zero mean wait, not NaN.
    pub fn mean_wait(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let waits: Vec<f64> = self.records.iter().map(JobRecord::wait).collect();
        spice_stats::mean(&waits)
    }

    /// Mean retries per completed job (0 when no records).
    pub fn mean_retries(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let r: u32 = self.records.iter().map(JobRecord::retries).sum();
        f64::from(r) / self.records.len() as f64
    }
}

/// The paper's 72-simulation production set: half on 128 processors, half
/// on 256, sized so the campaign totals ≈75,000 CPU-hours (the in-text
/// figure), i.e. ≈1,040 CPU-hours per simulation — a few nanoseconds of
/// the 300k-atom system per realization.
pub fn paper_production_jobs() -> Vec<Job> {
    (0..72u32)
        .map(|i| {
            let procs = if i % 2 == 0 { 128 } else { 256 };
            // 75,000 CPU-h over 72 jobs with the 128/256 split:
            // wall hours chosen per class so both classes cost the same.
            let wall = if procs == 128 { 8.14 } else { 4.07 };
            let mut j = Job::new(i, format!("smd-prod-{i:02}"), procs, wall);
            // Realizations release in three waves (parameter priming →
            // production batches), as campaigns actually stage work.
            j.release_hours = (i / 24) as f64 * 2.0;
            j
        })
        .collect()
}

/// The outage history §V-C-4 reports around SC05: UK middleware churn
/// left NGS-Leeds uncoordinatable for the first three weeks (so Oxford
/// was the one usable UK node), and then "as luck would have it" that
/// surviving node suffered a security breach at day 1 that took weeks to
/// sanitize.
pub fn sc05_outages() -> Vec<Outage> {
    vec![
        Outage::new(
            4,
            0.0,
            504.0,
            crate::failure::OutageCause::MiddlewareImmaturity,
        ),
        Outage::security_breach(3, 24.0, 3.0),
    ]
}

impl Campaign {
    /// The paper's production campaign on the full US–UK federation.
    pub fn paper_batch_phase(seed: u64) -> Campaign {
        Campaign {
            federation: Federation::paper_us_uk(),
            jobs: paper_production_jobs(),
            outages: Vec::new(),
            seed,
        }
    }

    /// The production campaign under the SC05 outage history
    /// ([`sc05_outages`]).
    pub fn sc05_outage_phase(seed: u64) -> Campaign {
        Campaign {
            outages: sc05_outages(),
            ..Campaign::paper_batch_phase(seed)
        }
    }

    /// A scale-testing campaign: `n_jobs` jobs over `n_sites` synthetic
    /// sites, deterministic under `seed` (and independent of the
    /// engine's own stochastic streams, which are salted differently).
    ///
    /// The generated population exercises every engine path the paper
    /// federation does, at arbitrary scale:
    ///
    /// * site 0 is a 512-processor, public-IP, lightpath hub, so every
    ///   job — including the widest and the steering-coupled — always
    ///   has at least one feasible site;
    /// * the remaining sites draw capacities from 2005-era tiers
    ///   (64–384 processors), varied speed factors, and a minority of
    ///   hidden-IP sites with and without gateways;
    /// * job widths are tiered (64–512), wall-times are heavy-tailed
    ///   (Pareto, capped at one week of reference hours), ~10% of jobs
    ///   are steering-coupled, and releases arrive in eight waves;
    /// * `n_sites / 3` outage windows hit non-hub sites with cycling
    ///   causes.
    ///
    /// # Panics
    /// Panics when `n_jobs` or `n_sites` is zero.
    pub fn synthetic(n_jobs: usize, n_sites: usize, seed: u64) -> Campaign {
        assert!(n_jobs > 0, "synthetic campaign needs at least one job");
        assert!(n_sites > 0, "synthetic campaign needs at least one site");
        let master = seed ^ SYNTH_SALT;
        let mut sites = Vec::with_capacity(n_sites);
        sites.push(Site {
            id: 0,
            name: "syn-hub".into(),
            grid: "SynWest".into(),
            procs: 512,
            speed: 1.0,
            mean_queue_wait: 8.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: true,
        });
        for i in 1..n_sites {
            let si = i as u64;
            let tier = [64u32, 128, 256, 384];
            let procs = tier[(seed_stream(master, si) % tier.len() as u64) as usize];
            let speed = 0.8 + 0.4 * unit_f64(seed_stream(master, 0x1000 + si));
            let wait = 4.0 + 10.0 * unit_f64(seed_stream(master, 0x2000 + si));
            let hidden = unit_f64(seed_stream(master, 0x3000 + si)) < 0.2;
            let gateway = hidden && unit_f64(seed_stream(master, 0x4000 + si)) < 0.5;
            let lightpath = unit_f64(seed_stream(master, 0x5000 + si)) < 0.6;
            sites.push(Site {
                id: i as SiteId,
                name: format!("syn-{i:03}"),
                grid: if i % 2 == 0 { "SynWest" } else { "SynEast" }.into(),
                procs,
                speed,
                mean_queue_wait: wait,
                hidden_ip: hidden,
                has_gateway: gateway,
                lightpath,
            });
        }
        let grids = ["SynWest", "SynEast"]
            .iter()
            .map(|g| Grid {
                name: (*g).into(),
                sites: sites
                    .iter()
                    .filter(|s| s.grid == *g)
                    .map(|s| s.id)
                    .collect(),
            })
            .filter(|g| !g.sites.is_empty())
            .collect();

        let wave = n_jobs.div_ceil(8).max(1);
        let jobs = (0..n_jobs)
            .map(|i| {
                let ji = i as u64;
                let u = unit_f64(seed_stream(master, 0x10_0000 + ji));
                let procs = match u {
                    u if u < 0.35 => 64,
                    u if u < 0.65 => 128,
                    u if u < 0.85 => 256,
                    u if u < 0.95 => 384,
                    _ => 512,
                };
                // Heavy-tailed runtimes: Pareto(x_m = 0.3 h, α = 1.3)
                // capped at one reference week, so most jobs are short
                // but the tail keeps sites busy across waves.
                let v = unit_f64(seed_stream(master, 0x20_0000 + ji));
                let wall = (0.3 * (1.0 - v).max(1e-12).powf(-1.0 / 1.3)).min(168.0);
                let mut j = Job::new(i as u32, format!("syn-{i:06}"), procs, wall);
                j.release_hours = (i / wave) as f64 * 2.0;
                if unit_f64(seed_stream(master, 0x30_0000 + ji)) < 0.1 {
                    j = j.steering_coupled();
                }
                j
            })
            .collect();

        let causes = [
            OutageCause::Hardware,
            OutageCause::Maintenance,
            OutageCause::MiddlewareImmaturity,
            OutageCause::SecurityBreach,
        ];
        let outages = (0..n_sites / 3)
            .map(|k| {
                let ki = k as u64;
                // Never the hub: wide jobs must keep a feasible site.
                let site = 1 + (seed_stream(master, 0x40_0000 + ki) % (n_sites as u64 - 1));
                let start = 100.0 * unit_f64(seed_stream(master, 0x50_0000 + ki));
                let dur = 5.0 + 50.0 * unit_f64(seed_stream(master, 0x60_0000 + ki));
                Outage::new(site as SiteId, start, start + dur, causes[k % causes.len()])
            })
            .collect();

        Campaign {
            federation: Federation { sites, grids },
            jobs,
            outages,
            seed,
        }
    }

    /// Simulate the campaign; deterministic under the seed.
    pub fn run(&self) -> CampaignResult {
        assert!(!self.jobs.is_empty(), "campaign has no jobs");
        assert!(!self.federation.sites.is_empty(), "campaign has no sites");
        let mut profiles: Vec<CapacityProfile> = self
            .federation
            .sites
            .iter()
            .map(|s| CapacityProfile::new(s.procs))
            .collect();
        let blocked: Vec<Vec<(f64, f64)>> = self
            .federation
            .sites
            .iter()
            .map(|s| blocked_windows(&self.outages, s.id))
            .collect();

        // Jobs in release order (stable by id) — the order the campaign
        // manager submits them.
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            self.jobs[a]
                .release_hours
                .total_cmp(&self.jobs[b].release_hours)
                .then(self.jobs[a].id.cmp(&self.jobs[b].id))
        });

        let mut records = Vec::with_capacity(self.jobs.len());
        let mut jobs_per_site = vec![0usize; self.federation.sites.len()];
        for &ji in &order {
            let job = &self.jobs[ji];
            // Greedy: place on the site with earliest completion.
            let mut best: Option<(usize, f64, f64)> = None; // (site idx, start, finish)
            for (si, site) in self.federation.sites.iter().enumerate() {
                if !site.fits(job.procs) {
                    continue;
                }
                // Stochastic background-queue delay, per (job, site).
                let u = (seed_stream(self.seed, (ji as u64) << 8 | si as u64) >> 11) as f64
                    / (1u64 << 53) as f64;
                let queue_wait = -site.mean_queue_wait * (1.0 - u).max(1e-12).ln();
                let runtime = site.runtime(job.wall_hours);
                let not_before = job.release_hours + queue_wait;
                if let Some(start) =
                    profiles[si].earliest_start(job.procs, runtime, not_before, &blocked[si])
                {
                    let finish = start + runtime;
                    let better = match best {
                        None => true,
                        Some((_, _, bf)) => finish < bf,
                    };
                    if better {
                        best = Some((si, start, finish));
                    }
                }
            }
            let (si, start, finish) = best.unwrap_or_else(|| {
                // spice-lint: allow(P001) planner contract: a job that fits no site is a config error, not a recoverable state
                panic!(
                    "job {} ({} procs) fits nowhere in the federation",
                    job.name, job.procs
                )
            });
            let runtime = finish - start;
            profiles[si].commit(job.procs, start, start + runtime);
            jobs_per_site[si] += 1;
            records.push(JobRecord::clean(
                job.id,
                self.federation.sites[si].id,
                job.release_hours,
                start,
                finish,
                job.procs,
            ));
        }

        let makespan = records.iter().map(|r| r.finished).fold(0.0f64, f64::max);
        let cpu_hours = records.iter().map(JobRecord::cpu_hours).sum();
        CampaignResult {
            records,
            makespan_hours: makespan,
            cpu_hours,
            jobs_per_site: self
                .federation
                .sites
                .iter()
                .zip(&jobs_per_site)
                .map(|(s, &n)| (s.id, n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::OutageCause;

    #[test]
    fn paper_jobs_total_75k_cpu_hours() {
        let jobs = paper_production_jobs();
        assert_eq!(jobs.len(), 72);
        let total: f64 = jobs.iter().map(Job::cpu_hours).sum();
        assert!(
            (total - 75_000.0).abs() < 1_500.0,
            "campaign must total ≈75k CPU-hours, got {total}"
        );
        assert!(jobs.iter().all(|j| j.procs == 128 || j.procs == 256));
    }

    #[test]
    fn federated_campaign_finishes_under_a_week() {
        let result = Campaign::paper_batch_phase(11).run();
        assert_eq!(result.records.len(), 72);
        assert!(
            result.makespan_days() < 7.0,
            "paper claim: < 1 week on the federation; got {:.1} days",
            result.makespan_days()
        );
        assert!((result.cpu_hours - 75_000.0).abs() < 10_000.0);
    }

    #[test]
    fn single_site_takes_much_longer() {
        let fed = Federation::paper_us_uk();
        let mut single = Campaign::paper_batch_phase(11);
        // Best single site: NCSA (largest).
        single.federation = fed.restricted(&[0]);
        let fed_result = Campaign::paper_batch_phase(11).run();
        let single_result = single.run();
        assert!(
            single_result.makespan_hours > 1.8 * fed_result.makespan_hours,
            "single site {} h vs federation {} h",
            single_result.makespan_hours,
            fed_result.makespan_hours
        );
    }

    #[test]
    fn campaign_spreads_over_multiple_sites() {
        let result = Campaign::paper_batch_phase(3).run();
        let used_sites = result.jobs_per_site.iter().filter(|(_, n)| *n > 0).count();
        assert!(
            used_sites >= 4,
            "federation must actually be used: {used_sites} sites"
        );
    }

    #[test]
    fn outage_delays_campaign() {
        let base = Campaign::paper_batch_phase(5).run();
        let mut with_outage = Campaign::paper_batch_phase(5);
        // Knock out the two biggest sites for the first three days.
        with_outage.outages = vec![
            Outage::new(0, 0.0, 72.0, OutageCause::Hardware),
            Outage::new(1, 0.0, 72.0, OutageCause::Maintenance),
        ];
        let degraded = with_outage.run();
        assert!(
            degraded.makespan_hours > base.makespan_hours,
            "outages must hurt: {} vs {}",
            degraded.makespan_hours,
            base.makespan_hours
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Campaign::paper_batch_phase(9).run();
        let b = Campaign::paper_batch_phase(9).run();
        assert_eq!(a, b);
        let c = Campaign::paper_batch_phase(10).run();
        assert_ne!(a.makespan_hours, c.makespan_hours);
    }

    #[test]
    fn records_are_consistent() {
        let result = Campaign::paper_batch_phase(2).run();
        for r in &result.records {
            assert!(r.started >= r.submitted, "start before submission");
            assert!(r.finished > r.started);
            assert!(r.procs == 128 || r.procs == 256);
        }
        assert!(result.mean_wait() >= 0.0);
    }

    #[test]
    fn empty_result_aggregates_are_zero_not_nan() {
        // A campaign where every job was abandoned produces an empty
        // record set; aggregates must degrade to 0.0, not NaN.
        let empty = CampaignResult {
            records: Vec::new(),
            makespan_hours: 0.0,
            cpu_hours: 0.0,
            jobs_per_site: Vec::new(),
        };
        assert_eq!(empty.mean_wait(), 0.0);
        assert_eq!(empty.mean_retries(), 0.0);
        assert!(!empty.mean_wait().is_nan());
    }

    #[test]
    fn sc05_outage_scenario_is_well_formed() {
        let outs = sc05_outages();
        assert_eq!(outs.len(), 2);
        // Leeds (site 4) down for three weeks from campaign start.
        assert_eq!(outs[0].site, 4);
        assert_eq!(outs[0].duration(), 504.0);
        // Oxford (site 3) breached at day 1, weeks-long sanitization.
        assert_eq!(outs[1].site, 3);
        assert_eq!(outs[1].cause, OutageCause::SecurityBreach);
        assert!(outs[1].duration() >= 2.0 * 168.0);
        let c = Campaign::sc05_outage_phase(1);
        assert_eq!(c.outages, outs);
        assert_eq!(c.jobs.len(), 72);
    }

    #[test]
    fn synthetic_campaign_is_deterministic_and_well_formed() {
        let a = Campaign::synthetic(200, 9, 42);
        let b = Campaign::synthetic(200, 9, 42);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.federation.sites, b.federation.sites);
        let c = Campaign::synthetic(200, 9, 43);
        assert_ne!(a.jobs, c.jobs, "seed must matter");

        assert_eq!(a.jobs.len(), 200);
        assert_eq!(a.federation.sites.len(), 9);
        assert_eq!(a.outages.len(), 3);
        for (i, s) in a.federation.sites.iter().enumerate() {
            assert_eq!(s.id as usize, i, "site ids must be indices");
        }
        for o in &a.outages {
            assert_ne!(o.site, 0, "outages never hit the hub");
            assert!(o.end > o.start);
        }
        // Every job fits the hub; coupled jobs have a connectable site.
        for j in &a.jobs {
            assert!(a.federation.sites[0].fits(j.procs), "{} too wide", j.name);
            assert!(j.wall_hours > 0.0 && j.wall_hours <= 168.0);
            if j.coupled {
                assert!(
                    a.federation
                        .sites
                        .iter()
                        .any(|s| s.fits(j.procs)
                            && crate::hidden_ip::steering_connectivity(s).is_ok())
                );
            }
        }
        let coupled = a.jobs.iter().filter(|j| j.coupled).count();
        assert!(
            coupled > 0 && coupled < a.jobs.len() / 4,
            "~10% coupled, got {coupled}/200"
        );
        // The heavy tail is actually heavy: spread well past the median.
        let longest = a.jobs.iter().map(|j| j.wall_hours).fold(0.0, f64::max);
        assert!(longest > 10.0, "tail too light: max {longest} h");
    }

    #[test]
    fn synthetic_campaign_replays_through_the_resilient_engine() {
        let c = Campaign::synthetic(150, 7, 7);
        let r = crate::resilience::run_resilient(
            &c,
            &crate::resilience::ResiliencePolicy::checkpoint_failover(),
        );
        assert_eq!(
            r.result.records.len() + r.abandoned.len(),
            150,
            "every synthetic job completes or is abandoned"
        );
        assert!(r.goodput_cpu_hours > 0.0);
    }

    #[test]
    #[should_panic(expected = "fits nowhere")]
    fn oversized_job_panics() {
        let mut c = Campaign::paper_batch_phase(1);
        c.jobs = vec![Job::new(0, "huge", 100_000, 1.0)];
        c.run();
    }
}
