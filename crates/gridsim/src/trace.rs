//! Campaign execution traces: a text Gantt chart of job placement over
//! time — the at-a-glance view of how the federation carried the batch
//! phase (what the paper's coordinators reconstructed from queue logs by
//! hand) — plus failure timelines of resilient executions.

use crate::campaign::CampaignResult;
use crate::federation::Federation;
use crate::resilience::ResilientResult;

/// Render a per-site text Gantt chart of the campaign, `width` columns
/// wide. Each row is a site; each column a time slice; the glyph encodes
/// how many jobs were running in that slice (`.` idle, `1`–`9`, `#` ≥10).
pub fn gantt(result: &CampaignResult, federation: &Federation, width: usize) -> String {
    assert!(width >= 10, "gantt needs at least 10 columns");
    let span = result.makespan_hours.max(1e-9);
    let dt = span / width as f64;
    let name_w = federation
        .sites
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>name_w$} |{}| 0 → {:.1} h ({:.1} h/col)\n",
        "site",
        "-".repeat(width),
        span,
        dt,
    ));
    for site in &federation.sites {
        let mut row = String::with_capacity(width);
        for c in 0..width {
            let t = (c as f64 + 0.5) * dt;
            let running = result
                .records
                .iter()
                .filter(|r| r.site == site.id && r.started <= t && t < r.finished)
                .count();
            row.push(match running {
                0 => '.',
                1..=9 => char::from_digit(running as u32, 10).expect("1..=9"),
                _ => '#',
            });
        }
        out.push_str(&format!("{:>name_w$} |{row}|\n", site.name));
    }
    out
}

/// One-line-per-job event listing, ordered by start time.
pub fn job_listing(result: &CampaignResult, federation: &Federation) -> String {
    let mut records = result.records.clone();
    records.sort_by(|a, b| a.started.total_cmp(&b.started).then(a.job.cmp(&b.job)));
    let mut out = String::from("  job  site         procs   start    end     wait\n");
    for r in &records {
        out.push_str(&format!(
            "  {:>3}  {:<12} {:>4}  {:>6.1}  {:>6.1}  {:>6.1}\n",
            r.job,
            federation.site(r.site).name,
            r.procs,
            r.started,
            r.finished,
            r.wait(),
        ));
    }
    out
}

/// One-line-per-failure timeline of a resilient execution, ordered by
/// event time — the incident log the SC05 coordinators kept by hand.
pub fn failure_listing(result: &ResilientResult, federation: &Federation) -> String {
    let mut out =
        String::from("  time   job  att  site          kind          lost-cpu-h  saved-h\n");
    for f in &result.failures {
        let kind = f.kind.label();
        out.push_str(&format!(
            "  {:>6.1} {:>4}  {:>3}  {:<12}  {:<12}  {:>9.1}  {:>7.2}\n",
            f.time,
            f.job,
            f.attempt,
            federation.site(f.site).name,
            kind,
            f.lost_cpu_hours,
            f.saved_hours,
        ));
    }
    if !result.abandoned.is_empty() {
        out.push_str(&format!(
            "  abandoned after retry exhaustion: {:?}\n",
            result.abandoned
        ));
    }
    out
}

/// [`failure_listing`] that *also* replays the timeline into `t`'s event
/// stream, so a single JSONL export captures the whole incident log even
/// for a result that was produced untraced (or deserialized). Each
/// failure becomes a `grid.failure` instant on the
/// `("grid.failure_log", 0)` track — deliberately distinct from the
/// engine's live `("grid.job", id)` tracks so replaying a listing never
/// duplicates a traced run's events. Returns the same rendered text.
pub fn failure_listing_traced(
    result: &ResilientResult,
    federation: &Federation,
    t: &spice_telemetry::Telemetry,
) -> String {
    let track = t.track("grid.failure_log", 0);
    for f in &result.failures {
        track.instant_at(
            "grid.failure",
            crate::resilience::sim_ticks(f.time),
            vec![
                ("job", f.job.to_string()),
                ("attempt", f.attempt.to_string()),
                // spice-lint: allow(P002) report path: one pass over a finished result, not the DES hot loop
                ("site", federation.site(f.site).name.clone()),
                ("kind", f.kind.label().to_string()),
                ("lost_cpu_hours", format!("{:.3}", f.lost_cpu_hours)),
                ("saved_hours", format!("{:.3}", f.saved_hours)),
            ],
        );
    }
    for id in &result.abandoned {
        track.instant("grid.abandoned", vec![("job", id.to_string())]);
    }
    failure_listing(result, federation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::resilience::{run_resilient, ResiliencePolicy};

    #[test]
    fn gantt_renders_all_sites_and_width() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        let g = gantt(&r, &c.federation, 60);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 1 + c.federation.sites.len());
        for site in &c.federation.sites {
            assert!(g.contains(&site.name), "missing {}", site.name);
        }
        // Every site row has exactly `width` glyphs between the bars.
        for line in &lines[1..] {
            let row = line.split('|').nth(1).expect("bar-delimited row");
            assert_eq!(row.chars().count(), 60);
        }
        // Work actually shows up.
        assert!(g.chars().any(|ch| ch.is_ascii_digit() && ch != '0'));
    }

    #[test]
    fn gantt_occupancy_matches_records() {
        let c = Campaign::paper_batch_phase(6);
        let r = c.run();
        let g = gantt(&r, &c.federation, 40);
        // The busiest glyph must not exceed the per-site max concurrency
        // implied by capacity (site 0: 384 procs / 128 = ≤3 concurrent).
        let ncsa_row = g
            .lines()
            .find(|l| l.contains("NCSA"))
            .expect("NCSA row")
            .to_string();
        for ch in ncsa_row.chars().filter(|c| c.is_ascii_digit()) {
            assert!(
                ch.to_digit(10).unwrap() <= 3,
                "NCSA over-concurrency: {ncsa_row}"
            );
        }
    }

    #[test]
    fn job_listing_is_sorted_and_complete() {
        let c = Campaign::paper_batch_phase(5);
        let r = c.run();
        let listing = job_listing(&r, &c.federation);
        assert_eq!(listing.lines().count(), 1 + 72);
        let starts: Vec<f64> = listing
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(starts.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn tiny_width_rejected() {
        let c = Campaign::paper_batch_phase(1);
        let r = c.run();
        gantt(&r, &c.federation, 3);
    }

    #[test]
    fn failure_listing_covers_every_failure() {
        let c = Campaign::sc05_outage_phase(5);
        let r = run_resilient(&c, &ResiliencePolicy::checkpoint_failover());
        let listing = failure_listing(&r, &c.federation);
        let body_lines = listing
            .lines()
            .filter(|l| !l.starts_with("  time") && !l.contains("abandoned"))
            .count();
        assert_eq!(body_lines, r.failures.len());
        assert!(!r.failures.is_empty(), "sc05 scenario must log failures");
        // Kind labels render.
        assert!(
            listing.contains("launch-fail")
                || listing.contains("node-crash")
                || listing.contains("outage-kill")
        );
        // Times are sorted (engine logs in event order).
        let times: Vec<f64> = r.failures.iter().map(|f| f.time).collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    fn failure_listing_reports_abandonment() {
        let r = ResilientResult {
            result: CampaignResult {
                records: Vec::new(),
                makespan_hours: 0.0,
                cpu_hours: 0.0,
                jobs_per_site: Vec::new(),
            },
            failures: Vec::new(),
            abandoned: vec![3, 7],
            goodput_cpu_hours: 0.0,
            badput_cpu_hours: 0.0,
            total_retries: 2,
        };
        let f = Federation::paper_us_uk();
        let listing = failure_listing(&r, &f);
        assert!(listing.contains("abandoned"));
        assert!(listing.contains('3') && listing.contains('7'));
    }
}
