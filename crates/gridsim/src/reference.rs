//! The frozen seed-engine oracle: a verbatim copy of the O(n²)
//! scan-based DES engine and FCFS scheduler as they existed before the
//! indexed rework, kept so equivalence tests and scale benches can
//! compare the optimized engine against true seed behaviour at runtime
//! instead of against pinned fixtures.
//!
//! Everything here is intentionally unoptimized — linear `position()`
//! lookups, per-submit `Job` clones, per-dispatch candidate vector
//! allocations — because that *is* the contract: this module replays
//! exactly what the seed engine replayed. Do not "fix" it; the indexed
//! engine in [`crate::resilience`] must match it bit-for-bit instead.
//! The only additions over the seed code are the [`EngineStats`]
//! counters (event count, queue peaks) and the closing `grid.*` gauges,
//! mirrored in the indexed engine so traced runs export byte-identical
//! telemetry from both.

use crate::campaign::{Campaign, CampaignResult};
use crate::des::DispatchPolicy;
use crate::event::{EventQueue, SimTime};
use crate::failure::{FailureEvent, FailureKind};
use crate::hidden_ip::steering_connectivity;
use crate::job::{Job, JobId, JobRecord};
use crate::resilience::{sim_ticks, EngineStats, OutagePolicy, ResiliencePolicy, ResilientResult};
use spice_stats::rng::{seed_stream, unit_f64};
use spice_telemetry::{Counter, ProbePoint, Telemetry, Track};
use std::collections::VecDeque;

/// Salt for resubmission queue-wait streams — must stay equal to the
/// constant the live engine uses, or the oracle diverges by design.
const RESUBMIT_SALT: u64 = 0x5245_5355_424D_4954;

#[derive(Debug, Clone)]
struct Queued {
    job: Job,
    ready: f64,
}

#[derive(Debug, Clone)]
struct Running {
    job_id: u32,
    procs: u32,
    finish: f64,
}

/// The seed FCFS + backfill scheduler: linear scans everywhere.
#[derive(Debug, Clone)]
struct SeedSiteScheduler {
    free: u32,
    queue: VecDeque<Queued>,
    running: Vec<Running>,
    down_until: Option<f64>,
    peak_queued: usize,
    #[cfg(feature = "audit")]
    capacity: u32,
}

impl SeedSiteScheduler {
    fn new(capacity: u32) -> Self {
        assert!(capacity > 0);
        SeedSiteScheduler {
            free: capacity,
            queue: VecDeque::new(),
            running: Vec::new(),
            down_until: None,
            peak_queued: 0,
            #[cfg(feature = "audit")]
            capacity,
        }
    }

    #[cfg(feature = "audit")]
    fn check_proc_conservation(&self) {
        let used: u32 = self.running.iter().map(|r| r.procs).sum();
        if self.free + used != self.capacity {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[gridsim.proc_conservation]: {} free + {} in \
                 use != {} capacity",
                self.free, used, self.capacity
            );
        }
    }

    fn submit(&mut self, job: Job, ready: f64) {
        self.queue.push_back(Queued { job, ready });
        self.peak_queued = self.peak_queued.max(self.queue.len());
    }

    fn set_down_until(&mut self, until: f64) {
        self.down_until = Some(match self.down_until {
            Some(cur) => cur.max(until),
            None => until,
        });
    }

    fn kill_running(&mut self) -> Vec<(u32, u32)> {
        let killed: Vec<(u32, u32)> = self.running.iter().map(|r| (r.job_id, r.procs)).collect();
        for (_, procs) in &killed {
            self.free += procs;
        }
        self.running.clear();
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        killed
    }

    fn evict_queued(&mut self) -> Vec<Job> {
        self.queue.drain(..).map(|q| q.job).collect()
    }

    fn preempt(&mut self, job_id: u32) -> u32 {
        let idx = self
            .running
            .iter()
            .position(|r| r.job_id == job_id)
            .expect("preempting a job that is not running");
        let r = self.running.swap_remove(idx);
        self.free += r.procs;
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        r.procs
    }

    fn try_start(&mut self, now: f64, mut runtime: impl FnMut(&Job) -> f64) -> Vec<(Job, f64)> {
        if let Some(until) = self.down_until {
            if now < until {
                return Vec::new();
            }
        }
        let mut started = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let eligible = self.queue[i].ready <= now;
            let fits = self.queue[i].job.procs <= self.free;
            if eligible && fits {
                let q = self.queue.remove(i).expect("index in range");
                self.free -= q.job.procs;
                let finish = now + runtime(&q.job);
                self.running.push(Running {
                    job_id: q.job.id,
                    procs: q.job.procs,
                    finish,
                });
                started.push((q.job, finish));
                // restart scan: freeing order may let earlier entries in
                i = 0;
            } else {
                i += 1;
            }
        }
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        started
    }

    fn finish(&mut self, job_id: u32) {
        let idx = self
            .running
            .iter()
            .position(|r| r.job_id == job_id)
            .expect("finishing a job that is not running");
        let r = self.running.swap_remove(idx);
        self.free += r.procs;
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
    }

    fn next_finish(&self) -> Option<(u32, f64)> {
        self.running
            .iter()
            .min_by(|a, b| a.finish.total_cmp(&b.finish))
            .map(|r| (r.job_id, r.finish))
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[derive(Debug)]
enum Ev {
    Submit(usize),
    Finish {
        si: usize,
        ji: usize,
        attempt: u32,
    },
    Fail {
        si: usize,
        ji: usize,
        attempt: u32,
        kind: FailureKind,
    },
    OutageStart(usize),
    OutageEnd(usize),
    Poke(usize),
}

#[derive(Debug, Clone)]
struct JobState {
    attempt: u32,
    remaining: f64,
    consumed_ref_cpu_h: f64,
    backlog_contrib: f64,
    site_failures: Vec<u32>,
    running: Option<(usize, f64)>,
    last_site: Option<usize>,
    done: bool,
    abandoned: bool,
}

struct SeedEngine<'a> {
    campaign: &'a Campaign,
    policy: &'a ResiliencePolicy,
    dispatch: DispatchPolicy,
    schedulers: Vec<SeedSiteScheduler>,
    states: Vec<JobState>,
    records: Vec<JobRecord>,
    failures: Vec<FailureEvent>,
    abandoned: Vec<JobId>,
    jobs_per_site: Vec<usize>,
    backlog_cpu_h: Vec<f64>,
    rr_cursor: usize,
    total_retries: u32,
    q: EventQueue<Ev>,
    telemetry: Telemetry,
    job_tracks: Vec<Track>,
    campaign_track: Track,
    des_events: Counter,
    events_processed: u64,
    #[cfg(feature = "audit")]
    pending_submits: usize,
}

impl<'a> SeedEngine<'a> {
    fn new(
        campaign: &'a Campaign,
        policy: &'a ResiliencePolicy,
        dispatch: DispatchPolicy,
        telemetry: &Telemetry,
    ) -> Self {
        let nsites = campaign.federation.sites.len();
        let states = campaign
            .jobs
            .iter()
            .map(|j| JobState {
                attempt: 1,
                remaining: j.wall_hours,
                consumed_ref_cpu_h: 0.0,
                backlog_contrib: 0.0,
                site_failures: vec![0; nsites],
                running: None,
                last_site: None,
                done: false,
                abandoned: false,
            })
            .collect();
        SeedEngine {
            campaign,
            policy,
            dispatch,
            schedulers: campaign
                .federation
                .sites
                .iter()
                .map(|s| SeedSiteScheduler::new(s.procs))
                .collect(),
            states,
            records: Vec::with_capacity(campaign.jobs.len()),
            failures: Vec::new(),
            abandoned: Vec::new(),
            jobs_per_site: vec![0; nsites],
            backlog_cpu_h: vec![0.0; nsites],
            rr_cursor: 0,
            total_retries: 0,
            q: EventQueue::new(),
            telemetry: telemetry.clone(),
            job_tracks: campaign
                .jobs
                .iter()
                .map(|j| telemetry.track("grid.job", u64::from(j.id)))
                .collect(),
            campaign_track: telemetry.track("grid.campaign", campaign.seed),
            des_events: telemetry.counter("grid.des_events"),
            events_processed: 0,
            #[cfg(feature = "audit")]
            pending_submits: 0,
        }
    }

    fn job_index(&self, id: JobId) -> usize {
        self.campaign
            .jobs
            .iter()
            .position(|j| j.id == id)
            .expect("job id unknown to the campaign")
    }

    fn site_index(&self, id: crate::resource::SiteId) -> Option<usize> {
        self.campaign
            .federation
            .sites
            .iter()
            .position(|s| s.id == id)
    }

    fn wait_sample(&self, ji: usize, si: usize, attempt: u32) -> f64 {
        let index = (ji as u64) << 8 | si as u64;
        let bits = if attempt == 1 {
            seed_stream(self.campaign.seed, index)
        } else {
            seed_stream(
                self.campaign.seed ^ RESUBMIT_SALT,
                index | u64::from(attempt) << 32,
            )
        };
        let u = unit_f64(bits);
        -self.campaign.federation.sites[si].mean_queue_wait * (1.0 - u).max(1e-12).ln()
    }

    fn runtime_on(&self, ji: usize, si: usize) -> f64 {
        self.policy
            .checkpoint
            .gross_hours(self.states[ji].remaining)
            / self.campaign.federation.sites[si].speed
    }

    fn outage_remaining(&self, si: usize, now: f64) -> f64 {
        let id = self.campaign.federation.sites[si].id;
        self.campaign
            .outages
            .iter()
            .filter(|o| o.site == id && o.covers(now))
            .map(|o| o.end - now)
            .fold(0.0, f64::max)
    }

    fn handle_submit(&mut self, ji: usize, now: f64) {
        #[cfg(feature = "audit")]
        {
            self.pending_submits -= 1;
        }
        let job = &self.campaign.jobs[ji];
        let sites = &self.campaign.federation.sites;
        let fitting: Vec<usize> = (0..sites.len())
            .filter(|&si| {
                sites[si].fits(job.procs)
                    && (!job.coupled || steering_connectivity(&sites[si]).is_ok())
            })
            .collect();
        assert!(
            !fitting.is_empty(),
            "job {} ({} procs{}) fits nowhere in the federation",
            job.name,
            job.procs,
            if job.coupled {
                ", steering-coupled"
            } else {
                ""
            }
        );

        let st = &self.states[ji];
        let candidates: Vec<usize> = if !self.policy.retry.failover {
            match st.last_site {
                Some(si) => vec![si],
                None => fitting.clone(),
            }
        } else if self.policy.retry.blacklist_threshold > 0 {
            let open: Vec<usize> = fitting
                .iter()
                .copied()
                .filter(|&si| st.site_failures[si] < self.policy.retry.blacklist_threshold)
                .collect();
            if open.is_empty() {
                fitting.clone()
            } else {
                open
            }
        } else {
            fitting.clone()
        };

        let attempt = st.attempt;
        let si = match self.dispatch {
            DispatchPolicy::EarliestCompletion => {
                let mut best: Option<(usize, f64)> = None;
                for &si in &candidates {
                    let est = self.wait_sample(ji, si, attempt)
                        + self.backlog_cpu_h[si] / f64::from(sites[si].procs)
                        + self.runtime_on(ji, si)
                        + self.outage_remaining(si, now);
                    if best.is_none_or(|(_, b)| est < b) {
                        best = Some((si, est));
                    }
                }
                best.expect("candidates is non-empty").0
            }
            DispatchPolicy::RoundRobin => {
                let si = candidates[self.rr_cursor % candidates.len()];
                self.rr_cursor += 1;
                si
            }
            DispatchPolicy::Random => {
                let index = if attempt == 1 {
                    ji as u64
                } else {
                    ji as u64 | u64::from(attempt) << 32
                };
                let u = seed_stream(self.campaign.seed ^ 0x5EED, index);
                candidates[(u % candidates.len() as u64) as usize]
            }
        };

        let queue_wait = self.wait_sample(ji, si, attempt);
        let contrib = self
            .policy
            .checkpoint
            .gross_hours(self.states[ji].remaining)
            * f64::from(job.procs);
        let st = &mut self.states[ji];
        st.backlog_contrib = contrib;
        st.last_site = Some(si);
        self.backlog_cpu_h[si] += contrib;
        self.schedulers[si].submit(job.clone(), now + queue_wait);
        self.q
            .schedule(SimTime::from_hours(now + queue_wait), Ev::Poke(si));
    }

    fn try_start_site(&mut self, si: usize, now: f64) {
        let campaign = self.campaign;
        let site = &campaign.federation.sites[si];
        let speed = site.speed;
        let policy = self.policy;
        let states = &self.states;
        let started = self.schedulers[si].try_start(now, |j| {
            let ji = campaign
                .jobs
                .iter()
                .position(|cj| cj.id == j.id)
                .expect("queued job id unknown to the campaign");
            policy.checkpoint.gross_hours(states[ji].remaining) / speed
        });
        for (job, finish) in started {
            let ji = self.job_index(job.id);
            #[cfg(feature = "audit")]
            crate::audit::check_single_site(
                job.id,
                self.states[ji]
                    .running
                    .map(|(s, _)| campaign.federation.sites[s].id),
                site.id,
            );
            let attempt = self.states[ji].attempt;
            if policy
                .failures
                .launch_fails(campaign.seed, job.id, attempt, site)
            {
                self.schedulers[si].preempt(job.id);
                self.fail_attempt(ji, si, now, FailureKind::LaunchFailure, 0.0);
                continue;
            }
            self.states[ji].running = Some((si, now));
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].enter_at("grid.attempt", sim_ticks(now));
                self.job_tracks[ji].instant_at(
                    "grid.start",
                    sim_ticks(now),
                    vec![
                        ("site", site.name.clone()),
                        ("attempt", attempt.to_string()),
                    ],
                );
            }
            let crash = policy
                .failures
                .crash_after(campaign.seed, job.id, attempt, site.id);
            let routed_gateway = job.coupled && matches!(steering_connectivity(site), Ok(Some(_)));
            let drop = if routed_gateway {
                policy
                    .failures
                    .gateway_drop_after(campaign.seed, job.id, attempt, site.id)
            } else {
                f64::INFINITY
            };
            let (t_fail, kind) = if crash <= drop {
                (crash, FailureKind::NodeCrash)
            } else {
                (drop, FailureKind::GatewayDrop)
            };
            if now + t_fail < finish {
                self.q.schedule(
                    SimTime::from_hours(now + t_fail),
                    Ev::Fail {
                        si,
                        ji,
                        attempt,
                        kind,
                    },
                );
            } else {
                self.q
                    .schedule(SimTime::from_hours(finish), Ev::Finish { si, ji, attempt });
            }
        }
    }

    fn is_current(&self, ji: usize, si: usize, attempt: u32) -> bool {
        let st = &self.states[ji];
        !st.done
            && !st.abandoned
            && st.attempt == attempt
            && matches!(st.running, Some((s, _)) if s == si)
    }

    fn handle_finish(&mut self, si: usize, ji: usize, attempt: u32, now: f64) {
        if !self.is_current(ji, si, attempt) {
            return;
        }
        let job = &self.campaign.jobs[ji];
        let site = &self.campaign.federation.sites[si];
        let (_, start) = self.states[ji]
            .running
            .take()
            .expect("current attempt must be running");
        self.schedulers[si].finish(job.id);
        if self.telemetry.is_enabled() {
            self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
            self.job_tracks[ji].instant_at(
                "grid.complete",
                sim_ticks(now),
                vec![("attempts", attempt.to_string())],
            );
            self.telemetry.counter("grid.jobs_completed").incr();
        }
        let st = &mut self.states[ji];
        let gross = self.policy.checkpoint.gross_hours(st.remaining);
        st.consumed_ref_cpu_h += gross * f64::from(job.procs);
        st.remaining = 0.0;
        st.done = true;
        self.backlog_cpu_h[si] -= st.backlog_contrib;
        st.backlog_contrib = 0.0;
        let lost = (st.consumed_ref_cpu_h - job.cpu_hours()).max(0.0);
        self.records.push(JobRecord {
            job: job.id,
            site: site.id,
            submitted: job.release_hours,
            started: start,
            finished: now,
            procs: job.procs,
            attempts: attempt,
            lost_cpu_hours: lost,
        });
        self.jobs_per_site[si] += 1;
        self.try_start_site(si, now);
    }

    fn handle_fail(&mut self, si: usize, ji: usize, attempt: u32, kind: FailureKind, now: f64) {
        if !self.is_current(ji, si, attempt) {
            return;
        }
        let (_, start) = self.states[ji]
            .running
            .take()
            .expect("current attempt must be running");
        self.schedulers[si].preempt(self.campaign.jobs[ji].id);
        if self.telemetry.is_enabled() {
            self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
        }
        self.fail_attempt(ji, si, now, kind, now - start);
        self.try_start_site(si, now);
    }

    fn fail_attempt(
        &mut self,
        ji: usize,
        si: usize,
        now: f64,
        kind: FailureKind,
        elapsed_onsite: f64,
    ) {
        let job = &self.campaign.jobs[ji];
        let site = &self.campaign.federation.sites[si];
        let gross_done = elapsed_onsite * site.speed;
        let st = &mut self.states[ji];
        let work_before = st.remaining;
        let saved = self
            .policy
            .checkpoint
            .saved_progress(gross_done, work_before);
        #[cfg(feature = "audit")]
        crate::audit::check_restart_progress(job.id, saved, work_before);
        st.remaining = work_before - saved;
        let lost_cpu = gross_done * f64::from(job.procs);
        st.consumed_ref_cpu_h += lost_cpu;
        st.site_failures[si] += 1;
        self.backlog_cpu_h[si] -= st.backlog_contrib;
        st.backlog_contrib = 0.0;
        let failed_attempt = st.attempt;
        self.failures.push(FailureEvent {
            job: job.id,
            site: site.id,
            attempt: failed_attempt,
            time: now,
            kind,
            lost_cpu_hours: lost_cpu,
            saved_hours: saved,
        });
        if self.telemetry.is_enabled() {
            let track = &self.job_tracks[ji];
            track.instant_at(
                "grid.failure",
                sim_ticks(now),
                vec![
                    ("kind", kind.label().to_string()),
                    ("site", site.name.clone()),
                    ("attempt", failed_attempt.to_string()),
                    ("lost_cpu_hours", format!("{lost_cpu:.3}")),
                    ("saved_hours", format!("{saved:.3}")),
                ],
            );
            self.telemetry.counter("grid.failures").incr();
            self.telemetry.counter(kind.failures_counter()).incr();
            if saved > 0.0 {
                track.instant_at(
                    "grid.checkpoint_restore",
                    sim_ticks(now),
                    vec![("saved_hours", format!("{saved:.3}"))],
                );
                self.telemetry.counter("grid.checkpoint_restores").incr();
            }
        }
        if failed_attempt > self.policy.retry.max_retries {
            st.abandoned = true;
            self.abandoned.push(job.id);
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].instant_at("grid.abandoned", sim_ticks(now), Vec::new());
                self.telemetry.counter("grid.abandoned").incr();
            }
        } else {
            st.attempt = failed_attempt + 1;
            self.total_retries += 1;
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].instant_at(
                    "grid.retry",
                    sim_ticks(now),
                    vec![("next_attempt", (failed_attempt + 1).to_string())],
                );
                self.telemetry.counter("grid.retries").incr();
            }
            #[cfg(feature = "audit")]
            crate::audit::check_retry_bound(job.id, st.attempt - 1, self.policy.retry.max_retries);
            let delay = self.policy.retry.backoff_hours(failed_attempt);
            self.q
                .schedule(SimTime::from_hours(now + delay), Ev::Submit(ji));
            #[cfg(feature = "audit")]
            {
                self.pending_submits += 1;
            }
        }
    }

    fn handle_outage_start(&mut self, oi: usize, now: f64) {
        let outage = self.campaign.outages[oi];
        let Some(si) = self.site_index(outage.site) else {
            return; // outage for a site outside a restricted federation
        };
        self.schedulers[si].set_down_until(outage.end);
        self.q
            .schedule(SimTime::from_hours(outage.end.max(now)), Ev::OutageEnd(si));
        if self.telemetry.is_enabled() {
            self.campaign_track.instant_at(
                "grid.outage",
                sim_ticks(now),
                vec![("site", self.campaign.federation.sites[si].name.clone())],
            );
        }
        if self.policy.outage == OutagePolicy::Kill {
            for (job_id, _procs) in self.schedulers[si].kill_running() {
                let ji = self.job_index(job_id);
                let (_, start) = self.states[ji]
                    .running
                    .take()
                    .expect("killed job must be tracked as running");
                if self.telemetry.is_enabled() {
                    self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
                }
                self.fail_attempt(ji, si, now, FailureKind::OutageKill, now - start);
            }
            for job in self.schedulers[si].evict_queued() {
                let ji = self.job_index(job.id);
                self.fail_attempt(ji, si, now, FailureKind::OutageKill, 0.0);
            }
        }
    }

    fn handle_poke(&mut self, si: usize, now: f64) {
        self.try_start_site(si, now);
        if self.schedulers[si].queued() > 0 {
            if let Some((_, f)) = self.schedulers[si].next_finish().filter(|&(_, f)| f > now) {
                self.q.schedule(SimTime::from_hours(f), Ev::Poke(si));
            } else {
                self.q
                    .schedule(SimTime::from_hours(now + 1.0), Ev::Poke(si));
            }
        }
    }

    #[cfg(feature = "audit")]
    fn audit_job_conservation(&self) {
        let queued: usize = self.schedulers.iter().map(SeedSiteScheduler::queued).sum();
        let running = self.states.iter().filter(|s| s.running.is_some()).count();
        let done = self.states.iter().filter(|s| s.done).count();
        let abandoned = self.states.iter().filter(|s| s.abandoned).count();
        let total = self.pending_submits + queued + running + done + abandoned;
        if total != self.campaign.jobs.len() {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[gridsim.job_conservation]: {} jobs but {} \
                 accounted for ({} pending + {queued} queued + {running} \
                 running + {done} done + {abandoned} abandoned)",
                self.campaign.jobs.len(),
                total,
                self.pending_submits,
            );
        }
    }

    fn run(mut self) -> (ResilientResult, EngineStats) {
        let _campaign_span = self.campaign_track.span_at("grid.campaign", 0);
        for oi in 0..self.campaign.outages.len() {
            let start = self.campaign.outages[oi].start.max(0.0);
            self.q
                .schedule(SimTime::from_hours(start), Ev::OutageStart(oi));
        }
        for (ji, job) in self.campaign.jobs.iter().enumerate() {
            self.q
                .schedule(SimTime::from_hours(job.release_hours), Ev::Submit(ji));
            #[cfg(feature = "audit")]
            {
                self.pending_submits += 1;
            }
        }

        while let Some((t, ev)) = self.q.pop() {
            let now = t.hours();
            self.events_processed += 1;
            if self.telemetry.is_enabled() {
                let ticks = sim_ticks(now);
                self.campaign_track.tick(ticks);
                self.des_events.incr();
                self.telemetry.probe(ProbePoint::DesEvent, ticks, now);
            }
            match ev {
                Ev::Submit(ji) => self.handle_submit(ji, now),
                Ev::Finish { si, ji, attempt } => self.handle_finish(si, ji, attempt, now),
                Ev::Fail {
                    si,
                    ji,
                    attempt,
                    kind,
                } => self.handle_fail(si, ji, attempt, kind, now),
                Ev::OutageStart(oi) => self.handle_outage_start(oi, now),
                Ev::OutageEnd(si) | Ev::Poke(si) => self.handle_poke(si, now),
            }
            #[cfg(feature = "audit")]
            self.audit_job_conservation();
        }

        assert_eq!(
            self.records.len() + self.abandoned.len(),
            self.campaign.jobs.len(),
            "resilient DES lost jobs: {} completed + {} abandoned of {}",
            self.records.len(),
            self.abandoned.len(),
            self.campaign.jobs.len()
        );

        let stats = EngineStats {
            events_processed: self.events_processed,
            event_queue_peak: self.q.peak_len(),
            site_queue_peak: self
                .schedulers
                .iter()
                .map(|s| s.peak_queued)
                .max()
                .unwrap_or(0),
        };
        if self.telemetry.is_enabled() {
            self.telemetry
                .set_gauge("grid.events_processed", stats.events_processed as f64);
            self.telemetry
                .set_gauge("grid.event_queue_peak", stats.event_queue_peak as f64);
            self.telemetry
                .set_gauge("grid.site_queue_peak", stats.site_queue_peak as f64);
        }

        let goodput: f64 = self
            .states
            .iter()
            .zip(&self.campaign.jobs)
            .filter(|(s, _)| s.done)
            .map(|(_, j)| j.cpu_hours())
            .sum();
        let consumed: f64 = self.states.iter().map(|s| s.consumed_ref_cpu_h).sum();
        let makespan = self
            .records
            .iter()
            .map(|r| r.finished)
            .fold(0.0f64, f64::max);
        let cpu_hours = self.records.iter().map(JobRecord::cpu_hours).sum();
        let result = ResilientResult {
            result: CampaignResult {
                records: self.records,
                makespan_hours: makespan,
                cpu_hours,
                jobs_per_site: self
                    .campaign
                    .federation
                    .sites
                    .iter()
                    .zip(&self.jobs_per_site)
                    .map(|(s, &n)| (s.id, n))
                    .collect(),
            },
            failures: self.failures,
            abandoned: self.abandoned,
            goodput_cpu_hours: goodput,
            badput_cpu_hours: (consumed - goodput).max(0.0),
            total_retries: self.total_retries,
        };
        (result, stats)
    }
}

/// Execute a campaign through the frozen seed engine. Same contract as
/// [`crate::resilience::run_resilient_with_stats`]; the two must agree
/// bit-for-bit on every campaign, policy and dispatch combination.
pub fn run_resilient_reference(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
    telemetry: &Telemetry,
) -> (ResilientResult, EngineStats) {
    assert!(!campaign.jobs.is_empty(), "campaign has no jobs");
    assert!(
        !campaign.federation.sites.is_empty(),
        "campaign has no sites"
    );
    SeedEngine::new(campaign, policy, dispatch, telemetry).run()
}
