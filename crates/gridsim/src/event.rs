//! Deterministic discrete-event engine.
//!
//! Time is simulated hours (f64, totally ordered via `total_cmp`); events
//! at equal times pop in insertion order (FIFO tie-break via a sequence
//! counter), so simulations are bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in hours.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Hours as raw f64.
    pub fn hours(self) -> f64 {
        self.0
    }

    /// Construct from hours.
    pub fn from_hours(h: f64) -> Self {
        assert!(h.is_finite(), "simulation time must be finite");
        SimTime(h)
    }

    /// Time `dh` hours later.
    pub fn after(self, dh: f64) -> SimTime {
        SimTime::from_hours(self.0 + dh)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on BinaryHeap (max-heap).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            peak: 0,
        }
    }

    /// Schedule `payload` at absolute time `t`.
    ///
    /// # Panics
    /// Panics when scheduling into the past (before the last popped
    /// event).
    pub fn schedule(&mut self, t: SimTime, payload: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {} < {}",
            t.hours(),
            self.now.hours()
        );
        self.heap.push(Entry {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Schedule `payload` `dh` hours from the current time.
    pub fn schedule_in(&mut self, dh: f64, payload: E) {
        let t = self.now.after(dh.max(0.0));
        self.schedule(t, payload);
    }

    /// Audit-only scheduling that bypasses the into-the-past assert, so
    /// injection tests can corrupt the queue and prove the pop-side
    /// sanitizer fires. Never compiled into normal builds.
    #[cfg(feature = "audit")]
    pub fn schedule_unchecked(&mut self, t: SimTime, payload: E) {
        self.heap.push(Entry {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            #[cfg(feature = "audit")]
            {
                if !e.time.hours().is_finite() {
                    // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                    panic!(
                        "spice-audit[gridsim.finite_time]: event popped at \
                         non-finite time {}",
                        e.time.hours()
                    );
                }
                if e.time < self.now {
                    // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                    panic!(
                        "spice-audit[gridsim.event_order]: event time {} \
                         precedes the clock {} — DES monotonicity violated",
                        e.time.hours(),
                        self.now.hours()
                    );
                }
            }
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// The next event to pop — `(time, &payload)` — without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.payload))
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of pending events over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(3.0), "c");
        q.schedule(SimTime::from_hours(1.0), "a");
        q.schedule(SimTime::from_hours(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_hours(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(2.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().hours(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(1.0), "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.hours(), 1.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(2.0), ());
        q.pop();
        q.schedule(SimTime::from_hours(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_hours(1.0), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peak_len_is_a_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_hours(f64::from(i)), i);
        }
        for _ in 0..3 {
            q.pop();
        }
        q.schedule(SimTime::from_hours(9.0), 9);
        assert_eq!(q.peak_len(), 5, "peak never shrinks on pops");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn negative_relative_delay_clamped() {
        let mut q = EventQueue::new();
        q.schedule_in(-5.0, "now");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }
}
