//! Deterministic discrete-event engine.
//!
//! Time is simulated hours (f64, totally ordered via `total_cmp`); events
//! at equal times pop in insertion order (FIFO tie-break via a sequence
//! counter), so simulations are bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in hours.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Hours as raw f64.
    pub fn hours(self) -> f64 {
        self.0
    }

    /// Construct from hours.
    pub fn from_hours(h: f64) -> Self {
        assert!(h.is_finite(), "simulation time must be finite");
        SimTime(h)
    }

    /// Time `dh` hours later.
    pub fn after(self, dh: f64) -> SimTime {
        SimTime::from_hours(self.0 + dh)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on BinaryHeap (max-heap).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            peak: 0,
        }
    }

    /// Schedule `payload` at absolute time `t`.
    ///
    /// # Panics
    /// Panics when scheduling into the past (before the last popped
    /// event).
    pub fn schedule(&mut self, t: SimTime, payload: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {} < {}",
            t.hours(),
            self.now.hours()
        );
        self.heap.push(Entry {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Schedule `payload` `dh` hours from the current time.
    pub fn schedule_in(&mut self, dh: f64, payload: E) {
        let t = self.now.after(dh.max(0.0));
        self.schedule(t, payload);
    }

    /// Audit-only scheduling that bypasses the into-the-past assert, so
    /// injection tests can corrupt the queue and prove the pop-side
    /// sanitizer fires. Never compiled into normal builds.
    #[cfg(feature = "audit")]
    pub fn schedule_unchecked(&mut self, t: SimTime, payload: E) {
        self.heap.push(Entry {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            #[cfg(feature = "audit")]
            {
                if !e.time.hours().is_finite() {
                    // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                    panic!(
                        "spice-audit[gridsim.finite_time]: event popped at \
                         non-finite time {}",
                        e.time.hours()
                    );
                }
                if e.time < self.now {
                    // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                    panic!(
                        "spice-audit[gridsim.event_order]: event time {} \
                         precedes the clock {} — DES monotonicity violated",
                        e.time.hours(),
                        self.now.hours()
                    );
                }
            }
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// The next event to pop — `(time, &payload)` — without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.payload))
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of pending events over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

/// A serializable image of an [`EventQueue`]: clock, counters, and every
/// pending entry with its *original* FIFO sequence number, sorted in pop
/// order `(time, seq)`. Restoring through [`EventQueue::from_image`]
/// reproduces the exact pop sequence of the imaged queue — including
/// same-time ties, which `schedule()` would renumber and so cannot
/// rebuild.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueueImage<E> {
    /// Clock of the last popped event (hours).
    pub(crate) now: f64,
    /// Next sequence number to assign.
    pub(crate) seq: u64,
    /// Lifetime high-water mark.
    pub(crate) peak: usize,
    /// `(time hours, entry seq, payload)` in pop order.
    pub(crate) entries: Vec<(f64, u64, E)>,
}

impl<E: Clone> EventQueue<E> {
    /// Capture the queue's full state. Entries come out sorted by
    /// `(time, seq)` — the pop order — so two images of equal queues
    /// compare equal even though the backing heap layout may differ.
    pub(crate) fn image(&self) -> QueueImage<E> {
        let mut entries: Vec<(f64, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.time.hours(), e.seq, e.payload.clone()))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        QueueImage {
            now: self.now.hours(),
            seq: self.seq,
            peak: self.peak,
            entries,
        }
    }
}

impl<E> EventQueue<E> {
    /// Rebuild a queue from an [`QueueImage`], preserving every entry's
    /// original sequence number, the clock, the sequence counter and the
    /// peak — `schedule()` is bypassed entirely (it would renumber
    /// entries and reject times at the restored clock's past).
    pub(crate) fn from_image(img: QueueImage<E>) -> EventQueue<E> {
        let mut heap = BinaryHeap::with_capacity(img.entries.len());
        for (t, seq, payload) in img.entries {
            heap.push(Entry {
                time: SimTime::from_hours(t),
                seq,
                payload,
            });
        }
        EventQueue {
            heap,
            seq: img.seq,
            now: SimTime::from_hours(img.now),
            peak: img.peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(3.0), "c");
        q.schedule(SimTime::from_hours(1.0), "a");
        q.schedule(SimTime::from_hours(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_hours(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(2.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().hours(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(1.0), "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.hours(), 1.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(2.0), ());
        q.pop();
        q.schedule(SimTime::from_hours(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_hours(1.0), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peak_len_is_a_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_hours(f64::from(i)), i);
        }
        for _ in 0..3 {
            q.pop();
        }
        q.schedule(SimTime::from_hours(9.0), 9);
        assert_eq!(q.peak_len(), 5, "peak never shrinks on pops");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn image_round_trip_preserves_pop_order_and_counters() {
        let mut q = EventQueue::new();
        // Same-time ties plus distinct times, with some already popped so
        // the clock and stale low seqs are exercised.
        for i in 0..4 {
            q.schedule(SimTime::from_hours(1.0), i);
        }
        q.schedule(SimTime::from_hours(0.5), 100);
        q.schedule(SimTime::from_hours(2.0), 200);
        q.pop(); // pops 100 @ 0.5, clock now 0.5

        let img = q.image();
        assert_eq!(img.now, 0.5);
        assert_eq!(img.seq, 6);
        assert_eq!(img.peak, 6);
        let mut restored = EventQueue::from_image(img.clone());
        assert_eq!(restored.now().hours(), 0.5);
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.peak_len(), q.peak_len());
        let a: Vec<(f64, i32)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.hours(), e))).collect();
        let b: Vec<(f64, i32)> =
            std::iter::from_fn(|| restored.pop().map(|(t, e)| (t.hours(), e))).collect();
        assert_eq!(a, b, "restored queue pops bit-identically, ties included");
        assert_eq!(b, [(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3), (2.0, 200)]);

        // An image of the restored queue equals the original image.
        let q2 = EventQueue::from_image(img.clone());
        assert_eq!(q2.image(), img);

        // New scheduling after restore continues the FIFO counter.
        let mut q3 = EventQueue::from_image(img);
        q3.schedule(SimTime::from_hours(1.0), 999);
        while let Some((t, e)) = q3.pop() {
            if e == 999 {
                assert_eq!(t.hours(), 1.0);
                break;
            }
            assert!(e < 999, "pre-image entries pop before the new tie");
        }
    }

    #[test]
    fn negative_relative_delay_clamped() {
        let mut q = EventQueue::new();
        q.schedule_in(-5.0, "now");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }
}
