//! Hand-rolled little-endian binary codec for engine snapshots.
//!
//! Snapshots must round-trip *bit-exactly* — a restored campaign has to
//! finish byte-identical to an uninterrupted one — so floats are stored
//! as raw `to_bits()` words rather than going through any decimal
//! formatting, and every field is fixed-width or length-prefixed. The
//! format carries no self-description; the versioned header in
//! [`crate::durability`] is what gates decoding against the right shape.

use super::DurabilityError;

/// FNV-1a 64-bit hash — the snapshot checksum. Not cryptographic; it
/// exists to catch torn writes and bit rot loudly, not adversaries.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Raw IEEE-754 bits — the only lossless f64 representation.
    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Unprefixed raw bytes (the header magic).
    pub(crate) fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-based decoder over a snapshot payload. Every read is
/// bounds-checked; running off the end or hitting an invalid tag is a
/// [`DurabilityError::Corrupt`], never a panic — a half-written snapshot
/// must fail loudly and recoverably.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                DurabilityError::Corrupt(format!(
                    "payload ends at byte {} but {n} more bytes were expected at offset {}",
                    self.buf.len(),
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, DurabilityError> {
        Ok(self.take(1)?[0])
    }

    /// Unprefixed raw bytes (the header magic).
    pub(crate) fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take_bool(&mut self) -> Result<bool, DurabilityError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DurabilityError::Corrupt(format!(
                "invalid bool byte {b:#04x}"
            ))),
        }
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, DurabilityError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, DurabilityError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn take_usize(&mut self) -> Result<usize, DurabilityError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| DurabilityError::Corrupt("length exceeds usize".to_string()))
    }

    /// A length prefix about to drive a `Vec` allocation: reject lengths
    /// that cannot possibly fit in the remaining payload, so a corrupt
    /// prefix fails as `Corrupt` instead of aborting on a huge alloc.
    pub(crate) fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, DurabilityError> {
        let n = self.take_usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(DurabilityError::Corrupt(format!(
                "length prefix {n} exceeds the {remaining} payload bytes remaining"
            )));
        }
        Ok(n)
    }

    pub(crate) fn take_f64(&mut self) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub(crate) fn take_str(&mut self) -> Result<String, DurabilityError> {
        let n = self.take_len(1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| DurabilityError::Corrupt("string is not UTF-8".to_string()))
    }

    /// Assert the payload was consumed exactly — trailing garbage means
    /// the payload length in the header lied about the content shape.
    pub(crate) fn finish(self) -> Result<(), DurabilityError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DurabilityError::Corrupt(format!(
                "{} trailing bytes after the decoded image",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut e = Enc::new();
        e.put_u8(0xA5);
        e.put_bool(true);
        e.put_u32(u32::MAX - 7);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_f64(-0.0);
        e.put_f64(1.0e-300);
        e.put_f64(f64::MAX);
        e.put_str("grid.campaign");
        e.put_str("");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 0xA5);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u32().unwrap(), u32::MAX - 7);
        assert_eq!(d.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_f64().unwrap(), 1.0e-300);
        assert_eq!(d.take_f64().unwrap(), f64::MAX);
        assert_eq!(d.take_str().unwrap(), "grid.campaign");
        assert_eq!(d.take_str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_fail_loudly() {
        let mut e = Enc::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        let mut short = Dec::new(&bytes[..5]);
        assert!(matches!(short.take_u64(), Err(DurabilityError::Corrupt(_))));
        let mut ok = Dec::new(&bytes);
        ok.take_u32().unwrap();
        assert!(matches!(ok.finish(), Err(DurabilityError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut e = Enc::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.take_len(16), Err(DurabilityError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let bytes = [7u8];
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.take_bool(), Err(DurabilityError::Corrupt(_))));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        // Sensitivity: one flipped bit changes the sum.
        assert_ne!(fnv1a(b"foobar"), fnv1a(b"foobas"));
    }
}
