//! Crash-safe checkpoint/restore of the resilient DES engine.
//!
//! The paper's campaign survived weeks of infrastructure failures; the
//! one component our reproduction assumed immortal was the campaign
//! manager itself. This module removes that assumption: a campaign run
//! through [`run_resilient_durable`] snapshots the *entire* live engine
//! — stamp-ordered event queue with pending poke blocks, per-site
//! scheduler heaps and free-processor counters, per-job attempt state,
//! accumulated records/failures/metrics, and the attached telemetry
//! stream — every `every_events` resolved events, and a fresh process
//! pointed at the same directory finishes the campaign **bit-identical**
//! to an uninterrupted run: same [`ResilientResult`] records, same
//! failure listing, same telemetry export, for every
//! `DispatchPolicy × ResiliencePolicy` combination. (The per-job RNG
//! streams are stateless functions of the campaign seed, so determinism
//! costs nothing extra to serialize.)
//!
//! Robustness properties, each exercised by the deterministic
//! crash-injection harness ([`CrashPlan`]):
//!
//! * snapshots are written atomically (temp sibling + flush + rename) —
//!   a crash mid-write never damages the previous generation set;
//! * every file carries a versioned header (magic, format version,
//!   generation, configuration fingerprint, payload length, FNV-1a
//!   checksum) so truncated, bit-flipped, mismatched or future-format
//!   files fail loudly with a typed [`DurabilityError`];
//! * recovery degrades gracefully: the newest *intact* generation wins,
//!   and every rejected newer file is reported (with its reason) in the
//!   [`RecoveryReport`].
//!
//! Checkpoint-subsystem activity (`checkpoint.write` / restore spans)
//! lands on the **separate** telemetry handle in
//! [`DurableConfig::telemetry`], never on the campaign handle — so the
//! campaign's own telemetry export stays bit-identical whether or not
//! the run was interrupted.

pub(crate) mod codec;
mod writer;

use crate::campaign::Campaign;
use crate::des::DispatchPolicy;
use crate::resilience::{Engine, EngineImage, EngineStats, ResiliencePolicy, ResilientResult};
use codec::{fnv1a, Dec, Enc};
use spice_telemetry::{intern, EventKind, MetricValue, Telemetry};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// First 8 bytes of every snapshot file.
const MAGIC: [u8; 8] = *b"SPICEDUR";
/// On-disk format version. Bump on any change to the header or payload
/// layout ([`EngineImage::encode`] or the telemetry section).
const FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong writing, finding or restoring a
/// snapshot. Each header check failure is a distinct variant so the
/// [`RecoveryReport`] can say *why* a generation was skipped.
#[derive(Debug)]
pub enum DurabilityError {
    /// Filesystem failure reading or writing the snapshot directory.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a SPICE
    /// snapshot at all (or one whose first bytes were destroyed).
    BadMagic {
        /// The 8 bytes actually found.
        found: Vec<u8>,
    },
    /// The file's format version is not the one this build understands.
    Version {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload checksum does not match the header — torn write or
    /// media corruption.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The snapshot was written by a different campaign / policy /
    /// dispatch configuration than the one resuming.
    Mismatch {
        /// Fingerprint of the resuming configuration.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// The payload is structurally invalid: truncated mid-field, an
    /// impossible tag, a lying length prefix, or trailing garbage.
    Corrupt(String),
    /// The configured [`CrashPlan`] fired — the simulated process death
    /// the crash harness uses in place of a real `kill -9`.
    InjectedCrash {
        /// Events the engine had resolved when the crash fired.
        after_events: u64,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            DurabilityError::BadMagic { found } => {
                write!(f, "not a SPICE snapshot (magic bytes {found:02x?})")
            }
            DurabilityError::Version { found, supported } => write!(
                f,
                "snapshot format version {found} (this build supports {supported})"
            ),
            DurabilityError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            DurabilityError::Mismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different run configuration: fingerprint {found:#018x}, resuming configuration {expected:#018x}"
            ),
            DurabilityError::Corrupt(why) => write!(f, "snapshot payload corrupt: {why}"),
            DurabilityError::InjectedCrash { after_events } => {
                write!(f, "injected crash after {after_events} events")
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Deterministic crash injection: where, exactly, the durable runner
/// simulates a process death or storage fault. Driven by the crash
/// harness tests and the `durable_campaign` example; production runs use
/// [`CrashPlan::None`].
///
/// After an injected crash, resume by calling [`run_resilient_durable`]
/// again on the same directory with a plan that no longer fires (usually
/// `None`) — re-running the *same* plan would re-inject the same fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPlan {
    /// Never crash.
    None,
    /// Die (return [`DurabilityError::InjectedCrash`]) once the engine
    /// has resolved `.0` events — between two event boundaries, exactly
    /// like a `kill -9` landing mid-campaign.
    KillAfterEvents(u64),
    /// After writing snapshot `generation`, truncate it to its first
    /// `keep_bytes` bytes and die — a torn write the checksum must
    /// catch on recovery.
    TornWrite {
        /// Generation whose file is torn.
        generation: u64,
        /// Bytes of the file that survive.
        keep_bytes: u64,
    },
    /// After writing snapshot `generation`, invert one byte at `byte`
    /// and die — silent corruption the checksum must catch.
    ChecksumFlip {
        /// Generation whose file is corrupted.
        generation: u64,
        /// Offset of the inverted byte.
        byte: u64,
    },
    /// After writing snapshot `after_generation`, delete the newest
    /// `drop_newest` snapshot files and die — recovery must fall back
    /// to the newest surviving generation.
    StaleGeneration {
        /// Generation whose write triggers the fault.
        after_generation: u64,
        /// How many of the newest files are destroyed.
        drop_newest: u64,
    },
}

/// Configuration of a durable campaign run.
#[derive(Clone)]
pub struct DurableConfig {
    /// Snapshot directory (created if absent). One campaign per
    /// directory.
    pub dir: PathBuf,
    /// Snapshot cadence: write a checkpoint every this many resolved
    /// events. The generation number of a snapshot is
    /// `events_processed / every_events`.
    pub every_events: u64,
    /// Keep this many newest generations on disk (older ones are
    /// deleted after each successful write). Must be ≥ 1; keeping a few
    /// is what makes stale-generation recovery possible.
    pub retain: usize,
    /// Telemetry handle for the checkpoint subsystem itself
    /// (`checkpoint.write` / `checkpoint.restore` spans and counters).
    /// Deliberately separate from the campaign telemetry handle so the
    /// campaign export stays bit-identical across interruptions.
    pub telemetry: Telemetry,
    /// Deterministic fault injection (see [`CrashPlan`]).
    pub crash: CrashPlan,
}

impl fmt::Debug for DurableConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableConfig")
            .field("dir", &self.dir)
            .field("every_events", &self.every_events)
            .field("retain", &self.retain)
            .field("telemetry_enabled", &self.telemetry.is_enabled())
            .field("crash", &self.crash)
            .finish()
    }
}

impl DurableConfig {
    /// Defaults: checkpoint every 256 events, retain 3 generations, no
    /// checkpoint telemetry, no injected crashes.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            every_events: 256,
            retain: 3,
            telemetry: Telemetry::disabled(),
            crash: CrashPlan::None,
        }
    }
}

/// What recovery found and did, alongside the campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation the run resumed from (`None` = fresh start).
    pub resumed_from: Option<u64>,
    /// Events already resolved at the resume point (0 on a fresh
    /// start).
    pub resumed_events: u64,
    /// Newer generations that were found but rejected, newest first,
    /// with the reason each failed to load.
    pub skipped: Vec<(u64, String)>,
    /// Snapshots written by *this* process before it finished (or
    /// crashed).
    pub snapshots_written: u64,
}

/// A finished durable campaign: the (bit-identical) resilient result,
/// the engine's scale counters, and the recovery audit trail.
#[derive(Debug, Clone)]
pub struct DurableOutcome {
    /// Campaign outcome — bit-identical to an uninterrupted
    /// [`crate::resilience::run_resilient_with_dispatch`] run.
    pub result: ResilientResult,
    /// Engine scale counters, also bit-identical.
    pub stats: EngineStats,
    /// What recovery saw.
    pub recovery: RecoveryReport,
}

/// Decoded telemetry section of a snapshot, pending re-import.
#[derive(Debug)]
struct TelemetryImage {
    tracks: Vec<(String, u64, Vec<TeleEvent>)>,
    metrics: Vec<(String, MetricValue)>,
}

#[derive(Debug)]
struct TeleEvent {
    kind: EventKind,
    name: String,
    logical: u64,
    attrs: Vec<(String, String)>,
}

/// Fingerprint of the full run configuration — campaign, resilience
/// policy and dispatch policy — via the snapshot codec. Stored in every
/// header; a snapshot only restores into the exact configuration that
/// wrote it.
fn fingerprint(campaign: &Campaign, policy: &ResiliencePolicy, dispatch: DispatchPolicy) -> u64 {
    let mut e = Enc::new();
    e.put_u64(campaign.seed);
    e.put_usize(campaign.jobs.len());
    for j in &campaign.jobs {
        e.put_u32(j.id);
        e.put_str(&j.name);
        e.put_u32(j.procs);
        e.put_f64(j.wall_hours);
        e.put_f64(j.release_hours);
        e.put_bool(j.coupled);
    }
    e.put_usize(campaign.federation.sites.len());
    for s in &campaign.federation.sites {
        e.put_u32(s.id);
        e.put_str(&s.name);
        e.put_str(&s.grid);
        e.put_u32(s.procs);
        e.put_f64(s.speed);
        e.put_f64(s.mean_queue_wait);
        e.put_bool(s.hidden_ip);
        e.put_bool(s.has_gateway);
        e.put_bool(s.lightpath);
    }
    e.put_usize(campaign.outages.len());
    for o in &campaign.outages {
        e.put_u32(o.site);
        e.put_f64(o.start);
        e.put_f64(o.end);
        e.put_u8(match o.cause {
            crate::failure::OutageCause::Hardware => 0,
            crate::failure::OutageCause::SecurityBreach => 1,
            crate::failure::OutageCause::Maintenance => 2,
            crate::failure::OutageCause::MiddlewareImmaturity => 3,
        });
    }
    e.put_u8(match policy.outage {
        crate::resilience::OutagePolicy::Drain => 0,
        crate::resilience::OutagePolicy::Kill => 1,
    });
    match policy.checkpoint.interval_hours {
        Some(h) => {
            e.put_u8(1);
            e.put_f64(h);
        }
        None => e.put_u8(0),
    }
    e.put_f64(policy.checkpoint.overhead_hours);
    e.put_u32(policy.retry.max_retries);
    e.put_f64(policy.retry.backoff_base_hours);
    e.put_f64(policy.retry.backoff_factor);
    e.put_f64(policy.retry.min_resubmit_delay_hours);
    e.put_u32(policy.retry.blacklist_threshold);
    e.put_bool(policy.retry.failover);
    e.put_f64(policy.failures.p_launch);
    e.put_f64(policy.failures.p_launch_immature);
    e.put_f64(policy.failures.crash_rate_per_hour);
    e.put_f64(policy.failures.gateway_drop_rate_per_hour);
    e.put_u8(match dispatch {
        DispatchPolicy::EarliestCompletion => 0,
        DispatchPolicy::RoundRobin => 1,
        DispatchPolicy::Random => 2,
    });
    fnv1a(e.bytes())
}

fn encode_telemetry(e: &mut Enc, t: &Telemetry) {
    e.put_bool(t.is_enabled());
    let snap = t.snapshot();
    e.put_usize(snap.tracks.len());
    for tr in &snap.tracks {
        e.put_str(tr.name);
        e.put_u64(tr.key);
        e.put_usize(tr.events.len());
        for ev in &tr.events {
            e.put_u8(match ev.kind {
                EventKind::Enter => 0,
                EventKind::Exit => 1,
                EventKind::Instant => 2,
            });
            e.put_str(ev.name);
            e.put_u64(ev.logical);
            // wall_ns deliberately dropped: wall time is the one
            // non-deterministic field, and restores re-anchor it.
            e.put_usize(ev.attrs.len());
            for (k, v) in &ev.attrs {
                e.put_str(k);
                e.put_str(v);
            }
        }
    }
    e.put_usize(snap.metrics.len());
    for (name, value) in &snap.metrics {
        e.put_str(name);
        match value {
            MetricValue::Counter(v) => {
                e.put_u8(0);
                e.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                e.put_u8(1);
                e.put_f64(*v);
            }
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
            } => {
                e.put_u8(2);
                e.put_usize(bounds.len());
                for b in bounds {
                    e.put_f64(*b);
                }
                e.put_usize(counts.len());
                for c in counts {
                    e.put_u64(*c);
                }
                e.put_f64(*sum);
            }
        }
    }
}

fn decode_telemetry(d: &mut Dec<'_>) -> Result<TelemetryImage, DurabilityError> {
    let _was_enabled = d.take_bool()?;
    let mut tracks = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..tracks.capacity() {
        let name = d.take_str()?;
        let key = d.take_u64()?;
        let mut events = Vec::with_capacity(d.take_len(17)?);
        for _ in 0..events.capacity() {
            let kind = match d.take_u8()? {
                0 => EventKind::Enter,
                1 => EventKind::Exit,
                2 => EventKind::Instant,
                t => {
                    return Err(DurabilityError::Corrupt(format!(
                        "invalid span-event kind tag {t}"
                    )))
                }
            };
            let ename = d.take_str()?;
            let logical = d.take_u64()?;
            let mut attrs = Vec::with_capacity(d.take_len(16)?);
            for _ in 0..attrs.capacity() {
                attrs.push((d.take_str()?, d.take_str()?));
            }
            events.push(TeleEvent {
                kind,
                name: ename,
                logical,
                attrs,
            });
        }
        tracks.push((name, key, events));
    }
    let mut metrics = Vec::with_capacity(d.take_len(9)?);
    for _ in 0..metrics.capacity() {
        let name = d.take_str()?;
        let value = match d.take_u8()? {
            0 => MetricValue::Counter(d.take_u64()?),
            1 => MetricValue::Gauge(d.take_f64()?),
            2 => {
                let mut bounds = Vec::with_capacity(d.take_len(8)?);
                for _ in 0..bounds.capacity() {
                    bounds.push(d.take_f64()?);
                }
                let mut counts = Vec::with_capacity(d.take_len(8)?);
                for _ in 0..counts.capacity() {
                    counts.push(d.take_u64()?);
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum: d.take_f64()?,
                }
            }
            t => return Err(DurabilityError::Corrupt(format!("invalid metric tag {t}"))),
        };
        metrics.push((name, value));
    }
    Ok(TelemetryImage { tracks, metrics })
}

/// Replay a snapshot's telemetry section into `t`. No-op on a disabled
/// handle. Names are interned back to `&'static str`; event order and
/// logical stamps are preserved verbatim, so the resumed export is
/// byte-identical to the uninterrupted one.
fn import_telemetry(t: &Telemetry, img: &TelemetryImage) {
    if !t.is_enabled() {
        return;
    }
    for (name, key, events) in &img.tracks {
        let track = t.track(intern(name), *key);
        for ev in events {
            track.import_event(
                ev.kind,
                intern(&ev.name),
                ev.logical,
                ev.attrs
                    .iter()
                    // spice-lint: allow(P002) one-shot recovery replay, not the DES hot path — attrs move into the fresh track
                    .map(|(k, v)| (intern(k), v.clone()))
                    .collect(),
            );
        }
    }
    for (name, value) in &img.metrics {
        t.import_metric(name, value);
    }
}

/// Read and fully validate one snapshot file against the resuming
/// configuration's fingerprint `fp`.
fn load_snapshot(path: &Path, fp: u64) -> Result<(EngineImage, TelemetryImage), DurabilityError> {
    let bytes = fs::read(path)?;
    let mut d = Dec::new(&bytes);
    let magic = d
        .take_bytes(8)
        .map_err(|_| DurabilityError::BadMagic {
            found: bytes.clone(),
        })?
        .to_vec();
    if magic != MAGIC {
        return Err(DurabilityError::BadMagic { found: magic });
    }
    let version = d.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(DurabilityError::Version {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let _generation = d.take_u64()?;
    let file_fp = d.take_u64()?;
    if file_fp != fp {
        return Err(DurabilityError::Mismatch {
            expected: fp,
            found: file_fp,
        });
    }
    let payload_len = d.take_usize()?;
    let checksum = d.take_u64()?;
    if d.remaining() != payload_len {
        return Err(DurabilityError::Corrupt(format!(
            "header promises a {payload_len}-byte payload but {} bytes follow",
            d.remaining()
        )));
    }
    let payload = d.take_bytes(payload_len)?;
    let actual = fnv1a(payload);
    if actual != checksum {
        return Err(DurabilityError::Checksum {
            expected: checksum,
            found: actual,
        });
    }
    let mut pd = Dec::new(payload);
    let image = EngineImage::decode(&mut pd)?;
    let telemetry = decode_telemetry(&mut pd)?;
    pd.finish()?;
    Ok((image, telemetry))
}

/// Serialize `image` + the campaign telemetry stream and write it
/// atomically as generation `generation`.
fn write_snapshot(
    dir: &Path,
    generation: u64,
    fp: u64,
    image: &EngineImage,
    campaign_telemetry: &Telemetry,
) -> Result<u64, DurabilityError> {
    let mut payload = Enc::new();
    image.encode(&mut payload);
    encode_telemetry(&mut payload, campaign_telemetry);
    let payload = payload.into_bytes();
    let mut file = Enc::new();
    file.put_raw(&MAGIC);
    file.put_u32(FORMAT_VERSION);
    file.put_u64(generation);
    file.put_u64(fp);
    file.put_usize(payload.len());
    file.put_u64(fnv1a(&payload));
    file.put_raw(&payload);
    let bytes = file.into_bytes();
    writer::atomic_write(&writer::snapshot_path(dir, generation), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Execute a campaign crash-safely: resume from the newest intact
/// snapshot in `cfg.dir` (if any), checkpoint every `cfg.every_events`
/// resolved events, and finish with results **bit-identical** to an
/// uninterrupted [`crate::resilience::run_resilient_with_dispatch_traced`]
/// run — records, failure listing, telemetry export and engine stats
/// alike, under every dispatch and resilience policy.
///
/// `telemetry` is the campaign handle (its stream is checkpointed and
/// restored with the engine); checkpoint-subsystem spans go to
/// `cfg.telemetry`. For telemetry to survive a crash bit-identically,
/// resume with the handle in the same enabled/disabled state the
/// campaign started with.
///
/// # Errors
/// [`DurabilityError::Io`] on filesystem failure, and
/// [`DurabilityError::InjectedCrash`] when `cfg.crash` fires. Unreadable
/// snapshots never error here — they degrade recovery to an older
/// generation and are reported in [`RecoveryReport::skipped`].
///
/// # Panics
/// Panics on an empty campaign (no jobs or no sites), a zero
/// `cfg.every_events`, or a zero `cfg.retain` — configuration errors,
/// not runtime failures.
pub fn run_resilient_durable(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
    telemetry: &Telemetry,
    cfg: &DurableConfig,
) -> Result<DurableOutcome, DurabilityError> {
    assert!(!campaign.jobs.is_empty(), "campaign has no jobs");
    assert!(
        !campaign.federation.sites.is_empty(),
        "campaign has no sites"
    );
    assert!(cfg.every_events > 0, "checkpoint cadence must be positive");
    assert!(cfg.retain >= 1, "must retain at least one generation");
    fs::create_dir_all(&cfg.dir)?;
    let fp = fingerprint(campaign, policy, dispatch);
    let ckpt_track = cfg.telemetry.track("checkpoint", 0);

    // Recovery scan: newest generation first, falling back past every
    // unreadable file (recording why) to the newest intact one.
    let mut skipped: Vec<(u64, String)> = Vec::new();
    let mut restored: Option<(u64, EngineImage, TelemetryImage)> = None;
    for (generation, path) in writer::list_generations(&cfg.dir)?.iter().rev() {
        match load_snapshot(path, fp) {
            Ok((image, tele)) => {
                restored = Some((*generation, image, tele));
                break;
            }
            Err(why) => skipped.push((*generation, why.to_string())),
        }
    }

    let (mut engine, mut last_generation, resumed_from, resumed_events) = match restored {
        Some((generation, image, tele)) => {
            let events = image.events_processed();
            import_telemetry(telemetry, &tele);
            let engine = Engine::thaw(campaign, policy, dispatch, telemetry, image);
            ckpt_track.instant_at(
                "checkpoint.restore",
                events,
                vec![
                    ("generation", generation.to_string()),
                    ("events", events.to_string()),
                ],
            );
            cfg.telemetry.counter("checkpoint.restores").incr();
            (engine, generation, Some(generation), events)
        }
        None => {
            let mut engine = Engine::new(campaign, policy, dispatch, telemetry);
            engine.prologue();
            (engine, 0, None, 0)
        }
    };

    let mut snapshots_written = 0u64;
    loop {
        let events = engine.events();
        let generation = events / cfg.every_events;
        if events > 0 && events % cfg.every_events == 0 && generation > last_generation {
            ckpt_track.enter_at("checkpoint.write", events);
            let image = engine.freeze();
            let bytes = write_snapshot(&cfg.dir, generation, fp, &image, telemetry)?;
            ckpt_track.exit_at("checkpoint.write", events);
            ckpt_track.instant_at(
                "checkpoint.written",
                events,
                vec![
                    ("generation", generation.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
            cfg.telemetry.counter("checkpoint.writes").incr();
            cfg.telemetry.counter("checkpoint.bytes").add(bytes);
            writer::retain_newest(&cfg.dir, cfg.retain)?;
            last_generation = generation;
            snapshots_written += 1;
            // Write-stage fault injection: the fault lands *after* the
            // successful write, as if the process died with its final
            // I/O torn or the storage lied.
            match cfg.crash {
                CrashPlan::TornWrite {
                    generation: g,
                    keep_bytes,
                } if g == generation => {
                    writer::truncate_file(&writer::snapshot_path(&cfg.dir, g), keep_bytes)?;
                    return Err(DurabilityError::InjectedCrash {
                        after_events: events,
                    });
                }
                CrashPlan::ChecksumFlip {
                    generation: g,
                    byte,
                } if g == generation => {
                    writer::flip_byte(&writer::snapshot_path(&cfg.dir, g), byte)?;
                    return Err(DurabilityError::InjectedCrash {
                        after_events: events,
                    });
                }
                CrashPlan::StaleGeneration {
                    after_generation,
                    drop_newest,
                } if after_generation == generation => {
                    writer::drop_newest(&cfg.dir, drop_newest)?;
                    return Err(DurabilityError::InjectedCrash {
                        after_events: events,
                    });
                }
                _ => {}
            }
        }
        if let CrashPlan::KillAfterEvents(n) = cfg.crash {
            if events >= n {
                return Err(DurabilityError::InjectedCrash {
                    after_events: events,
                });
            }
        }
        if !engine.step() {
            break;
        }
    }
    let (result, stats) = engine.epilogue();
    Ok(DurableOutcome {
        result,
        stats,
        recovery: RecoveryReport {
            resumed_from,
            resumed_events,
            skipped,
            snapshots_written,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("spice_durability_mod_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_campaign() -> Campaign {
        let mut c = Campaign::paper_batch_phase(23);
        c.outages = vec![Outage::security_breach(3, 24.0, 2.0)];
        c
    }

    #[test]
    fn uninterrupted_durable_run_matches_plain_run_and_checkpoints() {
        let c = small_campaign();
        let policy = ResiliencePolicy::checkpoint_failover();
        let plain =
            crate::resilience::run_resilient_with_dispatch(&c, &policy, DispatchPolicy::RoundRobin);
        let dir = scratch_dir("plain");
        let mut cfg = DurableConfig::new(&dir);
        cfg.every_events = 64;
        cfg.retain = 2;
        let out = run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::RoundRobin,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect("uninterrupted run");
        assert_eq!(out.result, plain);
        assert_eq!(out.recovery.resumed_from, None);
        assert!(out.recovery.skipped.is_empty());
        assert!(out.recovery.snapshots_written >= 2);
        let on_disk = super::writer::list_generations(&dir).unwrap();
        assert!(
            on_disk.len() <= 2,
            "retention must cap generations, found {}",
            on_disk.len()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let c = small_campaign();
        let policy = ResiliencePolicy::retry_only();
        let plain = crate::resilience::run_resilient_with_dispatch(
            &c,
            &policy,
            DispatchPolicy::EarliestCompletion,
        );
        let dir = scratch_dir("kill");
        let mut cfg = DurableConfig::new(&dir);
        cfg.every_events = 50;
        cfg.crash = CrashPlan::KillAfterEvents(137);
        let err = run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::EarliestCompletion,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect_err("the crash plan must fire");
        assert!(matches!(
            err,
            DurabilityError::InjectedCrash { after_events: 137 }
        ));
        cfg.crash = CrashPlan::None;
        let out = run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::EarliestCompletion,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect("resume");
        assert_eq!(out.recovery.resumed_from, Some(2), "resumed from event 100");
        assert_eq!(out.recovery.resumed_events, 100);
        assert_eq!(out.result, plain);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let c = small_campaign();
        let policy = ResiliencePolicy::checkpoint_failover();
        let plain =
            crate::resilience::run_resilient_with_dispatch(&c, &policy, DispatchPolicy::Random);
        let dir = scratch_dir("torn");
        let mut cfg = DurableConfig::new(&dir);
        cfg.every_events = 40;
        cfg.crash = CrashPlan::TornWrite {
            generation: 3,
            keep_bytes: 100,
        };
        run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::Random,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect_err("torn write must crash");
        cfg.crash = CrashPlan::None;
        let out = run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::Random,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect("resume past the torn file");
        assert_eq!(out.recovery.resumed_from, Some(2));
        assert_eq!(out.recovery.skipped.len(), 1);
        assert_eq!(out.recovery.skipped[0].0, 3);
        assert!(
            out.recovery.skipped[0].1.contains("payload"),
            "torn file must be rejected for its payload shape: {}",
            out.recovery.skipped[0].1
        );
        assert_eq!(out.result, plain);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_is_caught_by_the_checksum() {
        let c = small_campaign();
        let policy = ResiliencePolicy::naive();
        let plain =
            crate::resilience::run_resilient_with_dispatch(&c, &policy, DispatchPolicy::RoundRobin);
        let dir = scratch_dir("flip");
        let mut cfg = DurableConfig::new(&dir);
        cfg.every_events = 60;
        // Flip a byte well inside the payload of generation 2.
        cfg.crash = CrashPlan::ChecksumFlip {
            generation: 2,
            byte: 500,
        };
        run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::RoundRobin,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect_err("flip must crash");
        cfg.crash = CrashPlan::None;
        let out = run_resilient_durable(
            &c,
            &policy,
            DispatchPolicy::RoundRobin,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect("resume past the corrupt file");
        assert_eq!(out.recovery.resumed_from, Some(1));
        assert!(out.recovery.skipped[0].1.contains("checksum"));
        assert_eq!(out.result, plain);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_future_version_and_foreign_fingerprint_fail_loudly() {
        let dir = scratch_dir("loud");
        fs::create_dir_all(&dir).unwrap();
        let p = super::writer::snapshot_path(&dir, 1);
        fs::write(&p, b"definitely not a snapshot").unwrap();
        assert!(matches!(
            load_snapshot(&p, 0),
            Err(DurabilityError::BadMagic { .. })
        ));
        // A future format version.
        let mut e = Enc::new();
        e.put_raw(&MAGIC);
        e.put_u32(FORMAT_VERSION + 9);
        e.put_u64(1);
        e.put_u64(0);
        e.put_usize(0);
        e.put_u64(fnv1a(b""));
        fs::write(&p, e.into_bytes()).unwrap();
        match load_snapshot(&p, 0) {
            Err(DurabilityError::Version { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 9);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        // A snapshot from a different configuration: write one for
        // policy A, try to load it as policy B.
        let c = small_campaign();
        let mut cfg = DurableConfig::new(&dir);
        cfg.every_events = 80;
        cfg.crash = CrashPlan::KillAfterEvents(80);
        run_resilient_durable(
            &c,
            &ResiliencePolicy::naive(),
            DispatchPolicy::RoundRobin,
            &Telemetry::disabled(),
            &cfg,
        )
        .expect_err("kill");
        let other_fp = fingerprint(
            &c,
            &ResiliencePolicy::retry_only(),
            DispatchPolicy::RoundRobin,
        );
        assert!(matches!(
            load_snapshot(&super::writer::snapshot_path(&dir, 1), other_fp),
            Err(DurabilityError::Mismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_separates_every_configuration_axis() {
        let c = small_campaign();
        let base = fingerprint(
            &c,
            &ResiliencePolicy::retry_only(),
            DispatchPolicy::EarliestCompletion,
        );
        let mut c2 = c.clone();
        c2.seed ^= 1;
        assert_ne!(
            base,
            fingerprint(
                &c2,
                &ResiliencePolicy::retry_only(),
                DispatchPolicy::EarliestCompletion
            )
        );
        assert_ne!(
            base,
            fingerprint(
                &c,
                &ResiliencePolicy::checkpoint_failover(),
                DispatchPolicy::EarliestCompletion
            )
        );
        assert_ne!(
            base,
            fingerprint(&c, &ResiliencePolicy::retry_only(), DispatchPolicy::Random)
        );
    }
}
