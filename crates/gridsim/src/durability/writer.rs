//! Atomic snapshot files and generation management.
//!
//! Snapshots are named `ckpt-<generation 08d>.spice` and written via the
//! classic temp-file + rename protocol: the payload lands in a `.tmp`
//! sibling, is flushed to disk, and only then renamed over the final
//! name. A crash at any byte therefore leaves either the previous
//! generation set intact or a stray `.tmp` that recovery ignores — never
//! a half-written `.spice` file under the real name. (Torn final files
//! are still *handled* — the checksum rejects them — because this module
//! also provides the corruption injectors the crash harness uses to
//! simulate exactly that.)

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of generation `generation` under `dir`.
pub(crate) fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:08}.spice"))
}

/// Parse a generation number out of a `ckpt-<gen>.spice` file name.
fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".spice")?
        .parse()
        .ok()
}

/// Every snapshot generation in `dir`, ascending. Files that do not
/// match the naming scheme (including abandoned `.tmp` files) are
/// ignored.
pub(crate) fn list_generations(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(generation) = entry.file_name().to_str().and_then(parse_generation) {
            found.push((generation, entry.path()));
        }
    }
    found.sort_unstable();
    Ok(found)
}

/// Write `bytes` to `path` atomically: temp sibling, flush, rename.
/// The temp name embeds the final file name, so concurrent campaigns in
/// one directory (different generations) never collide.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "snapshot path has no name"))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        // spice-lint: allow(W001) this is the atomic-writer protocol itself: temp sibling + flush + rename
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Delete every snapshot except the newest `retain` generations.
pub(crate) fn retain_newest(dir: &Path, retain: usize) -> io::Result<()> {
    let generations = list_generations(dir)?;
    if generations.len() > retain {
        for (_, path) in &generations[..generations.len() - retain] {
            fs::remove_file(path)?;
        }
    }
    Ok(())
}

/// Crash injector: truncate `path` to its first `keep_bytes` bytes — a
/// torn write that beat the rename (or a filesystem that lied about the
/// flush).
pub(crate) fn truncate_file(path: &Path, keep_bytes: u64) -> io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)?;
    f.sync_all()
}

/// Crash injector: invert one byte of `path` in place — silent media
/// corruption the checksum must catch.
pub(crate) fn flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    let mut f = fs::OpenOptions::new().read(true).write(true).open(path)?;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    f.sync_all()
}

/// Crash injector: delete the newest `n` snapshot generations — the
/// stale-generation scenario where recovery must fall back to an older
/// intact file.
pub(crate) fn drop_newest(dir: &Path, n: u64) -> io::Result<()> {
    let generations = list_generations(dir)?;
    for (_, path) in generations.iter().rev().take(n as usize) {
        fs::remove_file(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "spice_durability_writer_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create scratch dir");
        d
    }

    #[test]
    fn generation_files_list_in_order_and_ignore_strays() {
        let d = scratch_dir("list");
        for generation in [3u64, 1, 20] {
            atomic_write(&snapshot_path(&d, generation), b"payload").unwrap();
        }
        fs::write(d.join("ckpt-00000007.spice.tmp"), b"torn").unwrap();
        fs::write(d.join("notes.txt"), b"x").unwrap();
        let generations: Vec<u64> = list_generations(&d)
            .unwrap()
            .into_iter()
            .map(|g| g.0)
            .collect();
        assert_eq!(generations, [1, 3, 20]);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn retention_keeps_only_the_newest_k() {
        let d = scratch_dir("retain");
        for generation in 1..=5u64 {
            atomic_write(&snapshot_path(&d, generation), b"p").unwrap();
        }
        retain_newest(&d, 2).unwrap();
        let generations: Vec<u64> = list_generations(&d)
            .unwrap()
            .into_iter()
            .map(|g| g.0)
            .collect();
        assert_eq!(generations, [4, 5]);
        // Retaining more than exist is a no-op.
        retain_newest(&d, 10).unwrap();
        assert_eq!(list_generations(&d).unwrap().len(), 2);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_and_injectors_corrupt_in_place() {
        let d = scratch_dir("inject");
        let p = snapshot_path(&d, 1);
        atomic_write(&p, &[0u8, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert!(list_generations(&d).unwrap().len() == 1);
        assert!(
            !d.join("ckpt-00000001.spice.tmp").exists(),
            "temp file must be renamed away"
        );
        truncate_file(&p, 3).unwrap();
        assert_eq!(fs::read(&p).unwrap(), [0, 1, 2]);
        flip_byte(&p, 1).unwrap();
        assert_eq!(fs::read(&p).unwrap(), [0, 0xFE, 2]);
        atomic_write(&snapshot_path(&d, 2), b"x").unwrap();
        drop_newest(&d, 1).unwrap();
        let generations: Vec<u64> = list_generations(&d)
            .unwrap()
            .into_iter()
            .map(|g| g.0)
            .collect();
        assert_eq!(generations, [1]);
        fs::remove_dir_all(&d).unwrap();
    }
}
