//! Sites: the compute resources of the federation.
//!
//! Fig. 5's resources, with capacities representative of 2005-era
//! machines. Speed factors rescale job wall-times (the paper notes each
//! simulation ran on "128 or 256 processors (depending upon the machine
//! used)").

use serde::{Deserialize, Serialize};

/// Site identifier (index into the federation's site table).
pub type SiteId = u32;

/// A compute site (cluster / SMP) participating in the grid.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Site {
    /// Identifier.
    pub id: SiteId,
    /// Name ("NCSA", "SDSC", "PSC", "NGS-Oxford", …).
    pub name: String,
    /// Which grid this site belongs to ("TeraGrid", "NGS").
    pub grid: String,
    /// Processors available to the project.
    pub procs: u32,
    /// Relative speed (1.0 = reference; job runtime = wall_hours / speed).
    pub speed: f64,
    /// Mean stochastic queue wait (hours) from competing background load.
    pub mean_queue_wait: f64,
    /// Compute nodes have hidden (non-routable) IP addresses (§V-C-1).
    pub hidden_ip: bool,
    /// Site has gateway nodes bridging hidden IPs (PSC's qsocket/AGN).
    pub has_gateway: bool,
    /// Optical lightpath (UKLight/GLIF) connectivity deployed and stable.
    pub lightpath: bool,
}

impl Site {
    /// Runtime (hours) of a job with `wall_hours` reference duration.
    pub fn runtime(&self, wall_hours: f64) -> f64 {
        wall_hours / self.speed
    }

    /// Can this site run a job needing `procs` processors at all?
    pub fn fits(&self, procs: u32) -> bool {
        procs <= self.procs
    }
}

/// The federation of Fig. 5: three TeraGrid sites + three NGS sites.
///
/// `procs` is the slice of each machine the project could actually use
/// concurrently in 2005 (shared production queues), not the machine
/// size. Capacities are calibrated so the 72-job campaign (~75k
/// CPU-hours) completes in *just under a week* on the federation but
/// takes weeks on any single site — the paper's T-batch claim.
pub fn paper_federation_sites() -> Vec<Site> {
    vec![
        Site {
            id: 0,
            name: "NCSA".into(),
            grid: "TeraGrid".into(),
            procs: 384,
            speed: 1.0,
            mean_queue_wait: 10.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: true,
        },
        Site {
            id: 1,
            name: "SDSC".into(),
            grid: "TeraGrid".into(),
            procs: 256,
            speed: 1.0,
            mean_queue_wait: 12.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: true,
        },
        Site {
            id: 2,
            name: "PSC".into(),
            grid: "TeraGrid".into(),
            procs: 256,
            speed: 1.25,
            mean_queue_wait: 14.0,
            hidden_ip: true,
            has_gateway: true,
            lightpath: true,
        },
        Site {
            id: 3,
            name: "NGS-Oxford".into(),
            grid: "NGS".into(),
            procs: 128,
            speed: 0.8,
            mean_queue_wait: 6.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: true,
        },
        Site {
            id: 4,
            name: "NGS-Leeds".into(),
            grid: "NGS".into(),
            procs: 128,
            speed: 0.8,
            mean_queue_wait: 6.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: false,
        },
        Site {
            id: 5,
            name: "HPCx".into(),
            grid: "NGS".into(),
            procs: 256,
            speed: 1.1,
            // §V-C-2: UKLight barely deployed + hidden IPs made HPCx
            // unusable for coupled runs; batch-only here.
            mean_queue_wait: 12.0,
            hidden_ip: true,
            has_gateway: false,
            lightpath: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scales_with_speed() {
        let s = Site {
            id: 0,
            name: "X".into(),
            grid: "G".into(),
            procs: 128,
            speed: 2.0,
            mean_queue_wait: 0.0,
            hidden_ip: false,
            has_gateway: false,
            lightpath: false,
        };
        assert_eq!(s.runtime(10.0), 5.0);
        assert!(s.fits(128));
        assert!(!s.fits(129));
    }

    #[test]
    fn paper_federation_shape() {
        let sites = paper_federation_sites();
        assert_eq!(sites.len(), 6);
        let tg: Vec<_> = sites.iter().filter(|s| s.grid == "TeraGrid").collect();
        let ngs: Vec<_> = sites.iter().filter(|s| s.grid == "NGS").collect();
        assert_eq!(tg.len(), 3, "NCSA, SDSC, PSC");
        assert_eq!(ngs.len(), 3);
        // PSC is the hidden-IP + gateway site of §V-C-1.
        let psc = sites.iter().find(|s| s.name == "PSC").unwrap();
        assert!(psc.hidden_ip && psc.has_gateway);
        // HPCx is hidden-IP without a gateway and without lightpath (§V-C-2).
        let hpcx = sites.iter().find(|s| s.name == "HPCx").unwrap();
        assert!(hpcx.hidden_ip && !hpcx.has_gateway && !hpcx.lightpath);
        // Ids match indices.
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
    }

    #[test]
    fn federation_can_host_256_proc_jobs() {
        let sites = paper_federation_sites();
        assert!(sites.iter().filter(|s| s.fits(256)).count() >= 4);
    }
}
