//! Jobs: the unit of work the grid schedules.
//!
//! The paper's production jobs are MD simulations needing 128 or 256
//! processors for hours to days; the interactive jobs additionally need
//! network QoS to the visualization host.

use serde::{Deserialize, Serialize};

/// Job identifier.
pub type JobId = u32;

/// A batch job demand.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Job {
    /// Identifier, unique within a campaign.
    pub id: JobId,
    /// Human-readable tag (e.g. "smd-k100-v12.5-r03").
    pub name: String,
    /// Processors required.
    pub procs: u32,
    /// Wall-clock hours on a reference-speed site.
    pub wall_hours: f64,
    /// Earliest start (hours from campaign begin).
    pub release_hours: f64,
    /// Steering-coupled: the master process must hold a live connection
    /// to an external visualization/steering host for the whole run, so
    /// the job is subject to the hidden-IP/gateway connectivity model
    /// (§V-C-1) and to gateway connection drops.
    pub coupled: bool,
}

impl Job {
    /// Construct a (batch, uncoupled) job.
    ///
    /// # Panics
    /// Panics on zero processors or non-positive duration.
    pub fn new(id: JobId, name: impl Into<String>, procs: u32, wall_hours: f64) -> Job {
        assert!(procs > 0, "job needs at least one processor");
        assert!(wall_hours > 0.0, "job duration must be positive");
        Job {
            id,
            name: name.into(),
            procs,
            wall_hours,
            release_hours: 0.0,
            coupled: false,
        }
    }

    /// Mark the job steering-coupled (builder style).
    pub fn steering_coupled(mut self) -> Job {
        self.coupled = true;
        self
    }

    /// CPU-hours consumed on a reference-speed site.
    pub fn cpu_hours(&self) -> f64 {
        self.procs as f64 * self.wall_hours
    }
}

/// Execution record of a completed job. `site`/`started`/`finished`
/// describe the *successful* attempt; `attempts` and `lost_cpu_hours`
/// summarize the failed attempts that preceded it (both trivial — 1 and
/// 0.0 — when the campaign runs without a failure model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct JobRecord {
    /// Which job.
    pub job: JobId,
    /// Site it ran on.
    pub site: crate::resource::SiteId,
    /// Submission time (h).
    pub submitted: f64,
    /// Start time (h).
    pub started: f64,
    /// Finish time (h).
    pub finished: f64,
    /// Processors used.
    pub procs: u32,
    /// Total execution attempts (1 = succeeded first try).
    pub attempts: u32,
    /// Reference-normalized CPU-hours burned by failed attempts and lost
    /// (uncheckpointed) segments before the successful run.
    pub lost_cpu_hours: f64,
}

impl JobRecord {
    /// Record of a clean first-attempt execution.
    pub fn clean(
        job: JobId,
        site: crate::resource::SiteId,
        submitted: f64,
        started: f64,
        finished: f64,
        procs: u32,
    ) -> JobRecord {
        JobRecord {
            job,
            site,
            submitted,
            started,
            finished,
            procs,
            attempts: 1,
            lost_cpu_hours: 0.0,
        }
    }

    /// Queue wait (h): first submission to the successful start, so for a
    /// retried job this includes backoff delays and failed attempts.
    pub fn wait(&self) -> f64 {
        self.started - self.submitted
    }

    /// Execution time (h) of the successful attempt.
    pub fn runtime(&self) -> f64 {
        self.finished - self.started
    }

    /// CPU-hours consumed by the successful attempt.
    pub fn cpu_hours(&self) -> f64 {
        self.runtime() * self.procs as f64
    }

    /// Retries consumed (attempts after the first).
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_hours_product() {
        let j = Job::new(1, "sim", 128, 24.0);
        assert_eq!(j.cpu_hours(), 3072.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        Job::new(1, "bad", 0, 1.0);
    }

    #[test]
    fn record_accounting() {
        let r = JobRecord::clean(1, 0, 0.0, 2.0, 14.0, 128);
        assert_eq!(r.wait(), 2.0);
        assert_eq!(r.runtime(), 12.0);
        assert_eq!(r.cpu_hours(), 1536.0);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.retries(), 0);
        assert_eq!(r.lost_cpu_hours, 0.0);
    }

    #[test]
    fn coupled_builder() {
        let j = Job::new(1, "imd", 256, 2.0);
        assert!(!j.coupled);
        assert!(j.steering_coupled().coupled);
    }
}
