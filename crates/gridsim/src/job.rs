//! Jobs: the unit of work the grid schedules.
//!
//! The paper's production jobs are MD simulations needing 128 or 256
//! processors for hours to days; the interactive jobs additionally need
//! network QoS to the visualization host.

use serde::{Deserialize, Serialize};

/// Job identifier.
pub type JobId = u32;

/// A batch job demand.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Job {
    /// Identifier, unique within a campaign.
    pub id: JobId,
    /// Human-readable tag (e.g. "smd-k100-v12.5-r03").
    pub name: String,
    /// Processors required.
    pub procs: u32,
    /// Wall-clock hours on a reference-speed site.
    pub wall_hours: f64,
    /// Earliest start (hours from campaign begin).
    pub release_hours: f64,
}

impl Job {
    /// Construct a job.
    ///
    /// # Panics
    /// Panics on zero processors or non-positive duration.
    pub fn new(id: JobId, name: impl Into<String>, procs: u32, wall_hours: f64) -> Job {
        assert!(procs > 0, "job needs at least one processor");
        assert!(wall_hours > 0.0, "job duration must be positive");
        Job {
            id,
            name: name.into(),
            procs,
            wall_hours,
            release_hours: 0.0,
        }
    }

    /// CPU-hours consumed on a reference-speed site.
    pub fn cpu_hours(&self) -> f64 {
        self.procs as f64 * self.wall_hours
    }
}

/// Execution record of a completed job.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct JobRecord {
    /// Which job.
    pub job: JobId,
    /// Site it ran on.
    pub site: crate::resource::SiteId,
    /// Submission time (h).
    pub submitted: f64,
    /// Start time (h).
    pub started: f64,
    /// Finish time (h).
    pub finished: f64,
    /// Processors used.
    pub procs: u32,
}

impl JobRecord {
    /// Queue wait (h).
    pub fn wait(&self) -> f64 {
        self.started - self.submitted
    }

    /// Execution time (h).
    pub fn runtime(&self) -> f64 {
        self.finished - self.started
    }

    /// CPU-hours actually consumed.
    pub fn cpu_hours(&self) -> f64 {
        self.runtime() * self.procs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_hours_product() {
        let j = Job::new(1, "sim", 128, 24.0);
        assert_eq!(j.cpu_hours(), 3072.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        Job::new(1, "bad", 0, 1.0);
    }

    #[test]
    fn record_accounting() {
        let r = JobRecord {
            job: 1,
            site: 0,
            submitted: 0.0,
            started: 2.0,
            finished: 14.0,
            procs: 128,
        };
        assert_eq!(r.wait(), 2.0);
        assert_eq!(r.runtime(), 12.0);
        assert_eq!(r.cpu_hours(), 1536.0);
    }
}
