//! Per-site FCFS batch queue with aggressive backfill — the behaviour of
//! the 2005-era PBS/LoadLeveler queues the paper's jobs sat in.

use crate::job::Job;
use std::collections::VecDeque;

/// A queued entry: the job plus the time it becomes eligible to start
/// (submission + stochastic background-queue delay).
#[derive(Debug, Clone)]
struct Queued {
    job: Job,
    ready: f64,
}

/// A running entry.
#[derive(Debug, Clone)]
struct Running {
    job_id: u32,
    procs: u32,
    finish: f64,
}

/// FCFS + backfill scheduler state for one site.
#[derive(Debug, Clone)]
pub struct SiteScheduler {
    free: u32,
    queue: VecDeque<Queued>,
    running: Vec<Running>,
    /// Site unavailable until this time (outage), if any.
    down_until: Option<f64>,
    /// Total processor count, kept only to audit conservation.
    #[cfg(feature = "audit")]
    capacity: u32,
}

impl SiteScheduler {
    /// New idle scheduler for `capacity` processors.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0);
        SiteScheduler {
            free: capacity,
            queue: VecDeque::new(),
            running: Vec::new(),
            down_until: None,
            #[cfg(feature = "audit")]
            capacity,
        }
    }

    /// Audit: free + in-use processors must always equal the capacity.
    #[cfg(feature = "audit")]
    fn check_proc_conservation(&self) {
        let used: u32 = self.running.iter().map(|r| r.procs).sum();
        if self.free + used != self.capacity {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[gridsim.proc_conservation]: {} free + {} in \
                 use != {} capacity",
                self.free, used, self.capacity
            );
        }
    }

    /// Enqueue a job that becomes eligible at `ready` hours.
    pub fn submit(&mut self, job: Job, ready: f64) {
        self.queue.push_back(Queued { job, ready });
    }

    /// Mark the site down until `until`: no new starts before then. What
    /// happens to in-flight work is the engine's
    /// [`crate::resilience::OutagePolicy`] decision — `Drain` leaves the
    /// running set alone (jobs finish on schedule), `Kill` additionally
    /// calls [`SiteScheduler::kill_running`] /
    /// [`SiteScheduler::evict_queued`] to terminate it.
    pub fn set_down_until(&mut self, until: f64) {
        self.down_until = Some(match self.down_until {
            Some(cur) => cur.max(until),
            None => until,
        });
    }

    /// Terminate every running job (outage with `Kill` semantics).
    /// Returns `(job_id, procs)` for each killed job; all processors are
    /// released.
    pub fn kill_running(&mut self) -> Vec<(u32, u32)> {
        let killed: Vec<(u32, u32)> = self.running.iter().map(|r| (r.job_id, r.procs)).collect();
        for (_, procs) in &killed {
            self.free += procs;
        }
        self.running.clear();
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        killed
    }

    /// Drop every queued (not yet started) job, returning them — an
    /// outage with `Kill` semantics loses queued submissions too (the
    /// middleware that held them is down).
    pub fn evict_queued(&mut self) -> Vec<Job> {
        self.queue.drain(..).map(|q| q.job).collect()
    }

    /// Terminate one running job before its scheduled finish (node crash
    /// or connection failure), releasing its processors.
    ///
    /// # Panics
    /// Panics if the job is not running here.
    pub fn preempt(&mut self, job_id: u32) -> u32 {
        let idx = self
            .running
            .iter()
            .position(|r| r.job_id == job_id)
            .expect("preempting a job that is not running");
        let r = self.running.swap_remove(idx);
        self.free += r.procs;
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        r.procs
    }

    /// Try to start queued jobs at time `now`. FCFS with backfill: the
    /// head starts first when it fits; jobs behind a blocked head may
    /// start if they fit (aggressive backfill). Returns
    /// `(job, finish_time)` for each started job, given per-job runtimes
    /// from `runtime(job)`.
    pub fn try_start(&mut self, now: f64, mut runtime: impl FnMut(&Job) -> f64) -> Vec<(Job, f64)> {
        if let Some(until) = self.down_until {
            if now < until {
                return Vec::new();
            }
        }
        let mut started = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let eligible = self.queue[i].ready <= now;
            let fits = self.queue[i].job.procs <= self.free;
            if eligible && fits {
                let q = self.queue.remove(i).expect("index in range");
                self.free -= q.job.procs;
                let finish = now + runtime(&q.job);
                self.running.push(Running {
                    job_id: q.job.id,
                    procs: q.job.procs,
                    finish,
                });
                started.push((q.job, finish));
                // restart scan: freeing order may let earlier entries in
                i = 0;
            } else {
                i += 1;
            }
        }
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        started
    }

    /// Release the processors of a finished job.
    ///
    /// # Panics
    /// Panics if the job is not running here.
    pub fn finish(&mut self, job_id: u32) {
        let idx = self
            .running
            .iter()
            .position(|r| r.job_id == job_id)
            .expect("finishing a job that is not running");
        let r = self.running.swap_remove(idx);
        self.free += r.procs;
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
    }

    /// Next running-job finish time, if any.
    pub fn next_finish(&self) -> Option<(u32, f64)> {
        self.running
            .iter()
            .min_by(|a, b| a.finish.total_cmp(&b.finish))
            .map(|r| (r.job_id, r.finish))
    }

    /// Earliest ready time among queued jobs, if any.
    pub fn next_ready(&self) -> Option<f64> {
        self.queue.iter().map(|q| q.ready).min_by(f64::total_cmp)
    }

    /// Free processors.
    pub fn free_procs(&self) -> u32 {
        self.free
    }

    /// Queued job count.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Running job count.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// True when nothing is queued or running.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, procs: u32, hours: f64) -> Job {
        Job::new(id, format!("j{id}"), procs, hours)
    }

    #[test]
    fn fcfs_order_respected_when_fitting() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 50, 1.0), 0.0);
        s.submit(job(2, 50, 1.0), 0.0);
        s.submit(job(3, 50, 1.0), 0.0);
        let started = s.try_start(0.0, |j| j.wall_hours);
        let ids: Vec<u32> = started.iter().map(|(j, _)| j.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(s.free_procs(), 0);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn backfill_skips_blocked_head() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 90, 10.0), 0.0);
        s.submit(job(2, 90, 1.0), 0.0); // can't fit beside job 1
        s.submit(job(3, 10, 1.0), 0.0); // backfills
        let started = s.try_start(0.0, |j| j.wall_hours);
        let ids: Vec<u32> = started.iter().map(|(j, _)| j.id).collect();
        assert_eq!(ids, vec![1, 3], "job 3 backfills around blocked job 2");
    }

    #[test]
    fn not_ready_jobs_wait() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 10, 1.0), 5.0);
        assert!(s.try_start(0.0, |j| j.wall_hours).is_empty());
        assert_eq!(s.next_ready(), Some(5.0));
        assert_eq!(s.try_start(5.0, |j| j.wall_hours).len(), 1);
    }

    #[test]
    fn finish_releases_processors() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 100, 2.0), 0.0);
        s.submit(job(2, 100, 1.0), 0.0);
        s.try_start(0.0, |j| j.wall_hours);
        assert_eq!(s.free_procs(), 0);
        let (id, t) = s.next_finish().unwrap();
        assert_eq!((id, t), (1, 2.0));
        s.finish(1);
        assert_eq!(s.free_procs(), 100);
        let started = s.try_start(2.0, |j| j.wall_hours);
        assert_eq!(started[0].0.id, 2);
        assert_eq!(started[0].1, 3.0);
    }

    #[test]
    fn downtime_blocks_starts() {
        let mut s = SiteScheduler::new(100);
        s.set_down_until(10.0);
        s.submit(job(1, 10, 1.0), 0.0);
        assert!(s.try_start(5.0, |j| j.wall_hours).is_empty());
        assert_eq!(s.try_start(10.0, |j| j.wall_hours).len(), 1);
    }

    #[test]
    fn overlapping_outages_extend() {
        let mut s = SiteScheduler::new(10);
        s.set_down_until(5.0);
        s.set_down_until(3.0); // shorter; must not shrink
        s.submit(job(1, 1, 1.0), 0.0);
        assert!(s.try_start(4.0, |j| j.wall_hours).is_empty());
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_job_panics() {
        let mut s = SiteScheduler::new(10);
        s.finish(99);
    }

    #[test]
    fn kill_running_releases_everything() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 40, 5.0), 0.0);
        s.submit(job(2, 40, 5.0), 0.0);
        s.try_start(0.0, |j| j.wall_hours);
        assert_eq!(s.free_procs(), 20);
        let mut killed = s.kill_running();
        killed.sort_unstable();
        assert_eq!(killed, vec![(1, 40), (2, 40)]);
        assert_eq!(s.free_procs(), 100);
        assert_eq!(s.running(), 0);
    }

    #[test]
    fn evict_queued_drains_the_queue() {
        let mut s = SiteScheduler::new(10);
        s.submit(job(1, 5, 1.0), 0.0);
        s.submit(job(2, 5, 1.0), 3.0);
        let evicted = s.evict_queued();
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].id, 1);
        assert_eq!(s.queued(), 0);
        assert!(s.idle());
    }

    #[test]
    fn preempt_frees_one_job_early() {
        let mut s = SiteScheduler::new(100);
        s.submit(job(1, 60, 10.0), 0.0);
        s.submit(job(2, 40, 10.0), 0.0);
        s.try_start(0.0, |j| j.wall_hours);
        assert_eq!(s.preempt(1), 60);
        assert_eq!(s.free_procs(), 60);
        assert_eq!(s.running(), 1);
        s.finish(2);
        assert!(s.idle());
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn preempting_unknown_job_panics() {
        let mut s = SiteScheduler::new(10);
        s.preempt(7);
    }

    #[test]
    fn idle_tracking() {
        let mut s = SiteScheduler::new(10);
        assert!(s.idle());
        s.submit(job(1, 1, 1.0), 0.0);
        assert!(!s.idle());
        s.try_start(0.0, |j| j.wall_hours);
        assert_eq!(s.running(), 1);
        s.finish(1);
        assert!(s.idle());
    }
}
