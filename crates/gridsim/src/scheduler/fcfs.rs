//! Per-site FCFS batch queue with aggressive backfill — the behaviour of
//! the 2005-era PBS/LoadLeveler queues the paper's jobs sat in.
//!
//! The queue and running set are heap-backed so every operation on the
//! DES hot path is O(log n): finishing or preempting a job resolves
//! through a `job_id → slot` index, the next finish time comes off a
//! lazy min-heap, and queued entries are split into an *eligible* set
//! (ready time passed, scanned in submission order) and a *pending* set
//! (promoted by a ready-time heap). Free and in-use processor counts are
//! maintained incrementally; the `audit` feature cross-checks them
//! against a full recount.
//!
//! Semantics are bit-identical to the original full-scan implementation.
//! The start order inside one `try_start` call relies on the same
//! argument the old restart-at-zero scan did: free processors only
//! *decrease* within a call, so an entry skipped once (not ready, or too
//! wide for the current free count) can never become startable later in
//! the same call — a single forward pass in submission order starts
//! exactly the same jobs in exactly the same order.

use crate::event::SimTime;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

/// A queued entry: dense job index plus width. The eligibility time
/// (submission + stochastic background-queue delay) lives in the
/// promotion/ready heap keys, not here.
#[derive(Debug, Clone, Copy)]
struct Queued {
    job_id: u32,
    procs: u32,
}

/// A running entry. `start_seq` versions the slot so stale finish-heap
/// entries for a re-started job id are recognizable; the finish time
/// itself lives in the heap key.
#[derive(Debug, Clone, Copy)]
struct Running {
    job_id: u32,
    procs: u32,
    start_seq: u64,
}

/// FCFS + backfill scheduler state for one site. Jobs are identified by
/// a caller-chosen dense `u32` id (the resilience engine passes the
/// campaign job index).
#[derive(Debug, Clone)]
pub struct SiteScheduler {
    #[cfg_attr(not(feature = "audit"), allow(dead_code))]
    capacity: u32,
    free: u32,
    /// Incrementally maintained processors in use; `free + used ==
    /// capacity` always (audited under the `audit` feature).
    used: u32,
    /// Submission sequence counter — queue order is ascending seq, the
    /// same FIFO tie-break the event queue uses.
    seq: u64,
    /// Queued entries whose ready time has passed, in submission order.
    eligible: BTreeMap<u64, Queued>,
    /// Queued entries still inside their background-queue delay.
    pending: BTreeMap<u64, Queued>,
    /// `(ready, seq)` promotion heap over `pending`; every entry is live
    /// while its seq is in `pending` (eviction clears both).
    promote: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// `(ready, seq)` over all queued entries, lazily pruned — serves
    /// `next_ready` without scanning.
    ready_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Multiset of widths among eligible entries: the min key gives an
    /// O(log n) "nothing fits" early exit for `try_start`.
    eligible_procs: BTreeMap<u32, u32>,
    /// Running jobs in legacy Vec order (push + swap_remove), so
    /// `kill_running` returns bit-identical ordering.
    run_order: Vec<Running>,
    /// `job_id → run_order slot`.
    run_index: BTreeMap<u32, usize>,
    /// `(finish, start_seq, job_id)` lazy min-heap over running jobs.
    finish_heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    start_seq: u64,
    /// Site unavailable until this time (outage), if any.
    down_until: Option<f64>,
    /// High-water mark of the queued-entry count.
    peak_queued: usize,
}

impl SiteScheduler {
    /// New idle scheduler for `capacity` processors.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0);
        SiteScheduler {
            capacity,
            free: capacity,
            used: 0,
            seq: 0,
            eligible: BTreeMap::new(),
            pending: BTreeMap::new(),
            promote: BinaryHeap::new(),
            ready_heap: BinaryHeap::new(),
            eligible_procs: BTreeMap::new(),
            run_order: Vec::new(),
            run_index: BTreeMap::new(),
            finish_heap: BinaryHeap::new(),
            start_seq: 0,
            down_until: None,
            peak_queued: 0,
        }
    }

    /// Audit: the incremental counters must match a full recount, and
    /// free + in-use processors must equal the capacity.
    #[cfg(feature = "audit")]
    fn check_proc_conservation(&self) {
        let recount: u32 = self.run_order.iter().map(|r| r.procs).sum();
        if recount != self.used || self.free + self.used != self.capacity {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[gridsim.proc_conservation]: {} free + {} in \
                 use != {} capacity (recount {})",
                self.free, self.used, self.capacity, recount
            );
        }
    }

    /// Enqueue job `job_id` needing `procs` processors, eligible to start
    /// at `ready` hours.
    pub fn submit(&mut self, job_id: u32, procs: u32, ready: f64) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Queued { job_id, procs };
        let key = Reverse((SimTime::from_hours(ready), seq));
        self.pending.insert(seq, entry);
        self.promote.push(key);
        self.ready_heap.push(key);
        self.peak_queued = self.peak_queued.max(self.queued());
    }

    /// Mark the site down until `until`: no new starts before then. What
    /// happens to in-flight work is the engine's
    /// [`crate::resilience::OutagePolicy`] decision — `Drain` leaves the
    /// running set alone (jobs finish on schedule), `Kill` additionally
    /// calls [`SiteScheduler::kill_running`] /
    /// [`SiteScheduler::evict_queued`] to terminate it.
    pub fn set_down_until(&mut self, until: f64) {
        self.down_until = Some(match self.down_until {
            Some(cur) => cur.max(until),
            None => until,
        });
    }

    /// Terminate every running job (outage with `Kill` semantics).
    /// Returns `(job_id, procs)` for each killed job, in running-set
    /// order; all processors are released.
    pub fn kill_running(&mut self) -> Vec<(u32, u32)> {
        let killed: Vec<(u32, u32)> = self.run_order.iter().map(|r| (r.job_id, r.procs)).collect();
        for (_, procs) in &killed {
            self.free += procs;
            self.used -= procs;
        }
        self.run_order.clear();
        self.run_index.clear();
        self.finish_heap.clear();
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        killed
    }

    /// Drop every queued (not yet started) job, returning ids in
    /// submission order — an outage with `Kill` semantics loses queued
    /// submissions too (the middleware that held them is down).
    pub fn evict_queued(&mut self) -> Vec<u32> {
        let mut evicted: Vec<(u64, u32)> = self
            .eligible
            .iter()
            .chain(self.pending.iter())
            .map(|(&seq, q)| (seq, q.job_id))
            .collect();
        evicted.sort_unstable_by_key(|&(seq, _)| seq);
        self.eligible.clear();
        self.pending.clear();
        self.promote.clear();
        self.ready_heap.clear();
        self.eligible_procs.clear();
        evicted.into_iter().map(|(_, id)| id).collect()
    }

    /// Terminate one running job before its scheduled finish (node crash
    /// or connection failure), releasing its processors.
    ///
    /// # Panics
    /// Panics if the job is not running here.
    pub fn preempt(&mut self, job_id: u32) -> u32 {
        self.remove_running(job_id, "preempting a job that is not running")
    }

    /// Release the processors of a finished job.
    ///
    /// # Panics
    /// Panics if the job is not running here.
    pub fn finish(&mut self, job_id: u32) {
        self.remove_running(job_id, "finishing a job that is not running");
    }

    /// Swap-remove `job_id` from the running set (preserving the legacy
    /// Vec semantics kill-order depends on) and release its processors.
    fn remove_running(&mut self, job_id: u32, not_running_msg: &str) -> u32 {
        let idx = self.run_index.remove(&job_id).expect(not_running_msg);
        let r = self.run_order.swap_remove(idx);
        if let Some(moved) = self.run_order.get(idx) {
            self.run_index.insert(moved.job_id, idx);
        }
        self.free += r.procs;
        self.used -= r.procs;
        // The finish_heap entry goes stale; next_finish prunes it lazily.
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
        r.procs
    }

    /// Try to start queued jobs at time `now`. FCFS with backfill: the
    /// head starts first when it fits; jobs behind a blocked head may
    /// start if they fit (aggressive backfill). Pushes
    /// `(job_id, finish_time)` for each started job onto `out` (cleared
    /// first), given per-job runtimes from `runtime(job_id)` — the out
    /// parameter lets the engine reuse one scratch buffer for the whole
    /// campaign.
    pub fn try_start(
        &mut self,
        now: f64,
        mut runtime: impl FnMut(u32) -> f64,
        out: &mut Vec<(u32, f64)>,
    ) {
        out.clear();
        if let Some(until) = self.down_until {
            if now < until {
                return;
            }
        }
        // Promote entries whose background-queue delay has elapsed.
        while let Some(&Reverse((ready, seq))) = self.promote.peek() {
            if ready.hours() > now {
                break;
            }
            self.promote.pop();
            if let Some(q) = self.pending.remove(&seq) {
                *self.eligible_procs.entry(q.procs).or_insert(0) += 1;
                self.eligible.insert(seq, q);
            }
        }
        // Single forward pass in submission order (see module docs for
        // why this matches the legacy restart-at-zero scan bit-for-bit).
        let mut cursor: u64 = 0;
        loop {
            if self.free == 0 {
                break;
            }
            match self.eligible_procs.keys().next() {
                Some(&narrowest) if narrowest <= self.free => {}
                _ => break,
            }
            let hit = self
                .eligible
                .range(cursor..)
                .find(|(_, q)| q.procs <= self.free)
                .map(|(&seq, &q)| (seq, q));
            let Some((seq, q)) = hit else { break };
            cursor = seq + 1;
            self.eligible.remove(&seq);
            match self.eligible_procs.get_mut(&q.procs) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.eligible_procs.remove(&q.procs);
                }
            }
            self.free -= q.procs;
            self.used += q.procs;
            let finish = now + runtime(q.job_id);
            let start_seq = self.start_seq;
            self.start_seq += 1;
            self.run_index.insert(q.job_id, self.run_order.len());
            self.run_order.push(Running {
                job_id: q.job_id,
                procs: q.procs,
                start_seq,
            });
            self.finish_heap
                .push(Reverse((SimTime::from_hours(finish), start_seq, q.job_id)));
            out.push((q.job_id, finish));
        }
        #[cfg(feature = "audit")]
        self.check_proc_conservation();
    }

    /// Next running-job finish time, if any (lazily prunes entries of
    /// finished/preempted/killed jobs off the heap).
    pub fn next_finish(&mut self) -> Option<(u32, f64)> {
        while let Some(&Reverse((t, start_seq, job_id))) = self.finish_heap.peek() {
            let live = self
                .run_index
                .get(&job_id)
                .is_some_and(|&i| self.run_order[i].start_seq == start_seq);
            if live {
                return Some((job_id, t.hours()));
            }
            self.finish_heap.pop();
        }
        None
    }

    /// Earliest ready time among queued jobs, if any.
    pub fn next_ready(&mut self) -> Option<f64> {
        while let Some(&Reverse((t, seq))) = self.ready_heap.peek() {
            if self.eligible.contains_key(&seq) || self.pending.contains_key(&seq) {
                return Some(t.hours());
            }
            self.ready_heap.pop();
        }
        None
    }

    /// Free processors.
    pub fn free_procs(&self) -> u32 {
        self.free
    }

    /// Queued job count.
    pub fn queued(&self) -> usize {
        self.eligible.len() + self.pending.len()
    }

    /// Running job count.
    pub fn running(&self) -> usize {
        self.run_order.len()
    }

    /// True when nothing is queued or running.
    pub fn idle(&self) -> bool {
        self.eligible.is_empty() && self.pending.is_empty() && self.run_order.is_empty()
    }

    /// High-water mark of the queued-entry count over the scheduler's
    /// lifetime.
    pub fn peak_queued(&self) -> usize {
        self.peak_queued
    }

    /// Capture the scheduler's full state for an engine checkpoint.
    /// Heap contents come out sorted by key (their pop order) so equal
    /// schedulers produce byte-equal images regardless of internal heap
    /// layout; `run_order` is preserved verbatim because
    /// [`SiteScheduler::kill_running`] ordering depends on it.
    pub(crate) fn image(&self) -> SchedulerImage {
        let queued_list = |m: &BTreeMap<u64, Queued>| -> Vec<(u64, u32, u32)> {
            m.iter().map(|(&s, q)| (s, q.job_id, q.procs)).collect()
        };
        let heap_keys = |h: &BinaryHeap<Reverse<(SimTime, u64)>>| -> Vec<(f64, u64)> {
            let mut v: Vec<(f64, u64)> = h.iter().map(|&Reverse((t, s))| (t.hours(), s)).collect();
            v.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            v
        };
        let mut finish: Vec<(f64, u64, u32)> = self
            .finish_heap
            .iter()
            .map(|&Reverse((t, s, j))| (t.hours(), s, j))
            .collect();
        finish.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        SchedulerImage {
            capacity: self.capacity,
            free: self.free,
            used: self.used,
            seq: self.seq,
            eligible: queued_list(&self.eligible),
            pending: queued_list(&self.pending),
            promote: heap_keys(&self.promote),
            ready: heap_keys(&self.ready_heap),
            run_order: self
                .run_order
                .iter()
                .map(|r| (r.job_id, r.procs, r.start_seq))
                .collect(),
            finish,
            start_seq: self.start_seq,
            down_until: self.down_until,
            peak_queued: self.peak_queued,
        }
    }

    /// Rebuild a scheduler from an image. The derived indices
    /// (`eligible_procs` width multiset, `run_index`) are recomputed;
    /// everything observable — start order, kill order, next finish/ready,
    /// free-proc counts — is bit-identical to the imaged scheduler.
    pub(crate) fn from_image(img: &SchedulerImage) -> SiteScheduler {
        let queued_map = |list: &[(u64, u32, u32)]| -> BTreeMap<u64, Queued> {
            list.iter()
                .map(|&(seq, job_id, procs)| (seq, Queued { job_id, procs }))
                .collect()
        };
        let eligible = queued_map(&img.eligible);
        let mut eligible_procs: BTreeMap<u32, u32> = BTreeMap::new();
        for q in eligible.values() {
            *eligible_procs.entry(q.procs).or_insert(0) += 1;
        }
        let run_order: Vec<Running> = img
            .run_order
            .iter()
            .map(|&(job_id, procs, start_seq)| Running {
                job_id,
                procs,
                start_seq,
            })
            .collect();
        let run_index = run_order
            .iter()
            .enumerate()
            .map(|(i, r)| (r.job_id, i))
            .collect();
        SiteScheduler {
            capacity: img.capacity,
            free: img.free,
            used: img.used,
            seq: img.seq,
            eligible,
            pending: queued_map(&img.pending),
            promote: img
                .promote
                .iter()
                .map(|&(t, s)| Reverse((SimTime::from_hours(t), s)))
                .collect(),
            ready_heap: img
                .ready
                .iter()
                .map(|&(t, s)| Reverse((SimTime::from_hours(t), s)))
                .collect(),
            eligible_procs,
            run_order,
            run_index,
            finish_heap: img
                .finish
                .iter()
                .map(|&(t, s, j)| Reverse((SimTime::from_hours(t), s, j)))
                .collect(),
            start_seq: img.start_seq,
            down_until: img.down_until,
            peak_queued: img.peak_queued,
        }
    }
}

/// Serializable state of one [`SiteScheduler`] (see
/// [`SiteScheduler::image`]). Plain tuples only, so the durability codec
/// can write it without reaching into scheduler internals.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SchedulerImage {
    /// Total processors.
    pub(crate) capacity: u32,
    /// Free processors.
    pub(crate) free: u32,
    /// Processors in use.
    pub(crate) used: u32,
    /// Next submission sequence number.
    pub(crate) seq: u64,
    /// Eligible queue: `(seq, job_id, procs)` ascending by seq.
    pub(crate) eligible: Vec<(u64, u32, u32)>,
    /// Pending queue: `(seq, job_id, procs)` ascending by seq.
    pub(crate) pending: Vec<(u64, u32, u32)>,
    /// Promotion-heap keys `(ready, seq)` in pop order.
    pub(crate) promote: Vec<(f64, u64)>,
    /// Ready-heap keys `(ready, seq)` in pop order (stale entries kept —
    /// lazy pruning is part of the observable peek behaviour).
    pub(crate) ready: Vec<(f64, u64)>,
    /// Running set `(job_id, procs, start_seq)` in exact Vec order.
    pub(crate) run_order: Vec<(u32, u32, u64)>,
    /// Finish-heap keys `(finish, start_seq, job_id)` in pop order.
    pub(crate) finish: Vec<(f64, u64, u32)>,
    /// Next start sequence number.
    pub(crate) start_seq: u64,
    /// Outage end, if the site is down.
    pub(crate) down_until: Option<f64>,
    /// Lifetime queued-count high-water mark.
    pub(crate) peak_queued: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(s: &mut SiteScheduler, now: f64, hours: impl Fn(u32) -> f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        s.try_start(now, hours, &mut out);
        out
    }

    #[test]
    fn fcfs_order_respected_when_fitting() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 50, 0.0);
        s.submit(2, 50, 0.0);
        s.submit(3, 50, 0.0);
        let started = start(&mut s, 0.0, |_| 1.0);
        let ids: Vec<u32> = started.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(s.free_procs(), 0);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn backfill_skips_blocked_head() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 90, 0.0);
        s.submit(2, 90, 0.0); // can't fit beside job 1
        s.submit(3, 10, 0.0); // backfills
        let started = start(&mut s, 0.0, |_| 1.0);
        let ids: Vec<u32> = started.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3], "job 3 backfills around blocked job 2");
    }

    #[test]
    fn not_ready_jobs_wait() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 10, 5.0);
        assert!(start(&mut s, 0.0, |_| 1.0).is_empty());
        assert_eq!(s.next_ready(), Some(5.0));
        assert_eq!(start(&mut s, 5.0, |_| 1.0).len(), 1);
    }

    #[test]
    fn finish_releases_processors() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 100, 0.0);
        s.submit(2, 100, 0.0);
        start(&mut s, 0.0, |id| if id == 1 { 2.0 } else { 1.0 });
        assert_eq!(s.free_procs(), 0);
        let (id, t) = s.next_finish().unwrap();
        assert_eq!((id, t), (1, 2.0));
        s.finish(1);
        assert_eq!(s.free_procs(), 100);
        let started = start(&mut s, 2.0, |_| 1.0);
        assert_eq!(started[0].0, 2);
        assert_eq!(started[0].1, 3.0);
    }

    #[test]
    fn downtime_blocks_starts() {
        let mut s = SiteScheduler::new(100);
        s.set_down_until(10.0);
        s.submit(1, 10, 0.0);
        assert!(start(&mut s, 5.0, |_| 1.0).is_empty());
        assert_eq!(start(&mut s, 10.0, |_| 1.0).len(), 1);
    }

    #[test]
    fn overlapping_outages_extend() {
        let mut s = SiteScheduler::new(10);
        s.set_down_until(5.0);
        s.set_down_until(3.0); // shorter; must not shrink
        s.submit(1, 1, 0.0);
        assert!(start(&mut s, 4.0, |_| 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_job_panics() {
        let mut s = SiteScheduler::new(10);
        s.finish(99);
    }

    #[test]
    fn kill_running_releases_everything() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 40, 0.0);
        s.submit(2, 40, 0.0);
        start(&mut s, 0.0, |_| 5.0);
        assert_eq!(s.free_procs(), 20);
        let mut killed = s.kill_running();
        killed.sort_unstable();
        assert_eq!(killed, vec![(1, 40), (2, 40)]);
        assert_eq!(s.free_procs(), 100);
        assert_eq!(s.running(), 0);
        assert_eq!(s.next_finish(), None, "kill must drop finish entries");
    }

    #[test]
    fn evict_queued_drains_the_queue() {
        let mut s = SiteScheduler::new(10);
        s.submit(1, 5, 0.0);
        s.submit(2, 5, 3.0);
        let evicted = s.evict_queued();
        assert_eq!(evicted, vec![1, 2], "eviction preserves submission order");
        assert_eq!(s.queued(), 0);
        assert!(s.idle());
        assert_eq!(s.next_ready(), None);
    }

    #[test]
    fn preempt_frees_one_job_early() {
        let mut s = SiteScheduler::new(100);
        s.submit(1, 60, 0.0);
        s.submit(2, 40, 0.0);
        start(&mut s, 0.0, |_| 10.0);
        assert_eq!(s.preempt(1), 60);
        assert_eq!(s.free_procs(), 60);
        assert_eq!(s.running(), 1);
        s.finish(2);
        assert!(s.idle());
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn preempting_unknown_job_panics() {
        let mut s = SiteScheduler::new(10);
        s.preempt(7);
    }

    #[test]
    fn idle_tracking() {
        let mut s = SiteScheduler::new(10);
        assert!(s.idle());
        s.submit(1, 1, 0.0);
        assert!(!s.idle());
        start(&mut s, 0.0, |_| 1.0);
        assert_eq!(s.running(), 1);
        s.finish(1);
        assert!(s.idle());
    }

    #[test]
    fn stale_finish_entries_are_pruned() {
        // The same job id re-runs after a preempt: the old heap entry
        // must not shadow the new finish time.
        let mut s = SiteScheduler::new(10);
        s.submit(7, 10, 0.0);
        start(&mut s, 0.0, |_| 4.0);
        assert_eq!(s.next_finish(), Some((7, 4.0)));
        s.preempt(7);
        s.submit(7, 10, 0.0);
        start(&mut s, 1.0, |_| 9.0);
        assert_eq!(s.next_finish(), Some((7, 10.0)));
    }

    #[test]
    fn peak_queued_is_a_high_water_mark() {
        let mut s = SiteScheduler::new(100);
        for id in 0..5 {
            s.submit(id, 200, 0.0); // too wide: stays queued
        }
        start(&mut s, 0.0, |_| 1.0);
        assert_eq!(s.queued(), 5);
        s.evict_queued();
        assert_eq!(s.peak_queued(), 5);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn image_round_trip_is_observably_identical() {
        // Build a scheduler mid-flight: running jobs (one preempted, so a
        // stale finish-heap entry exists), eligible + pending queued
        // entries, an outage window, and history in every counter.
        let mut s = SiteScheduler::new(100);
        s.submit(1, 40, 0.0);
        s.submit(2, 30, 0.0);
        s.submit(3, 50, 2.0); // pending until t=2
        s.submit(4, 10, 0.0);
        start(&mut s, 0.0, |id| 5.0 + f64::from(id));
        s.preempt(2); // leaves a stale (2, …) finish entry behind
        s.submit(2, 30, 1.0);
        s.set_down_until(0.5);

        let img = s.image();
        let mut r = SiteScheduler::from_image(&img);
        assert_eq!(r.image(), img, "image(from_image(img)) == img");
        assert_eq!(r.free_procs(), s.free_procs());
        assert_eq!(r.queued(), s.queued());
        assert_eq!(r.running(), s.running());
        assert_eq!(r.peak_queued(), s.peak_queued());
        assert_eq!(r.next_finish(), s.next_finish());
        assert_eq!(r.next_ready(), s.next_ready());

        // Drive both replicas forward identically: starts, finishes and
        // kill order must match exactly.
        for now in [1.0, 2.0, 4.0] {
            let a = start(&mut s, now, |id| 3.0 + f64::from(id % 2));
            let b = start(&mut r, now, |id| 3.0 + f64::from(id % 2));
            assert_eq!(a, b, "start order diverged at t={now}");
        }
        assert_eq!(s.kill_running(), r.kill_running(), "kill order diverged");
        assert_eq!(s.evict_queued(), r.evict_queued());
    }

    /// Differential pin against the legacy full-scan semantics: a
    /// restart-at-zero scan over a (ready, procs) queue must start the
    /// same jobs in the same order as the heap-backed single pass.
    #[test]
    fn matches_legacy_scan_semantics() {
        use spice_stats::rng::{seed_stream, unit_f64};
        for seed in 0..40u64 {
            let capacity = 64 + (seed_stream(seed, 0) % 192) as u32;
            let mut s = SiteScheduler::new(capacity);
            // Legacy model state: (job_id, procs, ready) in queue order.
            let mut legacy: Vec<(u32, u32, f64)> = Vec::new();
            let mut legacy_free = capacity;
            for id in 0..30u32 {
                let procs =
                    1 + (seed_stream(seed, 100 + u64::from(id)) % u64::from(capacity)) as u32;
                let ready = 4.0 * unit_f64(seed_stream(seed, 200 + u64::from(id)));
                s.submit(id, procs, ready);
                legacy.push((id, procs, ready));
            }
            for step in 0..6 {
                let now = f64::from(step);
                let started = start(&mut s, now, |id| 1.0 + f64::from(id % 3));
                // Legacy restart-at-zero scan.
                let mut expect = Vec::new();
                let mut i = 0;
                while i < legacy.len() {
                    let (id, procs, ready) = legacy[i];
                    if ready <= now && procs <= legacy_free {
                        legacy.remove(i);
                        legacy_free -= procs;
                        expect.push((id, now + 1.0 + f64::from(id % 3)));
                        i = 0;
                    } else {
                        i += 1;
                    }
                }
                assert_eq!(started, expect, "seed {seed} step {step}");
                // Finish everything due by now + 1 in both models.
                while let Some((id, f)) = s.next_finish() {
                    if f > now + 1.0 {
                        break;
                    }
                    let procs = legacy_restore(id, seed);
                    s.finish(id);
                    legacy_free += procs;
                }
            }
        }

        fn legacy_restore(id: u32, seed: u64) -> u32 {
            // procs as sampled at submit time above
            let capacity = 64 + (spice_stats::rng::seed_stream(seed, 0) % 192) as u32;
            1 + (spice_stats::rng::seed_stream(seed, 100 + u64::from(id)) % u64::from(capacity))
                as u32
        }
    }
}
