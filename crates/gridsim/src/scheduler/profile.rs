//! Capacity profiles: piecewise-constant free-processor timelines used
//! for profile-based list scheduling (the planning core of the campaign
//! simulator) and for advance-reservation admission.

/// A piecewise-constant record of committed processors over time.
#[derive(Debug, Clone)]
pub struct CapacityProfile {
    capacity: u32,
    /// (time, delta) pairs: +procs at start, −procs at end; kept sorted.
    deltas: Vec<(f64, i64)>,
}

impl CapacityProfile {
    /// Empty profile for a site with `capacity` processors.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CapacityProfile {
            capacity,
            deltas: Vec::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Commit `procs` processors over `[start, end)`.
    ///
    /// # Panics
    /// Panics when the commitment would exceed capacity anywhere in the
    /// window (callers must check [`CapacityProfile::earliest_start`] or
    /// [`CapacityProfile::fits`] first).
    pub fn commit(&mut self, procs: u32, start: f64, end: f64) {
        assert!(end > start, "empty commitment window");
        assert!(
            self.fits(procs, start, end),
            "over-commitment of {procs} procs in [{start}, {end})"
        );
        self.deltas.push((start, procs as i64));
        self.deltas.push((end, -(procs as i64)));
        self.deltas
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    /// Committed processors at time `t` (commitments are [start, end)).
    pub fn used_at(&self, t: f64) -> u32 {
        let mut used = 0i64;
        for &(time, d) in &self.deltas {
            if time > t {
                break;
            }
            used += d;
        }
        used.max(0) as u32
    }

    /// True when `procs` fit throughout `[start, end)`.
    pub fn fits(&self, procs: u32, start: f64, end: f64) -> bool {
        if procs > self.capacity {
            return false;
        }
        // Check at window start and at every delta point inside it.
        if self.used_at(start) + procs > self.capacity {
            return false;
        }
        for &(time, _) in &self.deltas {
            if time > start && time < end && self.used_at(time) + procs > self.capacity {
                return false;
            }
        }
        true
    }

    /// Earliest start ≥ `not_before` at which `procs` processors are free
    /// for `duration` hours, additionally avoiding each fully-blocking
    /// window in `blocked` (outages). Returns `None` only if `procs`
    /// exceeds capacity.
    pub fn earliest_start(
        &self,
        procs: u32,
        duration: f64,
        not_before: f64,
        blocked: &[(f64, f64)],
    ) -> Option<f64> {
        if procs > self.capacity {
            return None;
        }
        // Candidate starts: not_before, every delta point after it, and
        // every blocked-window end.
        let mut candidates: Vec<f64> = vec![not_before];
        candidates.extend(
            self.deltas
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t > not_before),
        );
        candidates.extend(blocked.iter().map(|&(_, e)| e).filter(|&e| e > not_before));
        candidates.sort_by(f64::total_cmp);
        candidates.dedup();
        for &t in &candidates {
            let end = t + duration;
            let overlaps_block = blocked.iter().any(|&(bs, be)| t < be && end > bs);
            if overlaps_block {
                continue;
            }
            if self.fits(procs, t, end) {
                return Some(t);
            }
        }
        // All candidates failed; after the last delta and block everything
        // is free, so start there.
        let horizon = self
            .deltas
            .iter()
            .map(|&(t, _)| t)
            .chain(blocked.iter().map(|&(_, e)| e))
            .fold(not_before, f64::max);
        Some(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_free() {
        let p = CapacityProfile::new(100);
        assert_eq!(p.used_at(5.0), 0);
        assert!(p.fits(100, 0.0, 10.0));
        assert_eq!(p.earliest_start(50, 2.0, 1.0, &[]), Some(1.0));
    }

    #[test]
    fn commitment_occupies_window() {
        let mut p = CapacityProfile::new(100);
        p.commit(60, 2.0, 5.0);
        assert_eq!(p.used_at(3.0), 60);
        assert_eq!(p.used_at(5.0), 0, "window is half-open");
        assert!(p.fits(40, 2.0, 5.0));
        assert!(!p.fits(41, 2.0, 5.0));
        assert!(p.fits(100, 5.0, 6.0));
    }

    #[test]
    fn earliest_start_waits_for_release() {
        let mut p = CapacityProfile::new(100);
        p.commit(80, 0.0, 4.0);
        // 50 procs for 2h can only start once the 80 release at t=4.
        assert_eq!(p.earliest_start(50, 2.0, 0.0, &[]), Some(4.0));
        // 20 procs fit immediately.
        assert_eq!(p.earliest_start(20, 2.0, 0.0, &[]), Some(0.0));
    }

    #[test]
    fn earliest_start_avoids_outage() {
        let p = CapacityProfile::new(100);
        let blocked = [(1.0, 10.0)];
        // 3h job at t=0 would overlap the outage start.
        assert_eq!(p.earliest_start(10, 3.0, 0.0, &blocked), Some(10.0));
        // 30-minute job fits before the outage.
        assert_eq!(p.earliest_start(10, 0.5, 0.0, &blocked), Some(0.0));
    }

    #[test]
    fn oversized_request_is_none() {
        let p = CapacityProfile::new(64);
        assert_eq!(p.earliest_start(65, 1.0, 0.0, &[]), None);
    }

    #[test]
    #[should_panic(expected = "over-commitment")]
    fn over_commit_panics() {
        let mut p = CapacityProfile::new(10);
        p.commit(8, 0.0, 5.0);
        p.commit(8, 2.0, 3.0);
    }

    #[test]
    fn stacked_commitments() {
        let mut p = CapacityProfile::new(100);
        p.commit(30, 0.0, 10.0);
        p.commit(30, 2.0, 8.0);
        p.commit(30, 4.0, 6.0);
        assert_eq!(p.used_at(5.0), 90);
        assert!(p.fits(10, 4.0, 6.0));
        assert!(!p.fits(11, 4.0, 6.0));
        // Peak usage over [0,3) is 60 at t=2 → 40 procs exactly fill it.
        assert_eq!(p.earliest_start(40, 3.0, 0.0, &[]), Some(0.0));
        // 41 procs only fit once every window with usage ≥ 60 is clear:
        // first candidate with a clean 3 h run is t = 8 ([8,11) uses 30).
        assert_eq!(p.earliest_start(41, 3.0, 0.0, &[]), Some(8.0));
    }
}
