//! Advance reservations and the human-in-the-loop booking model.
//!
//! §V-C-3: "with advanced reservations made by hand, schedulers did not
//! work always and required last minute corrections and tweaking. The
//! current mode of operation is cumbersome, highly prone to error (one of
//! the authors had to exchange about a dozen emails correcting three
//! distinct errors introduced by two different administrators for one
//! reservation request)". TeraGrid's later web interface "removes the
//! need for human intervention at one more level" — modeled as fewer
//! error-prone hand-offs.

use crate::resource::SiteId;
use serde::{Deserialize, Serialize};
use spice_stats::rng::seed_stream;

/// A confirmed advance reservation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Reservation {
    /// Reserved site.
    pub site: SiteId,
    /// Reserved processors.
    pub procs: u32,
    /// Window start (hours).
    pub start: f64,
    /// Window end (hours).
    pub end: f64,
}

impl Reservation {
    /// True when two reservations overlap in time on the same site.
    pub fn overlaps(&self, other: &Reservation) -> bool {
        self.site == other.site && self.start < other.end && other.start < self.end
    }
}

/// Outcome of one reservation-booking workflow.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct BookingOutcome {
    /// Emails exchanged end-to-end.
    pub emails: u32,
    /// Distinct errors introduced by administrators.
    pub errors: u32,
    /// Extra calendar delay caused by corrections (hours).
    pub delay_hours: f64,
    /// Whether the reservation was eventually confirmed correctly.
    pub confirmed: bool,
}

/// The manual booking process: every hand-off between humans can inject
/// an error; each error costs a correction round of emails and delay.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ManualBookingModel {
    /// Administrators in the loop (paper anecdote: 2).
    pub n_admins: u32,
    /// Probability each admin introduces at least one error.
    pub p_error: f64,
    /// Probability an introduced error needs a second correction round.
    pub p_recheck: f64,
    /// Emails for a clean request/confirm exchange.
    pub base_emails: u32,
    /// Emails per correction round.
    pub emails_per_round: u32,
    /// Calendar delay per correction round (hours).
    pub delay_per_round: f64,
    /// Probability the whole booking collapses and must be abandoned.
    pub p_abandon: f64,
}

impl ManualBookingModel {
    /// Calibrated to the paper's anecdote: two admins, about a dozen
    /// emails, three distinct errors for one request.
    pub fn paper_manual() -> Self {
        ManualBookingModel {
            n_admins: 2,
            p_error: 0.75,
            p_recheck: 0.5,
            base_emails: 3,
            emails_per_round: 3,
            delay_per_round: 12.0,
            p_abandon: 0.05,
        }
    }

    /// TeraGrid's web interface (§V-C-5): one human level removed —
    /// errors only from the remaining manual step.
    pub fn web_interface() -> Self {
        ManualBookingModel {
            n_admins: 1,
            p_error: 0.25,
            p_recheck: 0.3,
            base_emails: 1,
            emails_per_round: 2,
            delay_per_round: 4.0,
            p_abandon: 0.01,
        }
    }

    /// Simulate one booking, deterministic under `seed`.
    pub fn simulate(&self, seed: u64) -> BookingOutcome {
        let u = |i: u64| (seed_stream(seed, i) >> 11) as f64 / (1u64 << 53) as f64;
        let mut errors = 0u32;
        let mut rounds = 0u32;
        let mut ctr = 0u64;
        for _admin in 0..self.n_admins {
            if u(ctr) < self.p_error {
                errors += 1;
                rounds += 1;
                ctr += 1;
                // Error may need repeated correction rounds (geometric).
                while u(ctr) < self.p_recheck {
                    rounds += 1;
                    ctr += 1;
                    if rounds > 20 {
                        break;
                    }
                }
                // A re-check can surface a *new* distinct error.
                if u(ctr) < self.p_error * 0.5 {
                    errors += 1;
                }
            }
            ctr += 1;
        }
        let confirmed = u(ctr + 1000) >= self.p_abandon;
        BookingOutcome {
            emails: self.base_emails + rounds * self.emails_per_round,
            errors,
            delay_hours: rounds as f64 * self.delay_per_round,
            confirmed,
        }
    }

    /// Monte-Carlo means over `n` bookings: `(emails, errors, delay_h,
    /// success_rate)`.
    pub fn expected(&self, n: usize, seed: u64) -> (f64, f64, f64, f64) {
        let mut emails = 0.0;
        let mut errors = 0.0;
        let mut delay = 0.0;
        let mut ok = 0.0;
        for i in 0..n {
            let o = self.simulate(seed_stream(seed, i as u64));
            emails += o.emails as f64;
            errors += o.errors as f64;
            delay += o.delay_hours;
            ok += if o.confirmed { 1.0 } else { 0.0 };
        }
        let nf = n as f64;
        (emails / nf, errors / nf, delay / nf, ok / nf)
    }
}

/// §V-C-6's interoperability-decay claim: a co-allocation spanning `n`
/// independently-run grids succeeds only if every per-grid booking
/// succeeds, so success decays exponentially with grid count.
pub fn co_allocation_success_probability(p_single: f64, n_grids: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p_single), "probability out of range");
    p_single.powi(n_grids as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_overlap_logic() {
        let a = Reservation {
            site: 0,
            procs: 64,
            start: 0.0,
            end: 4.0,
        };
        let b = Reservation {
            site: 0,
            procs: 64,
            start: 3.0,
            end: 6.0,
        };
        let c = Reservation {
            site: 0,
            procs: 64,
            start: 4.0,
            end: 6.0,
        };
        let d = Reservation {
            site: 1,
            procs: 64,
            start: 0.0,
            end: 9.0,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching windows do not overlap");
        assert!(!a.overlaps(&d), "different sites never overlap");
    }

    #[test]
    fn manual_booking_matches_paper_anecdote_scale() {
        let m = ManualBookingModel::paper_manual();
        let (emails, errors, delay, success) = m.expected(20_000, 7);
        // "about a dozen emails" for the bad case; mean somewhat lower.
        assert!(
            emails > 5.0 && emails < 15.0,
            "mean emails {emails} out of anecdote range"
        );
        assert!(errors > 0.8 && errors < 3.5, "mean errors {errors}");
        assert!(delay > 6.0, "corrections must cost calendar time: {delay}");
        assert!(success > 0.9);
    }

    #[test]
    fn web_interface_strictly_better() {
        let manual = ManualBookingModel::paper_manual().expected(20_000, 3);
        let web = ManualBookingModel::web_interface().expected(20_000, 3);
        assert!(web.0 < manual.0, "emails {} vs {}", web.0, manual.0);
        assert!(web.1 < manual.1, "errors {} vs {}", web.1, manual.1);
        assert!(web.2 < manual.2, "delay {} vs {}", web.2, manual.2);
        assert!(web.3 > manual.3, "success {} vs {}", web.3, manual.3);
    }

    #[test]
    fn booking_deterministic_under_seed() {
        let m = ManualBookingModel::paper_manual();
        assert_eq!(m.simulate(5), m.simulate(5));
        assert_ne!(m.simulate(5), m.simulate(6));
    }

    #[test]
    fn co_allocation_decays_exponentially() {
        let p1 = co_allocation_success_probability(0.8, 1);
        let p2 = co_allocation_success_probability(0.8, 2);
        let p4 = co_allocation_success_probability(0.8, 4);
        assert!((p1 - 0.8).abs() < 1e-12);
        assert!((p2 - 0.64).abs() < 1e-12);
        assert!((p4 - 0.4096).abs() < 1e-12);
        // Strictly decreasing in grid count.
        assert!(p1 > p2 && p2 > p4);
    }

    #[test]
    fn zero_grids_always_succeed() {
        assert_eq!(co_allocation_success_probability(0.5, 0), 1.0);
    }
}
