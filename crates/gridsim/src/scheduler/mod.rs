//! Batch scheduling: per-site queues, capacity profiles, and advance
//! reservations (manual and semi-automated).

pub mod fcfs;
pub mod profile;
pub mod reservation;

pub use fcfs::SiteScheduler;
pub use profile::CapacityProfile;
pub use reservation::{BookingOutcome, ManualBookingModel, Reservation};
