//! Runtime simulation sanitizer for the grid layer (the `audit` cargo
//! feature; see DESIGN.md §10.2 and §11).
//!
//! Invariant checks installed at the resilience engine's decision points
//! and compiled out of normal builds entirely. Every violation panics
//! with a `spice-audit[layer.invariant]: ...` message naming what broke;
//! `tests/audit_sanitizer.rs` drives each check with corrupted inputs to
//! prove it fires.

use crate::job::JobId;
use crate::resource::SiteId;

/// A job may never be running on two sites at once. Called with the
/// engine's current placement immediately before a start is committed.
pub fn check_single_site(job: JobId, already_running_on: Option<SiteId>, new_site: SiteId) {
    if let Some(prev) = already_running_on {
        // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
        panic!(
            "spice-audit[gridsim.single_site]: job {job} starting on site \
             {new_site} while still running on site {prev}"
        );
    }
}

/// Retries consumed must never exceed the policy bound. Called after
/// every resubmission decision.
pub fn check_retry_bound(job: JobId, retries_used: u32, max_retries: u32) {
    if retries_used > max_retries {
        // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
        panic!(
            "spice-audit[gridsim.retry_bound]: job {job} consumed \
             {retries_used} retries but the policy allows {max_retries}"
        );
    }
}

/// Checkpoint restart must never manufacture or destroy work: the saved
/// progress is finite, non-negative, and strictly less than the work the
/// killed attempt had left (a checkpoint at 100% would mean the job
/// finished, not failed).
pub fn check_restart_progress(job: JobId, saved_hours: f64, remaining_before: f64) {
    if !saved_hours.is_finite() || saved_hours < 0.0 || saved_hours >= remaining_before {
        // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
        panic!(
            "spice-audit[gridsim.restart_progress]: job {job} checkpoint \
             claims {saved_hours} h saved of {remaining_before} h remaining \
             — restarted work would be non-positive"
        );
    }
}
