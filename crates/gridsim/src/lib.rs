//! # spice-gridsim
//!
//! A discrete-event simulator of the federated trans-Atlantic grid the
//! paper ran on (Fig. 5: US TeraGrid — NCSA, SDSC, PSC — plus the UK
//! NGS), including every infrastructure phenomenon §V reports:
//!
//! * [`event`] — a deterministic discrete-event engine (binary heap,
//!   FIFO tie-breaking).
//! * [`resource`] / [`job`] — sites with processor counts and speed
//!   factors; jobs with processor and wall-time demands.
//! * [`scheduler`] — per-site FCFS batch queues with backfill, stochastic
//!   background load, and *advance reservations* including the paper's
//!   manual-booking error model (§V-C-3: "about a dozen emails correcting
//!   three distinct errors introduced by two different administrators").
//! * [`federation`] — grids-of-grids, cross-grid co-scheduling and its
//!   per-grid success decay (§V-C-6).
//! * [`network`] — links with latency/jitter/loss, general-purpose vs
//!   optical-lightpath QoS profiles (§II: UKLight/GLIF), and path
//!   composition.
//! * [`hidden_ip`] — the hidden-IP addressability problem and PSC-style
//!   gateway nodes (qsockets/AGN: TCP-only, shared-gateway bottleneck;
//!   §V-C-1).
//! * [`failure`] — outage injection (including the security-breach
//!   scenario that removed the single usable UK node for weeks, §V-C-4)
//!   and the seeded per-job stochastic failure model (launch failures,
//!   node crashes, gateway connection drops).
//! * [`campaign`] — the production batch phase: map the paper's 72
//!   simulations onto the federation and measure makespan and CPU-hours
//!   (T-batch: < 1 week, ~75,000 CPU-hours).
//! * [`des`] — event-driven (non-clairvoyant) execution of the same
//!   campaign through FCFS queues, for plan-vs-reality ablations.
//! * [`resilience`] — fault-tolerant campaign execution: failure
//!   injection, explicit Drain/Kill outage semantics, checkpoint/restart
//!   and retry-with-failover, with goodput/badput accounting. The engine
//!   is fully indexed (events carry dense indices, heap-backed site
//!   schedulers, allocation-free dispatch) so campaigns of 10⁵–10⁶ jobs
//!   replay in seconds.
//! * [`durability`] — crash-safe checkpoint/restore of the resilient
//!   engine: atomic generation-numbered snapshots of the live DES,
//!   graceful recovery to the newest intact file, and a deterministic
//!   crash-injection harness. A campaign killed at any event boundary
//!   resumes bit-identically.
//! * [`reference`] — the frozen pre-rework seed engine, kept as a
//!   runtime oracle: equivalence tests replay campaigns through both
//!   engines and require bit-identical results.
//! * [`metrics`] — utilization, wait-time and makespan accounting.
//! * [`trace`] — text Gantt charts and job/failure listings of campaign
//!   runs.
//!
//! Everything is deterministic under a seed; stochastic elements (queue
//! waits, jitter, human booking errors, failures) use `spice-stats` seed
//! streams.

#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod campaign;
pub mod des;
pub mod durability;
pub mod event;
pub mod failure;
pub mod federation;
pub mod hidden_ip;
pub mod job;
pub mod metrics;
pub mod network;
pub mod reference;
pub mod resilience;
pub mod resource;
pub mod scheduler;
pub mod trace;

pub use campaign::{Campaign, CampaignResult};
pub use durability::{
    run_resilient_durable, CrashPlan, DurabilityError, DurableConfig, DurableOutcome,
    RecoveryReport,
};
pub use event::{EventQueue, SimTime};
pub use failure::{FailureEvent, FailureKind, FailureModel, Outage, OutageIndex};
pub use federation::{Federation, Grid};
pub use job::{Job, JobId, JobRecord};
pub use resilience::{
    run_resilient, run_resilient_traced, run_resilient_with_dispatch,
    run_resilient_with_dispatch_traced, run_resilient_with_stats, CheckpointPolicy, EngineStats,
    OutagePolicy, ResiliencePolicy, ResilientResult, RetryPolicy,
};
pub use resource::{Site, SiteId};
