//! Fault-tolerant campaign execution: failure injection, checkpoint /
//! restart, and retry-with-failover across the federation.
//!
//! Section V of the paper is a catalogue of real grid failures — launch
//! failures from immature middleware (§V-C-2), a security breach that
//! removed the only coordinated UK node for weeks (§V-C-4), and gateway
//! connection failures for steering-coupled runs (§V-C-1). This module
//! executes a [`Campaign`] through the discrete-event engine under a
//! [`ResiliencePolicy`] combining four knobs:
//!
//! * a seeded per-job [`FailureModel`] (launch failures, mid-run node
//!   crashes, gateway drops for coupled jobs),
//! * explicit [`OutagePolicy`] semantics — `Drain` lets in-flight work
//!   finish, `Kill` terminates it, replacing the old FCFS "assume
//!   checkpoint-protected and resume" shortcut,
//! * a [`CheckpointPolicy`] with periodic checkpoints and per-checkpoint
//!   overhead, so a killed job restarts from its last checkpoint instead
//!   of from scratch,
//! * a [`RetryPolicy`] with bounded retries, exponential backoff, and
//!   site blacklisting + failover migration to another federation site.
//!
//! All progress accounting is in *reference* hours (site-independent):
//! an attempt that ran `e` on-site hours on a site of speed `s` made
//! `e·s` reference hours of gross progress. Goodput is the reference
//! CPU-hours of completed science; badput is everything else the
//! campaign burned (failed attempts, lost segments, checkpoint
//! overhead). Everything is bit-deterministic under the campaign seed.
//!
//! The engine is built for campaigns far beyond the paper's 72 jobs:
//! events carry dense job/site indices (no id→index scans), the per-site
//! schedulers are heap-backed ([`SiteScheduler`]), dispatch reuses one
//! candidate scratch buffer plus a `(procs, coupled) → fitting sites`
//! cache instead of allocating per submit, and outage lookups go through
//! a per-site [`OutageIndex`]. The seed engine's per-submission poke
//! *chains* (re-poke at every finish epoch) all converge onto the same
//! targets on a busy site, so its event count grows as
//! O(jobs × finish-epochs); here the duplicate `(time, site)` pokes are
//! coalesced into pending-arrival blocks drained in the seed's exact
//! schedule order (a virtual sequence counter stands in for the seed's
//! event-queue tie-breaker — see [`Engine::schedule_pokes`]), and a
//! whole block of chain steps whose site state has stopped changing
//! collapses to O(1) bookkeeping. The heap holds one marker per distinct
//! wakeup instant instead of one event per chain hop. The pre-rework
//! engine survives verbatim in [`crate::reference`]; equivalence tests
//! replay campaigns through both and require bit-identical records,
//! failure logs and summaries (the engines differ only in how many
//! merged wakeup events they process), so every shortcut here is
//! behaviour-preserving. See DESIGN.md §13.

use crate::campaign::{Campaign, CampaignResult};
use crate::des::DispatchPolicy;
use crate::durability::codec::{Dec, Enc};
use crate::durability::DurabilityError;
use crate::event::{EventQueue, QueueImage, SimTime};
use crate::failure::{FailureEvent, FailureKind, FailureModel, OutageIndex};
use crate::hidden_ip::steering_connectivity;
use crate::job::{JobId, JobRecord};
use crate::resource::SiteId;
use crate::scheduler::fcfs::{SchedulerImage, SiteScheduler};
use serde::{Deserialize, Serialize};
use spice_stats::rng::{seed_stream, unit_f64};
use spice_telemetry::{Counter, ProbePoint, Telemetry, Track};
use std::collections::{BTreeMap, BTreeSet};

/// Logical-clock stamp for a DES sim-time: milliseconds of simulated
/// time. Millisecond resolution keeps distinct event times distinct
/// (queue waits are fractional hours) while staying integral.
pub(crate) fn sim_ticks(hours: f64) -> u64 {
    (hours.max(0.0) * 3.6e6) as u64
}

/// What happens to a site's in-flight work when an outage begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutagePolicy {
    /// Running jobs finish on schedule; only new starts are blocked (the
    /// optimistic semantics the old FCFS model assumed for every
    /// outage).
    Drain,
    /// Running jobs are killed and queued submissions are lost — a
    /// security breach or hardware failure takes everything down.
    Kill,
}

/// Periodic application-level checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Reference hours of progress between checkpoints (`None` = no
    /// checkpointing: a killed job restarts from scratch).
    pub interval_hours: Option<f64>,
    /// Reference hours each checkpoint write costs (added to runtime).
    pub overhead_hours: f64,
}

impl CheckpointPolicy {
    /// No checkpointing.
    pub fn none() -> CheckpointPolicy {
        CheckpointPolicy {
            interval_hours: None,
            overhead_hours: 0.0,
        }
    }

    /// Checkpoint every `interval_hours` of progress, paying
    /// `overhead_hours` per checkpoint.
    ///
    /// # Panics
    /// Panics on a non-positive interval or negative overhead.
    pub fn periodic(interval_hours: f64, overhead_hours: f64) -> CheckpointPolicy {
        assert!(interval_hours > 0.0, "checkpoint interval must be positive");
        assert!(
            overhead_hours >= 0.0,
            "checkpoint overhead must be non-negative"
        );
        CheckpointPolicy {
            interval_hours: Some(interval_hours),
            overhead_hours,
        }
    }

    /// Checkpoints written during a run with `work` reference hours left
    /// (one per completed interval; none at job end — the final state is
    /// the result itself).
    pub fn checkpoints_during(&self, work: f64) -> u32 {
        match self.interval_hours {
            None => 0,
            Some(i) => {
                if work <= i {
                    0
                } else {
                    (work / i).ceil() as u32 - 1
                }
            }
        }
    }

    /// Gross reference hours to execute `work` remaining hours,
    /// including checkpoint overhead.
    pub fn gross_hours(&self, work: f64) -> f64 {
        work + f64::from(self.checkpoints_during(work)) * self.overhead_hours
    }

    /// Progress preserved when an attempt with `work` reference hours
    /// left is killed after `gross_done` gross reference hours: the last
    /// completed checkpoint. Always in `[0, work)`.
    pub fn saved_progress(&self, gross_done: f64, work: f64) -> f64 {
        match self.interval_hours {
            None => 0.0,
            Some(i) => {
                let per_segment = i + self.overhead_hours;
                let completed = (gross_done / per_segment).floor().max(0.0);
                let cap = f64::from(self.checkpoints_during(work));
                completed.min(cap) * i
            }
        }
    }
}

/// Bounded resubmission with exponential backoff, blacklisting and
/// failover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Resubmissions allowed after the first attempt; a job that fails
    /// with all retries spent is abandoned.
    pub max_retries: u32,
    /// Backoff before the first resubmission (hours).
    pub backoff_base_hours: f64,
    /// Multiplier applied per additional failure.
    pub backoff_factor: f64,
    /// Floor on any resubmission delay (hours) — resubmission is never
    /// instantaneous.
    pub min_resubmit_delay_hours: f64,
    /// Per-job failures at one site before that site is avoided for the
    /// job (0 disables blacklisting). Only effective with `failover`.
    pub blacklist_threshold: u32,
    /// May the job migrate to a different federation site on retry? When
    /// false, every retry goes back to the originally chosen site.
    pub failover: bool,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base_hours: 0.0,
            backoff_factor: 1.0,
            min_resubmit_delay_hours: 0.0,
            blacklist_threshold: 0,
            failover: false,
        }
    }

    /// Resubmission delay after `failures` failures (≥ 1).
    pub fn backoff_hours(&self, failures: u32) -> f64 {
        let exponent = failures.saturating_sub(1).min(20);
        let b = self.backoff_base_hours * self.backoff_factor.powi(exponent as i32);
        b.max(self.min_resubmit_delay_hours)
    }
}

/// The full resilience configuration of a campaign execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// In-flight work semantics when an outage begins.
    pub outage: OutagePolicy,
    /// Checkpoint/restart behaviour.
    pub checkpoint: CheckpointPolicy,
    /// Resubmission behaviour.
    pub retry: RetryPolicy,
    /// Stochastic per-job failure environment.
    pub failures: FailureModel,
}

impl ResiliencePolicy {
    /// Failure-free baseline: no stochastic failures, outages drain.
    /// Reproduces the pre-resilience DES behaviour.
    pub fn none() -> ResiliencePolicy {
        ResiliencePolicy {
            outage: OutagePolicy::Drain,
            checkpoint: CheckpointPolicy::none(),
            retry: RetryPolicy::none(),
            failures: FailureModel::none(),
        }
    }

    /// The 2005 status quo: outages kill work, no checkpoints, and the
    /// campaign manager doggedly resubmits to the same site with no
    /// backoff intelligence.
    pub fn naive() -> ResiliencePolicy {
        ResiliencePolicy {
            outage: OutagePolicy::Kill,
            checkpoint: CheckpointPolicy::none(),
            retry: RetryPolicy {
                max_retries: 1000,
                backoff_base_hours: 0.1,
                backoff_factor: 1.0,
                min_resubmit_delay_hours: 0.1,
                blacklist_threshold: 0,
                failover: false,
            },
            failures: FailureModel::sc05(),
        }
    }

    /// Bounded retries with exponential backoff, blacklisting and
    /// failover migration — but restarts are from scratch.
    pub fn retry_only() -> ResiliencePolicy {
        ResiliencePolicy {
            outage: OutagePolicy::Kill,
            checkpoint: CheckpointPolicy::none(),
            retry: RetryPolicy {
                max_retries: 12,
                backoff_base_hours: 0.25,
                backoff_factor: 2.0,
                min_resubmit_delay_hours: 0.1,
                blacklist_threshold: 2,
                failover: true,
            },
            failures: FailureModel::sc05(),
        }
    }

    /// Everything: periodic checkpoints (hourly, ~36 s overhead each —
    /// MD restart files are cheap to write) on top of
    /// [`ResiliencePolicy::retry_only`]'s retry machinery.
    pub fn checkpoint_failover() -> ResiliencePolicy {
        ResiliencePolicy {
            checkpoint: CheckpointPolicy::periodic(1.0, 0.01),
            ..ResiliencePolicy::retry_only()
        }
    }
}

/// Result of a resilient campaign execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientResult {
    /// The completed-job campaign result (records carry per-job attempt
    /// and lost-CPU accounting).
    pub result: CampaignResult,
    /// Every failed attempt, in event order.
    pub failures: Vec<FailureEvent>,
    /// Jobs that exhausted their retries.
    pub abandoned: Vec<JobId>,
    /// Reference CPU-hours of completed science.
    pub goodput_cpu_hours: f64,
    /// Reference CPU-hours burned on failed attempts, lost segments and
    /// checkpoint overhead (includes partial work of abandoned jobs).
    pub badput_cpu_hours: f64,
    /// Total resubmissions across the campaign.
    pub total_retries: u32,
}

impl ResilientResult {
    /// Fraction of jobs that completed.
    pub fn completion_fraction(&self) -> f64 {
        let total = self.result.records.len() + self.abandoned.len();
        if total == 0 {
            return 1.0;
        }
        self.result.records.len() as f64 / total as f64
    }

    /// Mean retries per job (over all jobs, completed or not).
    pub fn retries_per_job(&self) -> f64 {
        let total = self.result.records.len() + self.abandoned.len();
        if total == 0 {
            return 0.0;
        }
        f64::from(self.total_retries) / total as f64
    }

    /// Badput as a fraction of all CPU-hours consumed.
    pub fn badput_fraction(&self) -> f64 {
        let consumed = self.goodput_cpu_hours + self.badput_cpu_hours;
        if consumed <= 0.0 {
            return 0.0;
        }
        self.badput_cpu_hours / consumed
    }

    /// Makespan relative to a failure-free baseline makespan.
    pub fn makespan_inflation(&self, baseline_hours: f64) -> f64 {
        self.result.makespan_hours / baseline_hours.max(1e-12)
    }
}

/// Hot-path instrumentation of one DES replay, returned by
/// [`run_resilient_with_stats`]: how many events the engine resolved and
/// how deep the event queue / site queues got. Exported as `grid.*`
/// gauges when telemetry is attached; the scale bench derives events/sec
/// from `events_processed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EngineStats {
    /// Events popped off the DES queue over the whole replay.
    pub events_processed: u64,
    /// High-water mark of the pending-event count.
    pub event_queue_peak: usize,
    /// Largest queued-job high-water mark across all site schedulers.
    pub site_queue_peak: usize,
}

/// DES event payload. Dense `u32` indices keep the payload at 16 bytes
/// and make every lookup a direct array access — no id→index scans on
/// the per-event path. `Copy` so the durability layer can image the
/// event queue without draining it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A job (first submission or retry) enters the dispatcher.
    Submit(u32),
    /// Attempt `attempt` of job `ji` completes on site `si`.
    Finish { si: u32, ji: u32, attempt: u32 },
    /// Attempt `attempt` of job `ji` dies mid-run on site `si`.
    Fail {
        si: u32,
        ji: u32,
        attempt: u32,
        kind: FailureKind,
    },
    /// Outage `oi` (index into the campaign's outage list) begins.
    OutageStart(u32),
    /// The site at index `si` recovers: re-attempt starts.
    OutageEnd(u32),
    /// Wakeup *marker*: guarantees the clock reaches a pending poke
    /// instant. The actual chain steps live in `poke_pending` (with
    /// their site indices) and are drained in virtual-sequence order by
    /// the run loop; the marker's own pop is a no-op.
    Poke,
}

#[derive(Debug, Clone, PartialEq)]
struct JobState {
    /// Current attempt, 1-based.
    attempt: u32,
    /// Reference hours of work left (excluding checkpoint overhead).
    remaining: f64,
    /// Reference CPU-hours consumed across all attempts so far.
    consumed_ref_cpu_h: f64,
    /// Amount currently added to the site backlog estimate.
    backlog_contrib: f64,
    /// Failures of this job per site, sparse `(site index, count)` —
    /// most jobs never fail, so a dense per-site vector per job would
    /// dominate memory at campaign scale.
    site_failures: Vec<(u32, u32)>,
    /// Site index + start time of the in-flight attempt, if running.
    running: Option<(usize, f64)>,
    /// Site index of the most recent placement.
    last_site: Option<usize>,
    done: bool,
    abandoned: bool,
}

impl JobState {
    fn failures_at(&self, si: usize) -> u32 {
        self.site_failures
            .iter()
            .find(|&&(s, _)| s == si as u32)
            .map_or(0, |&(_, n)| n)
    }

    fn add_failure(&mut self, si: usize) {
        match self.site_failures.iter_mut().find(|(s, _)| *s == si as u32) {
            Some((_, n)) => *n += 1,
            None => self.site_failures.push((si as u32, 1)),
        }
    }
}

/// Salt for resubmission queue-wait streams (first attempts reuse the
/// original DES stream so a failure-free resilient run is identical to
/// the plain DES).
const RESUBMIT_SALT: u64 = 0x5245_5355_424D_4954;

pub(crate) struct Engine<'a> {
    campaign: &'a Campaign,
    policy: &'a ResiliencePolicy,
    dispatch: DispatchPolicy,
    schedulers: Vec<SiteScheduler>,
    states: Vec<JobState>,
    records: Vec<JobRecord>,
    failures: Vec<FailureEvent>,
    abandoned: Vec<JobId>,
    jobs_per_site: Vec<usize>,
    backlog_cpu_h: Vec<f64>,
    rr_cursor: usize,
    total_retries: u32,
    /// Physical event heap. Payloads carry their virtual sequence stamp
    /// (see [`Self::sched`]) so pending poke arrivals can be interleaved
    /// with them in the seed engine's exact tie-break order.
    q: EventQueue<(u64, Ev)>,
    /// Virtual sequence counter: incremented once per *seed-engine
    /// schedule call* — physical events and suppressed poke arrivals
    /// alike — so `(time, vseq)` order over all logical events is
    /// exactly the seed queue's `(time, seq)` pop order.
    vseq: u64,
    /// `(site id, site index)` sorted by id, for O(log n) outage→site
    /// resolution (ids need not be dense under restricted federations).
    site_by_id: Vec<(SiteId, usize)>,
    /// Per-site outage window index for the dispatcher's status-page
    /// reads.
    outage_index: Vec<OutageIndex>,
    /// Per-site: can a steering-coupled job run here at all?
    coupled_ok: Vec<bool>,
    /// Per-site: is a coupled job's steering connection gateway-routed
    /// (and so exposed to gateway drops)?
    routed_gateway: Vec<bool>,
    /// `(procs, coupled) → fitting site indices`, ascending. Campaigns
    /// draw from a handful of width classes, so this caches the whole
    /// site-fit prefilter.
    fit_cache: BTreeMap<(u32, bool), Vec<u32>>,
    /// Reusable dispatch candidate scratch (blacklist-filtered sites).
    cand_buf: Vec<u32>,
    /// Reusable `(job index, finish)` scratch for scheduler starts.
    started_buf: Vec<(u32, f64)>,
    /// Coalesced poke-chain arrivals awaiting replay:
    /// `(time bits, first virtual seq) → (site index, chain count)`.
    /// Times are finite and non-negative, so the raw f64 bit pattern
    /// orders (and equals) exactly like the value and the map's key
    /// order is the seed's pop order. A block of `count` arrivals covers
    /// virtual stamps `first .. first + count`. See
    /// [`Self::schedule_pokes`].
    poke_pending: BTreeMap<(u64, u64), (u32, u32)>,
    /// Times (f64 bits) that already have a physical `Ev::Poke` marker
    /// in the heap, so each distinct wakeup instant costs one event.
    poke_marked: BTreeSet<u64>,
    /// `(time bits, stamp)` of every physical event currently in the
    /// heap. Lets [`Self::schedule_pokes`] prove the stamp gap between
    /// two same-`(time, site)` blocks is free of physical events, which
    /// is the condition for merging them — and merging is what keeps
    /// the pending map at one block per funnel point instead of one
    /// block per chain (the seed's quadratic chain-hop count would
    /// otherwise sneak back in as map traffic).
    phys_at: BTreeSet<(u64, u64)>,
    events_processed: u64,
    telemetry: Telemetry,
    /// One `("grid.job", id)` track per campaign job, indexed like
    /// `states`; attempt spans and failure/retry/checkpoint instants land
    /// here, stamped with [`sim_ticks`]. Empty when telemetry is
    /// disabled — every access is behind an `is_enabled` check.
    job_tracks: Vec<Track>,
    /// The `("grid.campaign", seed)` track: one span over the whole
    /// replay, ticked by every popped DES event.
    campaign_track: Track,
    des_events: Counter,
    #[cfg(feature = "audit")]
    pending_submits: usize,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        campaign: &'a Campaign,
        policy: &'a ResiliencePolicy,
        dispatch: DispatchPolicy,
        telemetry: &Telemetry,
    ) -> Self {
        let nsites = campaign.federation.sites.len();
        let states = campaign
            .jobs
            .iter()
            .map(|j| JobState {
                attempt: 1,
                remaining: j.wall_hours,
                consumed_ref_cpu_h: 0.0,
                backlog_contrib: 0.0,
                site_failures: Vec::new(),
                running: None,
                last_site: None,
                done: false,
                abandoned: false,
            })
            .collect();
        let mut site_by_id: Vec<(SiteId, usize)> = campaign
            .federation
            .sites
            .iter()
            .enumerate()
            .map(|(si, s)| (s.id, si))
            .collect();
        // Full-tuple sort so duplicate ids (a malformed federation)
        // still resolve to the lowest index, like the linear scan did.
        site_by_id.sort_unstable();
        Engine {
            campaign,
            policy,
            dispatch,
            schedulers: campaign
                .federation
                .sites
                .iter()
                .map(|s| SiteScheduler::new(s.procs))
                .collect(),
            states,
            records: Vec::with_capacity(campaign.jobs.len()),
            failures: Vec::new(),
            abandoned: Vec::new(),
            jobs_per_site: vec![0; nsites],
            backlog_cpu_h: vec![0.0; nsites],
            rr_cursor: 0,
            total_retries: 0,
            q: EventQueue::new(),
            vseq: 0,
            site_by_id,
            outage_index: campaign
                .federation
                .sites
                .iter()
                .map(|s| OutageIndex::build(&campaign.outages, s.id))
                .collect(),
            coupled_ok: campaign
                .federation
                .sites
                .iter()
                .map(|s| steering_connectivity(s).is_ok())
                .collect(),
            routed_gateway: campaign
                .federation
                .sites
                .iter()
                .map(|s| matches!(steering_connectivity(s), Ok(Some(_))))
                .collect(),
            fit_cache: BTreeMap::new(),
            cand_buf: Vec::new(),
            started_buf: Vec::new(),
            poke_pending: BTreeMap::new(),
            poke_marked: BTreeSet::new(),
            phys_at: BTreeSet::new(),
            events_processed: 0,
            telemetry: telemetry.clone(),
            job_tracks: if telemetry.is_enabled() {
                campaign
                    .jobs
                    .iter()
                    .map(|j| telemetry.track("grid.job", u64::from(j.id)))
                    .collect()
            } else {
                Vec::new()
            },
            campaign_track: telemetry.track("grid.campaign", campaign.seed),
            des_events: telemetry.counter("grid.des_events"),
            #[cfg(feature = "audit")]
            pending_submits: 0,
        }
    }

    /// Schedule a physical event, stamping it with the next virtual
    /// sequence number. Every path that the seed engine's `q.schedule`
    /// took must go through here (or [`Self::schedule_pokes`]) exactly
    /// once, so the stamps reproduce the seed's FIFO tie-breaker.
    fn sched(&mut self, t: f64, ev: Ev) {
        self.vseq += 1;
        self.phys_at.insert((t.to_bits(), self.vseq));
        self.q.schedule(SimTime::from_hours(t), (self.vseq, ev));
    }

    fn site_index(&self, id: SiteId) -> Option<usize> {
        let k = self.site_by_id.partition_point(|&(sid, _)| sid < id);
        self.site_by_id
            .get(k)
            .filter(|&&(sid, _)| sid == id)
            .map(|&(_, si)| si)
    }

    /// The single stochastic queue-wait sample for `(job, site, attempt)`
    /// — used both for the dispatcher's estimate and as the applied wait,
    /// so they cannot diverge.
    fn wait_sample(&self, ji: usize, si: usize, attempt: u32) -> f64 {
        let index = (ji as u64) << 8 | si as u64;
        let bits = if attempt == 1 {
            seed_stream(self.campaign.seed, index)
        } else {
            seed_stream(
                self.campaign.seed ^ RESUBMIT_SALT,
                index | u64::from(attempt) << 32,
            )
        };
        let u = unit_f64(bits);
        -self.campaign.federation.sites[si].mean_queue_wait * (1.0 - u).max(1e-12).ln()
    }

    /// Remaining on-site runtime of job `ji` at site `si`, checkpoint
    /// overhead included.
    fn runtime_on(&self, ji: usize, si: usize) -> f64 {
        self.policy
            .checkpoint
            .gross_hours(self.states[ji].remaining)
            / self.campaign.federation.sites[si].speed
    }

    fn handle_submit(&mut self, ji: usize, now: f64) {
        #[cfg(feature = "audit")]
        {
            self.pending_submits -= 1;
        }
        let job = &self.campaign.jobs[ji];
        let sites = &self.campaign.federation.sites;
        let key = (job.procs, job.coupled);
        if !self.fit_cache.contains_key(&key) {
            let fitting: Vec<u32> = (0..sites.len())
                .filter(|&si| sites[si].fits(job.procs) && (!job.coupled || self.coupled_ok[si]))
                .map(|si| si as u32)
                .collect();
            self.fit_cache.insert(key, fitting);
        }
        let fitting = &self.fit_cache[&key];
        assert!(
            !fitting.is_empty(),
            "job {} ({} procs{}) fits nowhere in the federation",
            job.name,
            job.procs,
            if job.coupled {
                ", steering-coupled"
            } else {
                ""
            }
        );

        // Retry placement: without failover the job is pinned to its
        // original site; with failover, blacklisted sites are avoided
        // (unless every option is blacklisted — then retry anywhere).
        // Candidate lists are slices into the fit cache, a pinned-site
        // singleton, or the reusable scratch buffer — never a fresh
        // allocation.
        let st = &self.states[ji];
        let pinned: [u32; 1];
        let candidates: &[u32] = if !self.policy.retry.failover {
            match st.last_site {
                Some(si) => {
                    pinned = [si as u32];
                    &pinned
                }
                None => fitting,
            }
        } else if self.policy.retry.blacklist_threshold > 0 {
            let thr = self.policy.retry.blacklist_threshold;
            self.cand_buf.clear();
            self.cand_buf.extend(
                fitting
                    .iter()
                    .copied()
                    .filter(|&si| st.failures_at(si as usize) < thr),
            );
            if self.cand_buf.is_empty() {
                fitting
            } else {
                &self.cand_buf
            }
        } else {
            fitting
        };

        let attempt = st.attempt;
        let si = match self.dispatch {
            DispatchPolicy::EarliestCompletion => {
                // Myopic: cheapest estimated completion among candidate
                // sites, using current backlog and known outage state.
                let mut best: Option<(usize, f64)> = None;
                for &si in candidates {
                    let si = si as usize;
                    let est = self.wait_sample(ji, si, attempt)
                        + self.backlog_cpu_h[si] / f64::from(sites[si].procs)
                        + self.runtime_on(ji, si)
                        + self.outage_index[si].remaining(now);
                    if best.is_none_or(|(_, b)| est < b) {
                        best = Some((si, est));
                    }
                }
                best.expect("candidates is non-empty").0
            }
            DispatchPolicy::RoundRobin => {
                let si = candidates[self.rr_cursor % candidates.len()];
                self.rr_cursor += 1;
                si as usize
            }
            DispatchPolicy::Random => {
                let index = if attempt == 1 {
                    ji as u64
                } else {
                    ji as u64 | u64::from(attempt) << 32
                };
                let u = seed_stream(self.campaign.seed ^ 0x5EED, index);
                candidates[(u % candidates.len() as u64) as usize] as usize
            }
        };

        let queue_wait = self.wait_sample(ji, si, attempt);
        let contrib = self
            .policy
            .checkpoint
            .gross_hours(self.states[ji].remaining)
            * f64::from(job.procs);
        let st = &mut self.states[ji];
        st.backlog_contrib = contrib;
        st.last_site = Some(si);
        self.backlog_cpu_h[si] += contrib;
        self.schedulers[si].submit(ji as u32, job.procs, now + queue_wait);
        self.schedule_pokes(si, now + queue_wait, 1);
    }

    /// Start every queued job that fits at `si`, sampling launch
    /// failures and pre-drawing each started attempt's fate (crash,
    /// gateway drop, or clean finish).
    fn try_start_site(&mut self, si: usize, now: f64) {
        let campaign = self.campaign;
        let site = &campaign.federation.sites[si];
        let speed = site.speed;
        let policy = self.policy;
        // The scheduler's job ids *are* campaign indices, so the runtime
        // closure and everything below is a direct array access. The
        // started list lives in a scratch buffer reused across the whole
        // campaign (taken out of `self` so the loop can re-borrow).
        let mut started = std::mem::take(&mut self.started_buf);
        {
            let states = &self.states;
            self.schedulers[si].try_start(
                now,
                |jid| {
                    policy
                        .checkpoint
                        .gross_hours(states[jid as usize].remaining)
                        / speed
                },
                &mut started,
            );
        }
        for &(jid, finish) in &started {
            let ji = jid as usize;
            let job = &campaign.jobs[ji];
            #[cfg(feature = "audit")]
            crate::audit::check_single_site(
                job.id,
                self.states[ji]
                    .running
                    .map(|(s, _)| campaign.federation.sites[s].id),
                site.id,
            );
            let attempt = self.states[ji].attempt;
            if policy
                .failures
                .launch_fails(campaign.seed, job.id, attempt, site)
            {
                // The launch itself failed: processors are never held,
                // no compute time is lost.
                self.schedulers[si].preempt(jid);
                self.fail_attempt(ji, si, now, FailureKind::LaunchFailure, 0.0);
                continue;
            }
            self.states[ji].running = Some((si, now));
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].enter_at("grid.attempt", sim_ticks(now));
                self.job_tracks[ji].instant_at(
                    "grid.start",
                    sim_ticks(now),
                    vec![
                        // spice-lint: allow(P002) label built only on the traced path, never the untraced hot loop
                        ("site", site.name.clone()),
                        ("attempt", attempt.to_string()),
                    ],
                );
            }
            let crash = policy
                .failures
                .crash_after(campaign.seed, job.id, attempt, site.id);
            let drop = if job.coupled && self.routed_gateway[si] {
                policy
                    .failures
                    .gateway_drop_after(campaign.seed, job.id, attempt, site.id)
            } else {
                f64::INFINITY
            };
            let (t_fail, kind) = if crash <= drop {
                (crash, FailureKind::NodeCrash)
            } else {
                (drop, FailureKind::GatewayDrop)
            };
            if now + t_fail < finish {
                self.sched(
                    now + t_fail,
                    Ev::Fail {
                        si: si as u32,
                        ji: jid,
                        attempt,
                        kind,
                    },
                );
            } else {
                self.sched(
                    finish,
                    Ev::Finish {
                        si: si as u32,
                        ji: jid,
                        attempt,
                    },
                );
            }
        }
        self.started_buf = started;
    }

    /// Is this (site, attempt) event about the job's current in-flight
    /// attempt? Events outlived by an outage kill are stale.
    fn is_current(&self, ji: usize, si: usize, attempt: u32) -> bool {
        let st = &self.states[ji];
        !st.done
            && !st.abandoned
            && st.attempt == attempt
            && matches!(st.running, Some((s, _)) if s == si)
    }

    fn handle_finish(&mut self, si: usize, ji: usize, attempt: u32, now: f64) {
        if !self.is_current(ji, si, attempt) {
            return;
        }
        let job = &self.campaign.jobs[ji];
        let site = &self.campaign.federation.sites[si];
        let (_, start) = self.states[ji]
            .running
            .take()
            .expect("current attempt must be running");
        self.schedulers[si].finish(ji as u32);
        if self.telemetry.is_enabled() {
            self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
            self.job_tracks[ji].instant_at(
                "grid.complete",
                sim_ticks(now),
                vec![("attempts", attempt.to_string())],
            );
            self.telemetry.counter("grid.jobs_completed").incr();
        }
        let st = &mut self.states[ji];
        // A clean finish completed exactly the remaining work (plus its
        // checkpoint overhead) — accounted as such, so a failure-free job
        // has bit-exact zero lost CPU-hours.
        let gross = self.policy.checkpoint.gross_hours(st.remaining);
        st.consumed_ref_cpu_h += gross * f64::from(job.procs);
        st.remaining = 0.0;
        st.done = true;
        self.backlog_cpu_h[si] -= st.backlog_contrib;
        st.backlog_contrib = 0.0;
        let lost = (st.consumed_ref_cpu_h - job.cpu_hours()).max(0.0);
        self.records.push(JobRecord {
            job: job.id,
            site: site.id,
            submitted: job.release_hours,
            started: start,
            finished: now,
            procs: job.procs,
            attempts: attempt,
            lost_cpu_hours: lost,
        });
        self.jobs_per_site[si] += 1;
        self.try_start_site(si, now);
    }

    fn handle_fail(&mut self, si: usize, ji: usize, attempt: u32, kind: FailureKind, now: f64) {
        if !self.is_current(ji, si, attempt) {
            return;
        }
        let (_, start) = self.states[ji]
            .running
            .take()
            .expect("current attempt must be running");
        self.schedulers[si].preempt(ji as u32);
        if self.telemetry.is_enabled() {
            self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
        }
        self.fail_attempt(ji, si, now, kind, now - start);
        self.try_start_site(si, now);
    }

    /// Common failure path: checkpoint accounting, blacklist update,
    /// failure log, and either a backed-off resubmission or abandonment.
    /// `elapsed_onsite` is how long the attempt ran (0 for launch
    /// failures and evicted queued jobs).
    fn fail_attempt(
        &mut self,
        ji: usize,
        si: usize,
        now: f64,
        kind: FailureKind,
        elapsed_onsite: f64,
    ) {
        let job = &self.campaign.jobs[ji];
        let site = &self.campaign.federation.sites[si];
        let gross_done = elapsed_onsite * site.speed;
        let st = &mut self.states[ji];
        let work_before = st.remaining;
        let saved = self
            .policy
            .checkpoint
            .saved_progress(gross_done, work_before);
        #[cfg(feature = "audit")]
        crate::audit::check_restart_progress(job.id, saved, work_before);
        st.remaining = work_before - saved;
        let lost_cpu = gross_done * f64::from(job.procs);
        st.consumed_ref_cpu_h += lost_cpu;
        st.add_failure(si);
        self.backlog_cpu_h[si] -= st.backlog_contrib;
        st.backlog_contrib = 0.0;
        let failed_attempt = st.attempt;
        self.failures.push(FailureEvent {
            job: job.id,
            site: site.id,
            attempt: failed_attempt,
            time: now,
            kind,
            lost_cpu_hours: lost_cpu,
            saved_hours: saved,
        });
        if self.telemetry.is_enabled() {
            let track = &self.job_tracks[ji];
            track.instant_at(
                "grid.failure",
                sim_ticks(now),
                vec![
                    ("kind", kind.label().to_string()),
                    ("site", site.name.clone()),
                    ("attempt", failed_attempt.to_string()),
                    ("lost_cpu_hours", format!("{lost_cpu:.3}")),
                    ("saved_hours", format!("{saved:.3}")),
                ],
            );
            self.telemetry.counter("grid.failures").incr();
            self.telemetry.counter(kind.failures_counter()).incr();
            if saved > 0.0 {
                track.instant_at(
                    "grid.checkpoint_restore",
                    sim_ticks(now),
                    vec![("saved_hours", format!("{saved:.3}"))],
                );
                self.telemetry.counter("grid.checkpoint_restores").incr();
            }
        }
        // Retries used so far = failed_attempt - 1; abandon when the
        // bound is spent, otherwise resubmit after backoff.
        if failed_attempt > self.policy.retry.max_retries {
            st.abandoned = true;
            self.abandoned.push(job.id);
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].instant_at("grid.abandoned", sim_ticks(now), Vec::new());
                self.telemetry.counter("grid.abandoned").incr();
            }
        } else {
            st.attempt = failed_attempt + 1;
            self.total_retries += 1;
            if self.telemetry.is_enabled() {
                self.job_tracks[ji].instant_at(
                    "grid.retry",
                    sim_ticks(now),
                    vec![("next_attempt", (failed_attempt + 1).to_string())],
                );
                self.telemetry.counter("grid.retries").incr();
            }
            #[cfg(feature = "audit")]
            crate::audit::check_retry_bound(job.id, st.attempt - 1, self.policy.retry.max_retries);
            let delay = self.policy.retry.backoff_hours(failed_attempt);
            self.sched(now + delay, Ev::Submit(ji as u32));
            #[cfg(feature = "audit")]
            {
                self.pending_submits += 1;
            }
        }
    }

    fn handle_outage_start(&mut self, oi: usize, now: f64) {
        let outage = self.campaign.outages[oi];
        let Some(si) = self.site_index(outage.site) else {
            return; // outage for a site outside a restricted federation
        };
        self.schedulers[si].set_down_until(outage.end);
        self.sched(outage.end.max(now), Ev::OutageEnd(si as u32));
        if self.telemetry.is_enabled() {
            self.campaign_track.instant_at(
                "grid.outage",
                sim_ticks(now),
                vec![("site", self.campaign.federation.sites[si].name.clone())],
            );
        }
        if self.policy.outage == OutagePolicy::Kill {
            // Scheduler ids are campaign indices: no reverse lookup needed.
            for (jid, _procs) in self.schedulers[si].kill_running() {
                let ji = jid as usize;
                let (_, start) = self.states[ji]
                    .running
                    .take()
                    .expect("killed job must be tracked as running");
                if self.telemetry.is_enabled() {
                    self.job_tracks[ji].exit_at("grid.attempt", sim_ticks(now));
                }
                self.fail_attempt(ji, si, now, FailureKind::OutageKill, now - start);
            }
            for jid in self.schedulers[si].evict_queued() {
                self.fail_attempt(jid as usize, si, now, FailureKind::OutageKill, 0.0);
            }
        }
    }

    /// Register `n` poke-chain arrivals at `(t, si)` without putting `n`
    /// events on the heap.
    ///
    /// The seed engine keeps one poke chain alive per submission, and on
    /// a saturated site every chain converges onto the same next target
    /// (the site's next finish, else the chain's next hourly tick), so
    /// its queue fills with events identical in `(time, site)` — that
    /// multiplicity is where the O(jobs × finish-epochs) event blow-up
    /// lives. Here each arrival only bumps the virtual sequence counter
    /// and lands in `poke_pending`; a physical `Ev::Poke` marker is
    /// scheduled once per distinct time, carrying the first arrival's
    /// stamp, purely so the clock is guaranteed to reach that instant.
    /// The run loop drains pending arrivals in global `(time, vseq)`
    /// order interleaved with the physical events' own stamps — the
    /// seed's exact pop order, including ties between chain pokes and
    /// same-time finish/fail/submit events (integer-anchored outage and
    /// release times make such exact f64 ties real). See DESIGN.md §13.
    fn schedule_pokes(&mut self, si: usize, t: f64, n: u32) {
        debug_assert!(n > 0);
        let first = self.vseq + 1;
        self.vseq += u64::from(n);
        // Merge into the immediately preceding block at the same (time,
        // site) when no physical event's stamp sits in the gap between
        // the two stamp ranges: with nothing to interleave, the seed
        // would pop the two runs back to back, so one block replays them
        // identically. Without this, every chain funnelling onto a
        // saturated site's next finish keeps its own block and the drain
        // walks O(chain-hops) map entries — the seed's quadratic
        // multiplicity smuggled back in as map traffic.
        let pred = self
            .poke_pending
            .range(..(t.to_bits(), first))
            .next_back()
            .map(|(&k, &v)| (k, v));
        if let Some(((p_t, p_first), (p_si, p_count))) = pred {
            if p_t == t.to_bits()
                && p_si == si as u32
                && self
                    .phys_at
                    .range((p_t, p_first + u64::from(p_count))..(p_t, first))
                    .next()
                    .is_none()
            {
                self.poke_pending
                    .get_mut(&(p_t, p_first))
                    .expect("predecessor block just read")
                    .1 += n;
                return;
            }
        }
        self.poke_pending
            .insert((t.to_bits(), first), (si as u32, n));
        if self.poke_marked.insert(t.to_bits()) {
            self.phys_at.insert((t.to_bits(), first));
            self.q.schedule(SimTime::from_hours(t), (first, Ev::Poke));
        }
    }

    /// Replay `count` consecutive chain steps at `(si, now)`, verbatim
    /// seed semantics per step: attempt starts, then keep the chain
    /// alive while work is queued — re-poke at the next finish when
    /// something runs, else hourly. Once a step starts nothing, the site
    /// state is a fixed point: every remaining step would make the same
    /// queued/target decision, so they collapse into one bulk
    /// re-registration — that O(1) collapse is what keeps total work
    /// near-linear even though the seed's chain-step count is quadratic.
    fn replay_pokes(&mut self, si: usize, now: f64, count: u32) {
        let mut left = count;
        while left > 0 {
            left -= 1;
            self.try_start_site(si, now);
            let stable = self.started_buf.is_empty();
            let steps = if stable { left + 1 } else { 1 };
            if self.schedulers[si].queued() > 0 {
                match self.schedulers[si].next_finish().filter(|&(_, f)| f > now) {
                    Some((_, f)) => self.schedule_pokes(si, f, steps),
                    None => self.schedule_pokes(si, now + 1.0, steps),
                }
            }
            if stable {
                break;
            }
        }
    }

    /// Replay every pending poke arrival that the seed engine would pop
    /// before the next physical event, in the seed's exact order.
    ///
    /// Pending blocks are stamp-ranges; physical events carry single
    /// stamps allocated outside every range, so `(time, stamp)` order
    /// totally orders all logical events exactly like the seed queue's
    /// `(time, seq)` tie-breaker. A block whose range straddles a
    /// same-time physical event's stamp is split at that stamp: the
    /// seed would interleave that event (it may re-submit to the site,
    /// un-fixing the chain's fixed point), so only the prefix replays
    /// now and the remainder re-enters the map to run after it.
    fn drain_due_pokes(&mut self) {
        loop {
            let Some((&(t_bits, first), &(si, count))) = self.poke_pending.first_key_value() else {
                return;
            };
            let budget = match self.q.peek() {
                None => count,
                Some((nt, &(nv, _))) => {
                    let nt_bits = nt.hours().to_bits();
                    if (t_bits, first) >= (nt_bits, nv) {
                        return; // the physical event precedes every pending poke
                    }
                    if nt_bits == t_bits {
                        count.min(u32::try_from(nv - first).unwrap_or(u32::MAX))
                    } else {
                        count
                    }
                }
            };
            self.poke_pending.pop_first();
            if budget < count {
                self.poke_pending
                    .insert((t_bits, first + u64::from(budget)), (si, count - budget));
            }
            self.replay_pokes(si as usize, f64::from_bits(t_bits), budget);
            #[cfg(feature = "audit")]
            self.audit_job_conservation();
        }
    }

    /// Every job handed to the federation is accounted for exactly once:
    /// awaiting (re)submission, queued at a site, running, done, or
    /// abandoned.
    #[cfg(feature = "audit")]
    fn audit_job_conservation(&self) {
        let queued: usize = self.schedulers.iter().map(SiteScheduler::queued).sum();
        let running = self.states.iter().filter(|s| s.running.is_some()).count();
        let done = self.states.iter().filter(|s| s.done).count();
        let abandoned = self.states.iter().filter(|s| s.abandoned).count();
        let total = self.pending_submits + queued + running + done + abandoned;
        if total != self.campaign.jobs.len() {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[gridsim.job_conservation]: {} jobs but {} \
                 accounted for ({} pending + {queued} queued + {running} \
                 running + {done} done + {abandoned} abandoned)",
                self.campaign.jobs.len(),
                total,
                self.pending_submits,
            );
        }
    }

    /// Open the campaign span and schedule the initial event population.
    /// Called exactly once per campaign — a thawed engine must *not* call
    /// it again (the restored queue and telemetry stream already contain
    /// everything the prologue produces).
    pub(crate) fn prologue(&mut self) {
        self.campaign_track.enter_at("grid.campaign", 0);
        // Outage starts are scheduled before submissions so a site that
        // is down at t=0 is already down when the first dispatch runs.
        for oi in 0..self.campaign.outages.len() {
            let start = self.campaign.outages[oi].start.max(0.0);
            self.sched(start, Ev::OutageStart(oi as u32));
        }
        for ji in 0..self.campaign.jobs.len() {
            self.sched(self.campaign.jobs[ji].release_hours, Ev::Submit(ji as u32));
            #[cfg(feature = "audit")]
            {
                self.pending_submits += 1;
            }
        }
    }

    /// Drain due pokes, then resolve one physical event. Returns `false`
    /// when the queue is exhausted and the campaign is complete. The
    /// state between two `step` calls is an *event boundary*: everything
    /// observable is a pure function of the engine fields, which is what
    /// makes [`Engine::freeze`] at this point sufficient for bit-exact
    /// resumption.
    pub(crate) fn step(&mut self) -> bool {
        self.drain_due_pokes();
        let Some((t, (stamp, ev))) = self.q.pop() else {
            return false;
        };
        let now = t.hours();
        self.phys_at.remove(&(now.to_bits(), stamp));
        self.events_processed += 1;
        if self.telemetry.is_enabled() {
            let ticks = sim_ticks(now);
            self.campaign_track.tick(ticks);
            self.des_events.incr();
            self.telemetry.probe(ProbePoint::DesEvent, ticks, now);
        }
        match ev {
            Ev::Submit(ji) => self.handle_submit(ji as usize, now),
            Ev::Finish { si, ji, attempt } => {
                self.handle_finish(si as usize, ji as usize, attempt, now);
            }
            Ev::Fail {
                si,
                ji,
                attempt,
                kind,
            } => self.handle_fail(si as usize, ji as usize, attempt, kind, now),
            Ev::OutageStart(oi) => self.handle_outage_start(oi as usize, now),
            Ev::OutageEnd(si) => self.replay_pokes(si as usize, now, 1),
            Ev::Poke => {
                // Wakeup marker: its chain steps drain from
                // `poke_pending` in stamp order around it; the pop
                // itself only releases the one-marker-per-time slot.
                self.poke_marked.remove(&now.to_bits());
            }
        }
        #[cfg(feature = "audit")]
        self.audit_job_conservation();
        true
    }

    /// Events resolved so far — the durability layer's checkpoint cadence
    /// and crash-injection counter.
    pub(crate) fn events(&self) -> u64 {
        self.events_processed
    }

    fn run(mut self) -> (ResilientResult, EngineStats) {
        self.prologue();
        while self.step() {}
        self.epilogue()
    }

    /// Close out a finished replay: invariant checks, stats, gauges, the
    /// campaign-span exit, and the assembled [`ResilientResult`].
    pub(crate) fn epilogue(self) -> (ResilientResult, EngineStats) {
        debug_assert!(
            self.poke_pending.is_empty(),
            "pending pokes must all drain before the campaign ends"
        );

        assert_eq!(
            self.records.len() + self.abandoned.len(),
            self.campaign.jobs.len(),
            "resilient DES lost jobs: {} completed + {} abandoned of {}",
            self.records.len(),
            self.abandoned.len(),
            self.campaign.jobs.len()
        );

        let stats = EngineStats {
            events_processed: self.events_processed,
            event_queue_peak: self.q.peak_len(),
            site_queue_peak: self
                .schedulers
                .iter()
                .map(SiteScheduler::peak_queued)
                .max()
                .unwrap_or(0),
        };
        if self.telemetry.is_enabled() {
            self.telemetry
                .set_gauge("grid.events_processed", stats.events_processed as f64);
            self.telemetry
                .set_gauge("grid.event_queue_peak", stats.event_queue_peak as f64);
            self.telemetry
                .set_gauge("grid.site_queue_peak", stats.site_queue_peak as f64);
        }
        // Close the span prologue() opened. The exit stamp is the track
        // clock (the last event's tick) — exactly what the old RAII guard
        // recorded when it dropped at the end of the replay.
        self.campaign_track
            .exit_at("grid.campaign", self.campaign_track.clock());

        let goodput: f64 = self
            .states
            .iter()
            .zip(&self.campaign.jobs)
            .filter(|(s, _)| s.done)
            .map(|(_, j)| j.cpu_hours())
            .sum();
        let consumed: f64 = self.states.iter().map(|s| s.consumed_ref_cpu_h).sum();
        let makespan = self
            .records
            .iter()
            .map(|r| r.finished)
            .fold(0.0f64, f64::max);
        let cpu_hours = self.records.iter().map(JobRecord::cpu_hours).sum();
        let result = ResilientResult {
            result: CampaignResult {
                records: self.records,
                makespan_hours: makespan,
                cpu_hours,
                jobs_per_site: self
                    .campaign
                    .federation
                    .sites
                    .iter()
                    .zip(&self.jobs_per_site)
                    .map(|(s, &n)| (s.id, n))
                    .collect(),
            },
            failures: self.failures,
            abandoned: self.abandoned,
            goodput_cpu_hours: goodput,
            badput_cpu_hours: (consumed - goodput).max(0.0),
            total_retries: self.total_retries,
        };
        (result, stats)
    }

    /// Capture the complete evolving state of the replay at an event
    /// boundary (between two [`Engine::step`] calls). Everything *not*
    /// in the image — site indexes, outage windows, connectivity tables,
    /// the fit cache, scratch buffers, telemetry handles — is a pure
    /// function of the campaign/policy/dispatch inputs and is rebuilt by
    /// [`Engine::new`] inside [`Engine::thaw`].
    pub(crate) fn freeze(&self) -> EngineImage {
        EngineImage {
            states: self.states.clone(),
            records: self.records.clone(),
            failures: self.failures.clone(),
            abandoned: self.abandoned.clone(),
            jobs_per_site: self.jobs_per_site.clone(),
            backlog_cpu_h: self.backlog_cpu_h.clone(),
            rr_cursor: self.rr_cursor,
            total_retries: self.total_retries,
            queue: self.q.image(),
            vseq: self.vseq,
            poke_pending: self.poke_pending.iter().map(|(&k, &v)| (k, v)).collect(),
            poke_marked: self.poke_marked.iter().copied().collect(),
            phys_at: self.phys_at.iter().copied().collect(),
            events_processed: self.events_processed,
            schedulers: self.schedulers.iter().map(SiteScheduler::image).collect(),
        }
    }

    /// Rebuild a mid-campaign engine from an [`EngineImage`]. The
    /// campaign, policy and dispatch must be the ones the image was
    /// frozen from (the durability layer enforces this with a
    /// configuration fingerprint). A thawed engine must *not* run
    /// [`Engine::prologue`] — the restored queue already holds the
    /// initial event population's unpopped remainder.
    pub(crate) fn thaw(
        campaign: &'a Campaign,
        policy: &'a ResiliencePolicy,
        dispatch: DispatchPolicy,
        telemetry: &Telemetry,
        img: EngineImage,
    ) -> Engine<'a> {
        assert_eq!(
            img.states.len(),
            campaign.jobs.len(),
            "snapshot job count does not match the campaign"
        );
        assert_eq!(
            img.schedulers.len(),
            campaign.federation.sites.len(),
            "snapshot site count does not match the federation"
        );
        let mut e = Engine::new(campaign, policy, dispatch, telemetry);
        e.states = img.states;
        e.records = img.records;
        e.failures = img.failures;
        e.abandoned = img.abandoned;
        e.jobs_per_site = img.jobs_per_site;
        e.backlog_cpu_h = img.backlog_cpu_h;
        e.rr_cursor = img.rr_cursor;
        e.total_retries = img.total_retries;
        e.q = EventQueue::from_image(img.queue);
        e.vseq = img.vseq;
        e.poke_pending = img.poke_pending.into_iter().collect();
        e.poke_marked = img.poke_marked.into_iter().collect();
        e.phys_at = img.phys_at.into_iter().collect();
        e.events_processed = img.events_processed;
        e.schedulers = img
            .schedulers
            .iter()
            .map(SiteScheduler::from_image)
            .collect();
        // The audit ledger is derivable, so it is recomputed rather than
        // serialized — snapshot bytes are identical with and without the
        // audit feature.
        #[cfg(feature = "audit")]
        {
            let queued: usize = e.schedulers.iter().map(SiteScheduler::queued).sum();
            let running = e.states.iter().filter(|s| s.running.is_some()).count();
            let done = e.states.iter().filter(|s| s.done).count();
            let abandoned = e.states.iter().filter(|s| s.abandoned).count();
            e.pending_submits = e.campaign.jobs.len() - (queued + running + done + abandoned);
            e.audit_job_conservation();
        }
        e
    }
}

fn failure_kind_tag(kind: FailureKind) -> u8 {
    match kind {
        FailureKind::LaunchFailure => 0,
        FailureKind::NodeCrash => 1,
        FailureKind::GatewayDrop => 2,
        FailureKind::OutageKill => 3,
    }
}

fn failure_kind_from(tag: u8) -> Result<FailureKind, DurabilityError> {
    Ok(match tag {
        0 => FailureKind::LaunchFailure,
        1 => FailureKind::NodeCrash,
        2 => FailureKind::GatewayDrop,
        3 => FailureKind::OutageKill,
        t => {
            return Err(DurabilityError::Corrupt(format!(
                "invalid failure-kind tag {t}"
            )))
        }
    })
}

fn encode_ev(e: &mut Enc, ev: Ev) {
    match ev {
        Ev::Submit(ji) => {
            e.put_u8(0);
            e.put_u32(ji);
        }
        Ev::Finish { si, ji, attempt } => {
            e.put_u8(1);
            e.put_u32(si);
            e.put_u32(ji);
            e.put_u32(attempt);
        }
        Ev::Fail {
            si,
            ji,
            attempt,
            kind,
        } => {
            e.put_u8(2);
            e.put_u32(si);
            e.put_u32(ji);
            e.put_u32(attempt);
            e.put_u8(failure_kind_tag(kind));
        }
        Ev::OutageStart(oi) => {
            e.put_u8(3);
            e.put_u32(oi);
        }
        Ev::OutageEnd(si) => {
            e.put_u8(4);
            e.put_u32(si);
        }
        Ev::Poke => e.put_u8(5),
    }
}

fn decode_ev(d: &mut Dec<'_>) -> Result<Ev, DurabilityError> {
    Ok(match d.take_u8()? {
        0 => Ev::Submit(d.take_u32()?),
        1 => Ev::Finish {
            si: d.take_u32()?,
            ji: d.take_u32()?,
            attempt: d.take_u32()?,
        },
        2 => Ev::Fail {
            si: d.take_u32()?,
            ji: d.take_u32()?,
            attempt: d.take_u32()?,
            kind: failure_kind_from(d.take_u8()?)?,
        },
        3 => Ev::OutageStart(d.take_u32()?),
        4 => Ev::OutageEnd(d.take_u32()?),
        5 => Ev::Poke,
        t => return Err(DurabilityError::Corrupt(format!("invalid event tag {t}"))),
    })
}

fn encode_opt_f64(e: &mut Enc, v: Option<f64>) {
    match v {
        Some(x) => {
            e.put_u8(1);
            e.put_f64(x);
        }
        None => e.put_u8(0),
    }
}

fn decode_opt_f64(d: &mut Dec<'_>) -> Result<Option<f64>, DurabilityError> {
    Ok(match d.take_u8()? {
        0 => None,
        1 => Some(d.take_f64()?),
        t => return Err(DurabilityError::Corrupt(format!("invalid option tag {t}"))),
    })
}

fn encode_scheduler(e: &mut Enc, s: &SchedulerImage) {
    e.put_u32(s.capacity);
    e.put_u32(s.free);
    e.put_u32(s.used);
    e.put_u64(s.seq);
    e.put_usize(s.eligible.len());
    for &(seq, ji, procs) in &s.eligible {
        e.put_u64(seq);
        e.put_u32(ji);
        e.put_u32(procs);
    }
    e.put_usize(s.pending.len());
    for &(seq, ji, procs) in &s.pending {
        e.put_u64(seq);
        e.put_u32(ji);
        e.put_u32(procs);
    }
    e.put_usize(s.promote.len());
    for &(t, seq) in &s.promote {
        e.put_f64(t);
        e.put_u64(seq);
    }
    e.put_usize(s.ready.len());
    for &(t, seq) in &s.ready {
        e.put_f64(t);
        e.put_u64(seq);
    }
    e.put_usize(s.run_order.len());
    for &(ji, procs, start_seq) in &s.run_order {
        e.put_u32(ji);
        e.put_u32(procs);
        e.put_u64(start_seq);
    }
    e.put_usize(s.finish.len());
    for &(t, start_seq, ji) in &s.finish {
        e.put_f64(t);
        e.put_u64(start_seq);
        e.put_u32(ji);
    }
    e.put_u64(s.start_seq);
    encode_opt_f64(e, s.down_until);
    e.put_usize(s.peak_queued);
}

fn decode_scheduler(d: &mut Dec<'_>) -> Result<SchedulerImage, DurabilityError> {
    let capacity = d.take_u32()?;
    let free = d.take_u32()?;
    let used = d.take_u32()?;
    let seq = d.take_u64()?;
    let mut eligible = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..eligible.capacity() {
        eligible.push((d.take_u64()?, d.take_u32()?, d.take_u32()?));
    }
    let mut pending = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..pending.capacity() {
        pending.push((d.take_u64()?, d.take_u32()?, d.take_u32()?));
    }
    let mut promote = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..promote.capacity() {
        promote.push((d.take_f64()?, d.take_u64()?));
    }
    let mut ready = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..ready.capacity() {
        ready.push((d.take_f64()?, d.take_u64()?));
    }
    let mut run_order = Vec::with_capacity(d.take_len(16)?);
    for _ in 0..run_order.capacity() {
        run_order.push((d.take_u32()?, d.take_u32()?, d.take_u64()?));
    }
    let mut finish = Vec::with_capacity(d.take_len(20)?);
    for _ in 0..finish.capacity() {
        finish.push((d.take_f64()?, d.take_u64()?, d.take_u32()?));
    }
    Ok(SchedulerImage {
        capacity,
        free,
        used,
        seq,
        eligible,
        pending,
        promote,
        ready,
        run_order,
        finish,
        start_seq: d.take_u64()?,
        down_until: decode_opt_f64(d)?,
        peak_queued: d.take_usize()?,
    })
}

/// The serializable evolving state of a resilient replay, produced by
/// [`Engine::freeze`] and consumed by [`Engine::thaw`]. Field order in
/// [`EngineImage::encode`] *is* the on-disk payload layout — any change
/// to it must bump the snapshot format version in [`crate::durability`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EngineImage {
    states: Vec<JobState>,
    records: Vec<JobRecord>,
    failures: Vec<FailureEvent>,
    abandoned: Vec<JobId>,
    jobs_per_site: Vec<usize>,
    backlog_cpu_h: Vec<f64>,
    rr_cursor: usize,
    total_retries: u32,
    queue: QueueImage<(u64, Ev)>,
    vseq: u64,
    poke_pending: Vec<((u64, u64), (u32, u32))>,
    poke_marked: Vec<u64>,
    phys_at: Vec<(u64, u64)>,
    events_processed: u64,
    schedulers: Vec<SchedulerImage>,
}

impl EngineImage {
    /// Events resolved at the moment of the freeze — names the snapshot's
    /// generation.
    pub(crate) fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Append the image to `e` in the fixed payload layout.
    pub(crate) fn encode(&self, e: &mut Enc) {
        e.put_usize(self.states.len());
        for st in &self.states {
            e.put_u32(st.attempt);
            e.put_f64(st.remaining);
            e.put_f64(st.consumed_ref_cpu_h);
            e.put_f64(st.backlog_contrib);
            e.put_usize(st.site_failures.len());
            for &(si, n) in &st.site_failures {
                e.put_u32(si);
                e.put_u32(n);
            }
            match st.running {
                Some((si, start)) => {
                    e.put_u8(1);
                    e.put_usize(si);
                    e.put_f64(start);
                }
                None => e.put_u8(0),
            }
            match st.last_site {
                Some(si) => {
                    e.put_u8(1);
                    e.put_usize(si);
                }
                None => e.put_u8(0),
            }
            e.put_bool(st.done);
            e.put_bool(st.abandoned);
        }
        e.put_usize(self.records.len());
        for r in &self.records {
            e.put_u32(r.job);
            e.put_u32(r.site);
            e.put_f64(r.submitted);
            e.put_f64(r.started);
            e.put_f64(r.finished);
            e.put_u32(r.procs);
            e.put_u32(r.attempts);
            e.put_f64(r.lost_cpu_hours);
        }
        e.put_usize(self.failures.len());
        for f in &self.failures {
            e.put_u32(f.job);
            e.put_u32(f.site);
            e.put_u32(f.attempt);
            e.put_f64(f.time);
            e.put_u8(failure_kind_tag(f.kind));
            e.put_f64(f.lost_cpu_hours);
            e.put_f64(f.saved_hours);
        }
        e.put_usize(self.abandoned.len());
        for &j in &self.abandoned {
            e.put_u32(j);
        }
        e.put_usize(self.jobs_per_site.len());
        for &n in &self.jobs_per_site {
            e.put_usize(n);
        }
        e.put_usize(self.backlog_cpu_h.len());
        for &b in &self.backlog_cpu_h {
            e.put_f64(b);
        }
        e.put_usize(self.rr_cursor);
        e.put_u32(self.total_retries);
        e.put_f64(self.queue.now);
        e.put_u64(self.queue.seq);
        e.put_usize(self.queue.peak);
        e.put_usize(self.queue.entries.len());
        for &(t, seq, (stamp, ev)) in &self.queue.entries {
            e.put_f64(t);
            e.put_u64(seq);
            e.put_u64(stamp);
            encode_ev(e, ev);
        }
        e.put_u64(self.vseq);
        e.put_usize(self.poke_pending.len());
        for &((t_bits, first), (si, count)) in &self.poke_pending {
            e.put_u64(t_bits);
            e.put_u64(first);
            e.put_u32(si);
            e.put_u32(count);
        }
        e.put_usize(self.poke_marked.len());
        for &t_bits in &self.poke_marked {
            e.put_u64(t_bits);
        }
        e.put_usize(self.phys_at.len());
        for &(t_bits, stamp) in &self.phys_at {
            e.put_u64(t_bits);
            e.put_u64(stamp);
        }
        e.put_u64(self.events_processed);
        e.put_usize(self.schedulers.len());
        for s in &self.schedulers {
            encode_scheduler(e, s);
        }
    }

    /// Decode an image from the fixed payload layout. Every structural
    /// violation is a [`DurabilityError::Corrupt`].
    pub(crate) fn decode(d: &mut Dec<'_>) -> Result<EngineImage, DurabilityError> {
        let mut states = Vec::with_capacity(d.take_len(40)?);
        for _ in 0..states.capacity() {
            let attempt = d.take_u32()?;
            let remaining = d.take_f64()?;
            let consumed_ref_cpu_h = d.take_f64()?;
            let backlog_contrib = d.take_f64()?;
            let mut site_failures = Vec::with_capacity(d.take_len(8)?);
            for _ in 0..site_failures.capacity() {
                site_failures.push((d.take_u32()?, d.take_u32()?));
            }
            let running = match d.take_u8()? {
                0 => None,
                1 => Some((d.take_usize()?, d.take_f64()?)),
                t => return Err(DurabilityError::Corrupt(format!("invalid running tag {t}"))),
            };
            let last_site = match d.take_u8()? {
                0 => None,
                1 => Some(d.take_usize()?),
                t => {
                    return Err(DurabilityError::Corrupt(format!(
                        "invalid last-site tag {t}"
                    )))
                }
            };
            states.push(JobState {
                attempt,
                remaining,
                consumed_ref_cpu_h,
                backlog_contrib,
                site_failures,
                running,
                last_site,
                done: d.take_bool()?,
                abandoned: d.take_bool()?,
            });
        }
        let mut records = Vec::with_capacity(d.take_len(44)?);
        for _ in 0..records.capacity() {
            records.push(JobRecord {
                job: d.take_u32()?,
                site: d.take_u32()?,
                submitted: d.take_f64()?,
                started: d.take_f64()?,
                finished: d.take_f64()?,
                procs: d.take_u32()?,
                attempts: d.take_u32()?,
                lost_cpu_hours: d.take_f64()?,
            });
        }
        let mut failures = Vec::with_capacity(d.take_len(37)?);
        for _ in 0..failures.capacity() {
            failures.push(FailureEvent {
                job: d.take_u32()?,
                site: d.take_u32()?,
                attempt: d.take_u32()?,
                time: d.take_f64()?,
                kind: failure_kind_from(d.take_u8()?)?,
                lost_cpu_hours: d.take_f64()?,
                saved_hours: d.take_f64()?,
            });
        }
        let mut abandoned = Vec::with_capacity(d.take_len(4)?);
        for _ in 0..abandoned.capacity() {
            abandoned.push(d.take_u32()?);
        }
        let mut jobs_per_site = Vec::with_capacity(d.take_len(8)?);
        for _ in 0..jobs_per_site.capacity() {
            jobs_per_site.push(d.take_usize()?);
        }
        let mut backlog_cpu_h = Vec::with_capacity(d.take_len(8)?);
        for _ in 0..backlog_cpu_h.capacity() {
            backlog_cpu_h.push(d.take_f64()?);
        }
        let rr_cursor = d.take_usize()?;
        let total_retries = d.take_u32()?;
        let q_now = d.take_f64()?;
        let q_seq = d.take_u64()?;
        let q_peak = d.take_usize()?;
        let mut entries = Vec::with_capacity(d.take_len(25)?);
        for _ in 0..entries.capacity() {
            let t = d.take_f64()?;
            let seq = d.take_u64()?;
            let stamp = d.take_u64()?;
            entries.push((t, seq, (stamp, decode_ev(d)?)));
        }
        let queue = QueueImage {
            now: q_now,
            seq: q_seq,
            peak: q_peak,
            entries,
        };
        let vseq = d.take_u64()?;
        let mut poke_pending = Vec::with_capacity(d.take_len(24)?);
        for _ in 0..poke_pending.capacity() {
            poke_pending.push((
                (d.take_u64()?, d.take_u64()?),
                (d.take_u32()?, d.take_u32()?),
            ));
        }
        let mut poke_marked = Vec::with_capacity(d.take_len(8)?);
        for _ in 0..poke_marked.capacity() {
            poke_marked.push(d.take_u64()?);
        }
        let mut phys_at = Vec::with_capacity(d.take_len(16)?);
        for _ in 0..phys_at.capacity() {
            phys_at.push((d.take_u64()?, d.take_u64()?));
        }
        let events_processed = d.take_u64()?;
        let mut schedulers = Vec::with_capacity(d.take_len(33)?);
        for _ in 0..schedulers.capacity() {
            schedulers.push(decode_scheduler(d)?);
        }
        Ok(EngineImage {
            states,
            records,
            failures,
            abandoned,
            jobs_per_site,
            backlog_cpu_h,
            rr_cursor,
            total_retries,
            queue,
            vseq,
            poke_pending,
            poke_marked,
            phys_at,
            events_processed,
            schedulers,
        })
    }
}

/// Execute a campaign under a resilience policy with the greedy
/// dispatcher. Deterministic under the campaign seed.
pub fn run_resilient(campaign: &Campaign, policy: &ResiliencePolicy) -> ResilientResult {
    run_resilient_with_dispatch(campaign, policy, DispatchPolicy::EarliestCompletion)
}

/// [`run_resilient`] with telemetry: the replay runs under a
/// `grid.campaign` span on the `("grid.campaign", seed)` track (its
/// logical clock is simulated milliseconds), each job attempt is a
/// `grid.attempt` span on that job's `("grid.job", id)` track, and
/// failures, retries, checkpoint restores, abandonments and outages land
/// as tagged instants. Every popped DES event fires the `DesEvent`
/// probe. With `Telemetry::disabled()` this *is* [`run_resilient`] —
/// bit-identical results either way.
pub fn run_resilient_traced(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    telemetry: &Telemetry,
) -> ResilientResult {
    run_resilient_with_dispatch_traced(
        campaign,
        policy,
        DispatchPolicy::EarliestCompletion,
        telemetry,
    )
}

/// Execute a campaign under a resilience policy with an explicit
/// dispatch policy.
pub fn run_resilient_with_dispatch(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
) -> ResilientResult {
    run_resilient_with_dispatch_traced(campaign, policy, dispatch, &Telemetry::disabled())
}

/// [`run_resilient_with_dispatch`] with telemetry (see
/// [`run_resilient_traced`]).
pub fn run_resilient_with_dispatch_traced(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
    telemetry: &Telemetry,
) -> ResilientResult {
    run_resilient_with_stats(campaign, policy, dispatch, telemetry).0
}

/// [`run_resilient_with_dispatch_traced`] returning the replay *and* the
/// engine's own scale counters ([`EngineStats`]): events processed, the
/// global event-queue high-water mark and the deepest per-site batch
/// queue. The replay itself is bit-identical to every other entry point.
pub fn run_resilient_with_stats(
    campaign: &Campaign,
    policy: &ResiliencePolicy,
    dispatch: DispatchPolicy,
    telemetry: &Telemetry,
) -> (ResilientResult, EngineStats) {
    assert!(!campaign.jobs.is_empty(), "campaign has no jobs");
    assert!(
        !campaign.federation.sites.is_empty(),
        "campaign has no sites"
    );
    Engine::new(campaign, policy, dispatch, telemetry).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{Outage, OutageCause};

    #[test]
    fn checkpoint_arithmetic() {
        let ck = CheckpointPolicy::periodic(1.0, 0.05);
        assert_eq!(ck.checkpoints_during(8.0), 7);
        assert_eq!(ck.checkpoints_during(8.5), 8);
        assert_eq!(ck.checkpoints_during(0.5), 0);
        assert_eq!(ck.checkpoints_during(1.0), 0);
        assert!((ck.gross_hours(8.0) - 8.35).abs() < 1e-12);
        // Killed 3.2 gross hours in: 3 checkpoints completed (1.05 each),
        // 3.0 h of progress saved.
        assert!((ck.saved_progress(3.2, 8.0) - 3.0).abs() < 1e-12);
        // Saved progress never reaches the full remaining work.
        assert!(ck.saved_progress(100.0, 8.0) < 8.0);
        assert_eq!(CheckpointPolicy::none().saved_progress(5.0, 8.0), 0.0);
        assert_eq!(CheckpointPolicy::none().gross_hours(8.0), 8.0);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = ResiliencePolicy::retry_only().retry;
        assert!((r.backoff_hours(1) - 0.25).abs() < 1e-12);
        assert!((r.backoff_hours(2) - 0.5).abs() < 1e-12);
        assert!((r.backoff_hours(3) - 1.0).abs() < 1e-12);
        let naive = ResiliencePolicy::naive().retry;
        assert!((naive.backoff_hours(5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn failure_free_policy_matches_plain_des() {
        let c = Campaign::paper_batch_phase(11);
        let plain = crate::des::run_des(&c);
        let resilient = run_resilient(&c, &ResiliencePolicy::none());
        assert_eq!(plain, resilient.result);
        assert!(resilient.failures.is_empty());
        assert!(resilient.abandoned.is_empty());
        assert_eq!(resilient.total_retries, 0);
        assert!(resilient.badput_cpu_hours.abs() < 1e-6);
    }

    #[test]
    fn resilient_run_is_deterministic() {
        let mut c = Campaign::paper_batch_phase(5);
        c.outages = vec![Outage::security_breach(3, 24.0, 2.0)];
        for policy in [
            ResiliencePolicy::naive(),
            ResiliencePolicy::retry_only(),
            ResiliencePolicy::checkpoint_failover(),
        ] {
            let a = run_resilient(&c, &policy);
            let b = run_resilient(&c, &policy);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn failures_actually_occur_and_are_recovered() {
        let c = Campaign::paper_batch_phase(5);
        let r = run_resilient(&c, &ResiliencePolicy::checkpoint_failover());
        assert!(!r.failures.is_empty(), "sc05 model must produce failures");
        assert_eq!(r.result.records.len(), 72, "all jobs must complete");
        assert!(r.total_retries > 0);
        assert!(r.badput_cpu_hours > 0.0);
        assert!((r.goodput_cpu_hours - 75_000.0).abs() < 2_000.0);
        assert!(r.completion_fraction() > 0.999);
        // Records carry the attempt accounting.
        assert!(r.result.records.iter().any(|rec| rec.attempts > 1));
        let retries: u32 = r.result.records.iter().map(JobRecord::retries).sum();
        assert_eq!(retries, r.total_retries);
    }

    #[test]
    fn kill_outage_terminates_in_flight_work() {
        // A mid-campaign outage under Kill produces OutageKill failures;
        // under Drain it does not.
        let mut c = Campaign::paper_batch_phase(9);
        c.outages = vec![Outage::new(0, 20.0, 80.0, OutageCause::Hardware)];
        let mut kill = ResiliencePolicy::retry_only();
        kill.failures = FailureModel::none();
        let killed = run_resilient(&c, &kill);
        assert!(
            killed
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::OutageKill && f.site == 0),
            "kill policy must terminate NCSA's in-flight work"
        );
        let mut drain = kill;
        drain.outage = OutagePolicy::Drain;
        let drained = run_resilient(&c, &drain);
        assert!(drained.failures.is_empty());
        assert_eq!(drained.result.records.len(), 72);
    }

    #[test]
    fn checkpointing_reduces_badput_under_crashy_sites() {
        // Crash-dominated environment (MTBF 4 h, jobs ~8 h): restarting
        // from scratch re-executes lost segments over and over, while
        // hourly checkpoints bound each loss to about a segment. The
        // checkpoint overhead paid on every job must be repaid many times
        // over.
        let c = Campaign::paper_batch_phase(13);
        let crashy = FailureModel {
            p_launch: 0.0,
            p_launch_immature: 0.0,
            crash_rate_per_hour: 0.25,
            gateway_drop_rate_per_hour: 0.0,
        };
        let mut scratch = ResiliencePolicy::retry_only();
        scratch.failures = crashy;
        scratch.retry.max_retries = 100;
        scratch.retry.backoff_factor = 1.0;
        let mut ckpt = ResiliencePolicy::checkpoint_failover();
        ckpt.failures = crashy;
        ckpt.retry.max_retries = 100;
        ckpt.retry.backoff_factor = 1.0;
        let a = run_resilient(&c, &scratch);
        let b = run_resilient(&c, &ckpt);
        assert!(!a.failures.is_empty() && !b.failures.is_empty());
        let saved_b: f64 = b.failures.iter().map(|f| f.saved_hours).sum();
        assert!(saved_b > 0.0, "checkpoints must save progress");
        assert_eq!(b.result.records.len(), 72);
        assert!(
            b.badput_cpu_hours < a.badput_cpu_hours,
            "checkpointing must cut badput: {} vs {}",
            b.badput_cpu_hours,
            a.badput_cpu_hours
        );
        assert!(
            b.result.makespan_hours < a.result.makespan_hours,
            "checkpointing must cut makespan: {} vs {}",
            b.result.makespan_hours,
            a.result.makespan_hours
        );
    }

    #[test]
    fn bounded_retries_abandon_jobs_on_a_dead_federation() {
        // One site, permanently failing launches: jobs exhaust retries
        // and are abandoned — the engine still terminates and accounts
        // for every job.
        let mut c = Campaign::paper_batch_phase(3);
        c.federation = crate::federation::Federation::paper_us_uk().restricted(&[0]);
        c.jobs.truncate(8);
        let mut policy = ResiliencePolicy::retry_only();
        policy.retry.max_retries = 3;
        policy.failures = FailureModel {
            p_launch: 1.0,
            p_launch_immature: 1.0,
            crash_rate_per_hour: 0.0,
            gateway_drop_rate_per_hour: 0.0,
        };
        let r = run_resilient(&c, &policy);
        assert!(r.result.records.is_empty());
        assert_eq!(r.abandoned.len(), 8);
        assert_eq!(r.completion_fraction(), 0.0);
        // Every job used exactly max_retries resubmissions.
        assert_eq!(r.total_retries, 8 * 3);
        for f in &r.failures {
            assert!(f.attempt <= policy.retry.max_retries + 1);
        }
    }

    #[test]
    fn coupled_jobs_avoid_infeasible_sites() {
        // Steering-coupled jobs can never land on HPCx (hidden, no
        // gateway); gateway drops show up only on gateway-routed sites.
        let mut c = Campaign::paper_batch_phase(7);
        for j in c.jobs.iter_mut() {
            j.coupled = true;
        }
        let r = run_resilient(&c, &ResiliencePolicy::checkpoint_failover());
        let hpcx = 5;
        for rec in &r.result.records {
            assert_ne!(rec.site, hpcx, "coupled job completed on HPCx");
        }
        for f in &r.failures {
            assert_ne!(f.site, hpcx, "coupled job attempted on HPCx");
            if f.kind == FailureKind::GatewayDrop {
                assert_eq!(f.site, 2, "gateway drops only at PSC (the AGN site)");
            }
        }
    }

    #[test]
    fn naive_same_site_retry_never_migrates() {
        let mut c = Campaign::paper_batch_phase(21);
        c.outages = vec![Outage::security_breach(3, 12.0, 1.0)];
        let r = run_resilient(&c, &ResiliencePolicy::naive());
        // Each failed job's later attempts stay on the site of its first
        // attempt.
        for rec in &r.result.records {
            let sites: Vec<_> = r
                .failures
                .iter()
                .filter(|f| f.job == rec.job)
                .map(|f| f.site)
                .collect();
            for s in sites {
                assert_eq!(s, rec.site, "naive retry migrated job {}", rec.job);
            }
        }
    }

    #[test]
    fn freeze_thaw_resumes_bit_identically_at_every_boundary_class() {
        // Freeze at a spread of event indices (early, mid, late), thaw
        // into a fresh engine and finish: results must be bit-identical
        // to the uninterrupted run — the acceptance property the whole
        // durability layer rests on.
        let mut c = Campaign::paper_batch_phase(5);
        c.outages = vec![Outage::security_breach(3, 24.0, 2.0)];
        let policy = ResiliencePolicy::checkpoint_failover();
        let t = Telemetry::disabled();
        let (baseline, base_stats) =
            run_resilient_with_stats(&c, &policy, DispatchPolicy::EarliestCompletion, &t);
        for kill_at in [1u64, 7, 100, 1000] {
            let mut live = Engine::new(&c, &policy, DispatchPolicy::EarliestCompletion, &t);
            live.prologue();
            while live.events() < kill_at && live.step() {}
            let img = live.freeze();
            drop(live);
            let mut resumed =
                Engine::thaw(&c, &policy, DispatchPolicy::EarliestCompletion, &t, img);
            while resumed.step() {}
            let (result, stats) = resumed.epilogue();
            assert_eq!(result, baseline, "diverged after thaw at event {kill_at}");
            assert_eq!(stats, base_stats, "stats diverged at event {kill_at}");
        }
    }

    #[test]
    fn engine_image_codec_round_trips_mid_campaign_state() {
        let mut c = Campaign::paper_batch_phase(17);
        c.outages = vec![Outage::security_breach(3, 24.0, 2.0)];
        let policy = ResiliencePolicy::retry_only();
        let t = Telemetry::disabled();
        let mut e = Engine::new(&c, &policy, DispatchPolicy::RoundRobin, &t);
        e.prologue();
        for _ in 0..150 {
            assert!(e.step(), "campaign ended before the freeze point");
        }
        let img = e.freeze();
        let mut enc = Enc::new();
        img.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = EngineImage::decode(&mut dec).expect("decode freshly encoded image");
        dec.finish().expect("image consumes its payload exactly");
        assert_eq!(back, img);
        // Encoding is a pure function of the image: re-encoding the
        // decoded image reproduces the bytes.
        let mut enc2 = Enc::new();
        back.encode(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
        // Truncated payloads fail loudly, never panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut short = Dec::new(&bytes[..cut]);
            assert!(EngineImage::decode(&mut short).is_err());
        }
    }
}
