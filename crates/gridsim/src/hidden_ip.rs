//! The hidden-IP problem and gateway bridging (§V-C-1).
//!
//! "internal nodes of the compute resources are not network addressable
//! (…) This poses a problem for example, when the master process — which
//! may be running on a node which is not visible to the 'external' world
//! — is required to communicate with a visualization process running on a
//! different machine."
//!
//! PSC's mitigation (qsocket library + Access Gateway Nodes) is modeled
//! faithfully: hidden nodes *can* reach out through a gateway, but (a)
//! only TCP is supported, (b) all routed streams share the few gateway
//! nodes, which become a bandwidth bottleneck as stream count grows.

use crate::network::{Link, Path};
use crate::resource::Site;
use serde::{Deserialize, Serialize};

/// Transport protocol of a desired connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Reliable stream (supported through gateways).
    Tcp,
    /// Datagram (the paper: gateways do "not support UDP-based traffic").
    Udp,
}

/// Why a connection cannot be established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectError {
    /// Target site's compute nodes are not addressable and no gateway
    /// exists.
    HiddenNoGateway,
    /// A gateway exists but the protocol is unsupported (UDP).
    GatewayNoUdp,
}

/// A gateway installation at a site.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Gateway {
    /// Number of gateway nodes ("routing multiple processes through
    /// single, or even a few, gateway nodes can present a bottleneck").
    pub nodes: u32,
    /// Per-gateway-node forwarding bandwidth (Mbit/s).
    pub node_bandwidth_mbps: f64,
    /// Extra per-hop forwarding latency (ms).
    pub forward_latency_ms: f64,
}

impl Gateway {
    /// PSC's Access Gateway Node installation (a few nodes).
    pub fn psc() -> Self {
        Gateway {
            nodes: 2,
            node_bandwidth_mbps: 400.0,
            forward_latency_ms: 0.5,
        }
    }

    /// Effective per-stream bandwidth when `streams` concurrent streams
    /// are routed through the installation (fair sharing).
    pub fn per_stream_bandwidth(&self, streams: u32) -> f64 {
        if streams == 0 {
            return self.node_bandwidth_mbps;
        }
        let total = self.node_bandwidth_mbps * self.nodes as f64;
        total / streams as f64
    }
}

/// Check whether an *external* peer can open a connection to a compute
/// node at `site`, and if so, whether it must be gateway-routed.
pub fn connect_inbound(
    site: &Site,
    gateway: Option<&Gateway>,
    protocol: Protocol,
) -> Result<bool, ConnectError> {
    if !site.hidden_ip {
        return Ok(false); // directly addressable
    }
    match gateway {
        None => Err(ConnectError::HiddenNoGateway),
        Some(_) if protocol == Protocol::Udp => Err(ConnectError::GatewayNoUdp),
        Some(_) => Ok(true), // routable via gateway
    }
}

/// Connectivity a steering-coupled job gets at `site`: `Ok(None)` means
/// the external steering host can reach the master process directly,
/// `Ok(Some(gateway))` means the connection must be routed through the
/// site's gateway installation (and is therefore exposed to gateway
/// connection drops), `Err` means the site cannot host coupled runs at
/// all — the §V-C-2 situation that made HPCx unusable for them.
pub fn steering_connectivity(site: &Site) -> Result<Option<Gateway>, ConnectError> {
    let gateway = if site.has_gateway {
        Some(Gateway::psc())
    } else {
        None
    };
    connect_inbound(site, gateway.as_ref(), Protocol::Tcp).map(
        |routed| {
            if routed {
                gateway
            } else {
                None
            }
        },
    )
}

/// Build the effective network path for a (possibly gateway-routed)
/// connection: `base` is the site-to-peer wide-area link; when routed,
/// the gateway hop is prepended and the shared-gateway bandwidth cap
/// applied for the current stream count.
pub fn effective_path(base: Link, routed: Option<(&Gateway, u32)>) -> Path {
    match routed {
        None => Path::new(vec![base]),
        Some((gw, streams)) => {
            let gw_link = Link {
                latency_ms: gw.forward_latency_ms,
                jitter_ms: 0.05,
                loss: 1e-7,
                bandwidth_mbps: gw.per_stream_bandwidth(streams.max(1)),
                lightpath: false,
            };
            Path::new(vec![gw_link, base])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QosProfile;
    use crate::resource::paper_federation_sites;

    fn site(name: &str) -> Site {
        paper_federation_sites()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap()
    }

    #[test]
    fn public_sites_connect_directly() {
        let ncsa = site("NCSA");
        assert_eq!(connect_inbound(&ncsa, None, Protocol::Tcp), Ok(false));
        assert_eq!(connect_inbound(&ncsa, None, Protocol::Udp), Ok(false));
    }

    #[test]
    fn hidden_without_gateway_fails() {
        let hpcx = site("HPCx");
        assert_eq!(
            connect_inbound(&hpcx, None, Protocol::Tcp),
            Err(ConnectError::HiddenNoGateway)
        );
    }

    #[test]
    fn psc_gateway_allows_tcp_but_not_udp() {
        let psc = site("PSC");
        let gw = Gateway::psc();
        assert_eq!(connect_inbound(&psc, Some(&gw), Protocol::Tcp), Ok(true));
        assert_eq!(
            connect_inbound(&psc, Some(&gw), Protocol::Udp),
            Err(ConnectError::GatewayNoUdp)
        );
    }

    #[test]
    fn gateway_bandwidth_degrades_with_streams() {
        let gw = Gateway::psc();
        let one = gw.per_stream_bandwidth(1);
        let many = gw.per_stream_bandwidth(64);
        assert!(one > many);
        assert!((many - gw.node_bandwidth_mbps * 2.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn routed_path_has_extra_hop_and_bottleneck() {
        let base = QosProfile::TransAtlanticLightpath.link();
        let gw = Gateway::psc();
        let direct = effective_path(base, None);
        let routed = effective_path(base, Some((&gw, 64)));
        assert_eq!(direct.hops(), 1);
        assert_eq!(routed.hops(), 2);
        assert!(
            routed.bandwidth_mbps() < direct.bandwidth_mbps(),
            "gateway must be the bottleneck under load"
        );
    }

    #[test]
    fn steering_connectivity_matches_site_topology() {
        // NCSA: public nodes — direct connection, no gateway exposure.
        assert_eq!(steering_connectivity(&site("NCSA")), Ok(None));
        // PSC: hidden IPs bridged by AGN — routed, drop-exposed.
        match steering_connectivity(&site("PSC")) {
            Ok(Some(gw)) => assert_eq!(gw, Gateway::psc()),
            other => panic!("PSC must be gateway-routed, got {other:?}"),
        }
        // HPCx: hidden, no gateway — coupled runs infeasible.
        assert_eq!(
            steering_connectivity(&site("HPCx")),
            Err(ConnectError::HiddenNoGateway)
        );
    }

    #[test]
    fn zero_streams_edge_case() {
        let gw = Gateway::psc();
        assert_eq!(gw.per_stream_bandwidth(0), gw.node_bandwidth_mbps);
    }
}
