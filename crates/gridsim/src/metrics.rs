//! Campaign metrics: utilization, wait statistics, throughput, and
//! resilience accounting (goodput vs badput).

use crate::campaign::CampaignResult;
use crate::failure::FailureKind;
use crate::federation::Federation;
use crate::job::JobRecord;
use crate::resilience::ResilientResult;

/// Per-site utilization over the campaign makespan: committed CPU-hours /
/// (procs × makespan). Returns `(site_id, utilization)` pairs.
pub fn site_utilization(result: &CampaignResult, federation: &Federation) -> Vec<(u32, f64)> {
    let span = result.makespan_hours.max(1e-12);
    federation
        .sites
        .iter()
        .map(|site| {
            let used: f64 = result
                .records
                .iter()
                .filter(|r| r.site == site.id)
                .map(JobRecord::cpu_hours)
                .sum();
            (site.id, used / (site.procs as f64 * span))
        })
        .collect()
}

/// Aggregate federation utilization.
pub fn federation_utilization(result: &CampaignResult, federation: &Federation) -> f64 {
    let span = result.makespan_hours.max(1e-12);
    result.cpu_hours / (federation.total_procs() as f64 * span)
}

/// Throughput in jobs/day.
pub fn throughput_per_day(result: &CampaignResult) -> f64 {
    result.records.len() as f64 / result.makespan_days().max(1e-12)
}

/// Distribution summary of queue waits: (mean, median, max) in hours.
/// All three are 0.0 for an empty record set (no NaN propagation).
pub fn wait_summary(result: &CampaignResult) -> (f64, f64, f64) {
    if result.records.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let waits: Vec<f64> = result.records.iter().map(JobRecord::wait).collect();
    (
        spice_stats::mean(&waits),
        spice_stats::descriptive::median(&waits),
        waits.iter().cloned().fold(0.0, f64::max),
    )
}

/// Resilience summary of a campaign execution: `(goodput CPU-h, badput
/// CPU-h, badput fraction, mean retries per job, completion fraction)`.
pub fn resilience_summary(result: &ResilientResult) -> (f64, f64, f64, f64, f64) {
    (
        result.goodput_cpu_hours,
        result.badput_cpu_hours,
        result.badput_fraction(),
        result.retries_per_job(),
        result.completion_fraction(),
    )
}

/// [`resilience_summary`] that *also* exports the numbers as `grid.*`
/// gauges (plus per-kind loss counters) through `t`'s registry, so the
/// same JSONL / Chrome trace that carries the event timeline carries the
/// campaign-level accounting. Returns the same tuple.
pub fn resilience_summary_traced(
    result: &ResilientResult,
    t: &spice_telemetry::Telemetry,
) -> (f64, f64, f64, f64, f64) {
    let summary = resilience_summary(result);
    t.set_gauge("grid.goodput_cpu_hours", summary.0);
    t.set_gauge("grid.badput_cpu_hours", summary.1);
    t.set_gauge("grid.badput_fraction", summary.2);
    t.set_gauge("grid.retries_per_job", summary.3);
    t.set_gauge("grid.completion_fraction", summary.4);
    for (kind, events, lost) in loss_by_kind(result) {
        t.counter(kind.loss_events_counter()).add(events as u64);
        t.set_gauge(kind.lost_cpu_hours_gauge(), lost);
    }
    summary
}

/// CPU-hours lost per failure kind over a resilient execution. Returns
/// `(kind, events, lost_cpu_hours)` for each kind that occurred.
pub fn loss_by_kind(result: &ResilientResult) -> Vec<(FailureKind, usize, f64)> {
    let mut out: Vec<(FailureKind, usize, f64)> = Vec::new();
    for f in &result.failures {
        match out.iter_mut().find(|(k, _, _)| *k == f.kind) {
            Some((_, n, lost)) => {
                *n += 1;
                *lost += f.lost_cpu_hours;
            }
            None => out.push((f.kind, 1, f.lost_cpu_hours)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn utilization_bounded() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        for (_, u) in site_utilization(&r, &c.federation) {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&u),
                "utilization {u} out of range"
            );
        }
        let total = federation_utilization(&r, &c.federation);
        assert!(
            total > 0.05 && total <= 1.0,
            "federation utilization {total}"
        );
    }

    #[test]
    fn throughput_matches_counts() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        let t = throughput_per_day(&r);
        assert!((t - 72.0 / r.makespan_days()).abs() < 1e-9);
    }

    #[test]
    fn wait_summary_ordering() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        let (mean, median, max) = wait_summary(&r);
        assert!(max >= mean && max >= median);
        assert!(mean >= 0.0);
    }

    #[test]
    fn wait_summary_empty_is_zero() {
        let empty = CampaignResult {
            records: Vec::new(),
            makespan_hours: 0.0,
            cpu_hours: 0.0,
            jobs_per_site: Vec::new(),
        };
        assert_eq!(wait_summary(&empty), (0.0, 0.0, 0.0));
    }

    #[test]
    fn resilience_summary_is_consistent() {
        let c = Campaign::sc05_outage_phase(5);
        let r = crate::resilience::run_resilient(
            &c,
            &crate::resilience::ResiliencePolicy::checkpoint_failover(),
        );
        let (good, bad, frac, retries, completion) = resilience_summary(&r);
        assert!(good > 0.0);
        assert!(bad > 0.0, "sc05 scenario must burn badput");
        assert!((frac - bad / (good + bad)).abs() < 1e-12);
        assert!(retries > 0.0);
        assert!(completion > 0.9);
        // loss_by_kind partitions the failure log.
        let by_kind = loss_by_kind(&r);
        let n: usize = by_kind.iter().map(|(_, n, _)| n).sum();
        assert_eq!(n, r.failures.len());
        let lost: f64 = by_kind.iter().map(|(_, _, l)| l).sum();
        let total: f64 = r.failures.iter().map(|f| f.lost_cpu_hours).sum();
        assert!((lost - total).abs() < 1e-9);
    }
}
