//! Campaign metrics: utilization, wait statistics, throughput.

use crate::campaign::CampaignResult;
use crate::federation::Federation;
use crate::job::JobRecord;

/// Per-site utilization over the campaign makespan: committed CPU-hours /
/// (procs × makespan). Returns `(site_id, utilization)` pairs.
pub fn site_utilization(result: &CampaignResult, federation: &Federation) -> Vec<(u32, f64)> {
    let span = result.makespan_hours.max(1e-12);
    federation
        .sites
        .iter()
        .map(|site| {
            let used: f64 = result
                .records
                .iter()
                .filter(|r| r.site == site.id)
                .map(JobRecord::cpu_hours)
                .sum();
            (site.id, used / (site.procs as f64 * span))
        })
        .collect()
}

/// Aggregate federation utilization.
pub fn federation_utilization(result: &CampaignResult, federation: &Federation) -> f64 {
    let span = result.makespan_hours.max(1e-12);
    result.cpu_hours / (federation.total_procs() as f64 * span)
}

/// Throughput in jobs/day.
pub fn throughput_per_day(result: &CampaignResult) -> f64 {
    result.records.len() as f64 / result.makespan_days().max(1e-12)
}

/// Distribution summary of queue waits: (mean, median, max) in hours.
pub fn wait_summary(result: &CampaignResult) -> (f64, f64, f64) {
    let waits: Vec<f64> = result.records.iter().map(JobRecord::wait).collect();
    (
        spice_stats::mean(&waits),
        spice_stats::descriptive::median(&waits),
        waits.iter().cloned().fold(0.0, f64::max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn utilization_bounded() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        for (_, u) in site_utilization(&r, &c.federation) {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&u),
                "utilization {u} out of range"
            );
        }
        let total = federation_utilization(&r, &c.federation);
        assert!(
            total > 0.05 && total <= 1.0,
            "federation utilization {total}"
        );
    }

    #[test]
    fn throughput_matches_counts() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        let t = throughput_per_day(&r);
        assert!((t - 72.0 / r.makespan_days()).abs() < 1e-9);
    }

    #[test]
    fn wait_summary_ordering() {
        let c = Campaign::paper_batch_phase(4);
        let r = c.run();
        let (mean, median, max) = wait_summary(&r);
        assert!(max >= mean && max >= median);
        assert!(mean >= 0.0);
    }
}
