//! Failure injection: full-site outages (§V-C-4) and the per-job
//! stochastic failure model behind the resilience engine.
//!
//! "for a duration close to SC05, the number of UK resources whose
//! utilization could be coordinated with the US TeraGrid nodes was
//! reduced to one. As luck would have it there was then a security breach
//! on that one UK node. It took several weeks to sanitize that node."
//!
//! Beyond clean outage windows, §V catalogues per-job failure modes:
//! immature middleware that made launches fail (§V-C-2), node crashes
//! that killed running work, and gateway connection failures for
//! steering-coupled jobs (§V-C-1). [`FailureModel`] samples all three
//! deterministically from a seed, so a campaign under failures replays
//! bit-identically.

use crate::job::JobId;
use crate::resource::{Site, SiteId};
use serde::{Deserialize, Serialize};
use spice_stats::rng::{seed_stream, unit_f64};

/// Why a site went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageCause {
    /// Hardware failure.
    Hardware,
    /// Security incident + sanitization (weeks-scale).
    SecurityBreach,
    /// Scheduled maintenance.
    Maintenance,
    /// Immature middleware deployment making the site unusable for
    /// coupled runs (§V-C-2).
    MiddlewareImmaturity,
}

/// A full-site outage window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Affected site.
    pub site: SiteId,
    /// Start (hours from campaign begin).
    pub start: f64,
    /// End (hours).
    pub end: f64,
    /// Cause (for reporting).
    pub cause: OutageCause,
}

impl Outage {
    /// Construct an outage.
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn new(site: SiteId, start: f64, end: f64, cause: OutageCause) -> Self {
        assert!(end > start, "outage window must be non-empty");
        Outage {
            site,
            start,
            end,
            cause,
        }
    }

    /// Duration in hours.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// True when the outage covers time `t`.
    pub fn covers(&self, t: f64) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// The paper's security-breach scenario: the given site is down for
    /// `weeks` weeks starting at `start_h`.
    pub fn security_breach(site: SiteId, start_h: f64, weeks: f64) -> Self {
        Outage::new(
            site,
            start_h,
            start_h + weeks * 7.0 * 24.0,
            OutageCause::SecurityBreach,
        )
    }
}

/// What killed (or refused to start) a job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The launch itself failed — immature middleware, lost submission
    /// (§V-C-2). No compute time is lost.
    LaunchFailure,
    /// A node crash killed the running job mid-flight.
    NodeCrash,
    /// The gateway-routed steering connection dropped; a coupled run
    /// cannot continue without its external connection (§V-C-1).
    GatewayDrop,
    /// A site outage began and the [`crate::resilience::OutagePolicy`]
    /// was `Kill`: in-flight work was terminated.
    OutageKill,
}

impl FailureKind {
    /// Canonical short label — used by the failure listing, the telemetry
    /// event stream and per-kind counters, so one grep matches all three.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::LaunchFailure => "launch-fail",
            FailureKind::NodeCrash => "node-crash",
            FailureKind::GatewayDrop => "gateway-drop",
            FailureKind::OutageKill => "outage-kill",
        }
    }

    /// Per-kind failure counter name (`grid.failures.<label>`). Static
    /// so the registry export is a closed, diff-able vocabulary
    /// (spice-lint M001) — same strings the `format!` call sites used
    /// to build.
    pub fn failures_counter(&self) -> &'static str {
        match self {
            FailureKind::LaunchFailure => "grid.failures.launch-fail",
            FailureKind::NodeCrash => "grid.failures.node-crash",
            FailureKind::GatewayDrop => "grid.failures.gateway-drop",
            FailureKind::OutageKill => "grid.failures.outage-kill",
        }
    }

    /// Per-kind loss-event counter name (`grid.loss_events.<label>`).
    pub fn loss_events_counter(&self) -> &'static str {
        match self {
            FailureKind::LaunchFailure => "grid.loss_events.launch-fail",
            FailureKind::NodeCrash => "grid.loss_events.node-crash",
            FailureKind::GatewayDrop => "grid.loss_events.gateway-drop",
            FailureKind::OutageKill => "grid.loss_events.outage-kill",
        }
    }

    /// Per-kind lost-CPU-hours gauge name (`grid.lost_cpu_hours.<label>`).
    pub fn lost_cpu_hours_gauge(&self) -> &'static str {
        match self {
            FailureKind::LaunchFailure => "grid.lost_cpu_hours.launch-fail",
            FailureKind::NodeCrash => "grid.lost_cpu_hours.node-crash",
            FailureKind::GatewayDrop => "grid.lost_cpu_hours.gateway-drop",
            FailureKind::OutageKill => "grid.lost_cpu_hours.outage-kill",
        }
    }
}

/// One failed attempt, as logged by the resilience engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Which job.
    pub job: JobId,
    /// Site the attempt was on.
    pub site: SiteId,
    /// Attempt number that failed (1-based).
    pub attempt: u32,
    /// Simulation time of the failure (h).
    pub time: f64,
    /// Failure mode.
    pub kind: FailureKind,
    /// Reference-normalized CPU-hours burned by the attempt.
    pub lost_cpu_hours: f64,
    /// Reference hours of progress preserved by checkpointing (0 without
    /// a checkpoint policy).
    pub saved_hours: f64,
}

/// Seeded per-job stochastic failure model. All probabilities and rates
/// are sampled from `(master seed, job, attempt, site)` streams, so two
/// runs of the same campaign see identical failure schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Probability a launch fails on a site with mature middleware.
    pub p_launch: f64,
    /// Probability a launch fails on an immature-middleware site (no
    /// stable lightpath deployment — the §V-C-2 proxy).
    pub p_launch_immature: f64,
    /// Node-crash rate (per on-site wall hour) while a job runs.
    pub crash_rate_per_hour: f64,
    /// Steering-connection drop rate (per on-site wall hour) for coupled
    /// jobs routed through a gateway.
    pub gateway_drop_rate_per_hour: f64,
}

const LAUNCH_SALT: u64 = 0x4C41_554E;
const CRASH_SALT: u64 = 0x4352_4153;
const GATEWAY_SALT: u64 = 0x4741_5445;

/// One sampling stream per (job, attempt, site) triple.
fn stream_index(job: JobId, attempt: u32, site: SiteId) -> u64 {
    (job as u64) | ((attempt as u64) << 32) | ((site as u64) << 48)
}

impl FailureModel {
    /// No failures at all: every launch succeeds, nothing crashes.
    pub fn none() -> FailureModel {
        FailureModel {
            p_launch: 0.0,
            p_launch_immature: 0.0,
            crash_rate_per_hour: 0.0,
            gateway_drop_rate_per_hour: 0.0,
        }
    }

    /// Failure environment calibrated to the SC05 experience: occasional
    /// launch failures on mature sites, frequent ones where middleware
    /// was immature, node crashes at day-scale MTBF (2005-era clusters
    /// under production load), and flaky gateway routing for coupled
    /// runs.
    pub fn sc05() -> FailureModel {
        FailureModel {
            p_launch: 0.05,
            p_launch_immature: 0.35,
            crash_rate_per_hour: 0.03,
            gateway_drop_rate_per_hour: 0.05,
        }
    }

    /// Does the launch of `(job, attempt)` on `site` fail?
    pub fn launch_fails(&self, seed: u64, job: JobId, attempt: u32, site: &Site) -> bool {
        let p = if site.lightpath {
            self.p_launch
        } else {
            self.p_launch_immature
        };
        if p <= 0.0 {
            return false;
        }
        let u = unit_f64(seed_stream(
            seed ^ LAUNCH_SALT,
            stream_index(job, attempt, site.id),
        ));
        u < p
    }

    /// On-site hours until a node crash kills this attempt
    /// (`f64::INFINITY` when the crash rate is zero).
    pub fn crash_after(&self, seed: u64, job: JobId, attempt: u32, site: SiteId) -> f64 {
        exponential_sample(
            self.crash_rate_per_hour,
            seed_stream(seed ^ CRASH_SALT, stream_index(job, attempt, site)),
        )
    }

    /// On-site hours until the gateway-routed steering connection drops
    /// (`f64::INFINITY` when the drop rate is zero). Only meaningful for
    /// coupled jobs whose connection is gateway-routed.
    pub fn gateway_drop_after(&self, seed: u64, job: JobId, attempt: u32, site: SiteId) -> f64 {
        exponential_sample(
            self.gateway_drop_rate_per_hour,
            seed_stream(seed ^ GATEWAY_SALT, stream_index(job, attempt, site)),
        )
    }
}

/// Inverse-CDF exponential sample from 64 seeded bits.
fn exponential_sample(rate_per_hour: f64, bits: u64) -> f64 {
    if rate_per_hour <= 0.0 {
        return f64::INFINITY;
    }
    let u = unit_f64(bits);
    -(1.0 - u).max(1e-12).ln() / rate_per_hour
}

/// Blocked windows per site, as consumed by the capacity profiles.
pub fn blocked_windows(outages: &[Outage], site: SiteId) -> Vec<(f64, f64)> {
    outages
        .iter()
        .filter(|o| o.site == site)
        .map(|o| (o.start, o.end))
        .collect()
}

/// Per-site index over outage windows for O(log n) "how much outage is
/// left at time t" queries on the dispatch hot path.
///
/// Windows are kept start-sorted with a running prefix-maximum of end
/// times; `remaining(now)` binary-searches for the windows starting at
/// or before `now` and reads the largest end among them. Overlapping
/// windows are deliberately *not* merged: the answer must equal
/// `max(end - now)` over the windows covering `now` (the scan the
/// resilience engine originally did), and merging would change it.
#[derive(Debug, Clone, Default)]
pub struct OutageIndex {
    starts: Vec<f64>,
    prefix_max_end: Vec<f64>,
}

impl OutageIndex {
    /// Index the outage windows of `site`.
    pub fn build(outages: &[Outage], site: SiteId) -> OutageIndex {
        let mut windows: Vec<(f64, f64)> = outages
            .iter()
            .filter(|o| o.site == site)
            .map(|o| (o.start, o.end))
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut starts = Vec::with_capacity(windows.len());
        let mut prefix_max_end = Vec::with_capacity(windows.len());
        let mut max_end = f64::NEG_INFINITY;
        for (s, e) in windows {
            max_end = max_end.max(e);
            starts.push(s);
            prefix_max_end.push(max_end);
        }
        OutageIndex {
            starts,
            prefix_max_end,
        }
    }

    /// Hours of outage left at `now`: `max(end - now)` over windows
    /// covering `now` (half-open, like [`Outage::covers`]), 0.0 when
    /// none does.
    pub fn remaining(&self, now: f64) -> f64 {
        let k = self.starts.partition_point(|&s| s <= now);
        if k == 0 {
            return 0.0;
        }
        let max_end = self.prefix_max_end[k - 1];
        if max_end > now {
            max_end - now
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_half_open() {
        let o = Outage::new(1, 10.0, 20.0, OutageCause::Hardware);
        assert!(!o.covers(9.9));
        assert!(o.covers(10.0));
        assert!(o.covers(19.9));
        assert!(!o.covers(20.0));
        assert_eq!(o.duration(), 10.0);
    }

    #[test]
    fn security_breach_is_weeks_long() {
        let o = Outage::security_breach(3, 24.0, 3.0);
        assert_eq!(o.cause, OutageCause::SecurityBreach);
        assert_eq!(o.duration(), 3.0 * 168.0);
    }

    #[test]
    fn blocked_windows_filters_by_site() {
        let outs = vec![
            Outage::new(0, 0.0, 1.0, OutageCause::Hardware),
            Outage::new(1, 2.0, 3.0, OutageCause::Maintenance),
            Outage::new(0, 5.0, 6.0, OutageCause::Hardware),
        ];
        assert_eq!(blocked_windows(&outs, 0), vec![(0.0, 1.0), (5.0, 6.0)]);
        assert_eq!(blocked_windows(&outs, 1), vec![(2.0, 3.0)]);
        assert!(blocked_windows(&outs, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        Outage::new(0, 5.0, 5.0, OutageCause::Hardware);
    }

    /// The index must agree exactly with the linear scan it replaces —
    /// including on overlapping windows, where merging would be wrong
    /// (e.g. [0,10] and [5,20] at t=3: covering max is 10-3=7, a merged
    /// [0,20] would claim 17).
    #[test]
    fn outage_index_matches_linear_scan() {
        use spice_stats::rng::{seed_stream, unit_f64};
        let scan = |outages: &[Outage], now: f64| -> f64 {
            outages
                .iter()
                .filter(|o| o.site == 1 && o.covers(now))
                .map(|o| o.end - now)
                .fold(0.0, f64::max)
        };
        let mut outages = vec![
            Outage::new(1, 0.0, 10.0, OutageCause::Hardware),
            Outage::new(1, 5.0, 20.0, OutageCause::Maintenance),
            Outage::new(0, 0.0, 100.0, OutageCause::Hardware), // other site
        ];
        let idx = OutageIndex::build(&outages, 1);
        assert_eq!(idx.remaining(3.0), 7.0, "no window merging");
        assert_eq!(idx.remaining(5.0), 15.0);
        assert_eq!(idx.remaining(20.0), 0.0, "half-open end");
        assert_eq!(idx.remaining(-1.0), 0.0);
        // Randomized agreement over a messy overlap structure.
        for i in 0..40u64 {
            let a = 50.0 * unit_f64(seed_stream(7, 2 * i));
            let d = 0.1 + 30.0 * unit_f64(seed_stream(7, 2 * i + 1));
            outages.push(Outage::new(1, a, a + d, OutageCause::Hardware));
        }
        let idx = OutageIndex::build(&outages, 1);
        for t in 0..1000 {
            let now = f64::from(t) * 0.1;
            assert_eq!(idx.remaining(now), scan(&outages, now), "t = {now}");
        }
    }

    #[test]
    fn failure_model_none_never_fails() {
        let m = FailureModel::none();
        for site in crate::resource::paper_federation_sites() {
            for attempt in 1..5 {
                assert!(!m.launch_fails(7, 3, attempt, &site));
            }
            assert_eq!(m.crash_after(7, 3, 1, site.id), f64::INFINITY);
            assert_eq!(m.gateway_drop_after(7, 3, 1, site.id), f64::INFINITY);
        }
    }

    #[test]
    fn failure_sampling_is_deterministic() {
        let m = FailureModel::sc05();
        let site = &crate::resource::paper_federation_sites()[0];
        for attempt in 1..10 {
            assert_eq!(
                m.launch_fails(42, 5, attempt, site),
                m.launch_fails(42, 5, attempt, site)
            );
            assert_eq!(
                m.crash_after(42, 5, attempt, 0),
                m.crash_after(42, 5, attempt, 0)
            );
        }
    }

    #[test]
    fn launch_failure_rate_matches_probability() {
        let m = FailureModel::sc05();
        let sites = crate::resource::paper_federation_sites();
        let mature = &sites[0]; // NCSA: lightpath deployed
        let immature = &sites[4]; // NGS-Leeds: no lightpath
        let trials = 20_000u32;
        let count = |site: &Site| -> f64 {
            (0..trials)
                .filter(|&j| m.launch_fails(9, j, 1, site))
                .count() as f64
                / trials as f64
        };
        assert!((count(mature) - m.p_launch).abs() < 0.01);
        assert!((count(immature) - m.p_launch_immature).abs() < 0.01);
    }

    #[test]
    fn crash_times_follow_exponential_mean() {
        let m = FailureModel::sc05();
        let n = 20_000;
        let mean: f64 = (0..n).map(|j| m.crash_after(3, j, 1, 0)).sum::<f64>() / n as f64;
        let expect = 1.0 / m.crash_rate_per_hour;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "crash mean {mean} vs 1/rate {expect}"
        );
    }

    #[test]
    fn attempts_get_independent_samples() {
        // A launch failure on attempt 1 must not imply one on attempt 2:
        // over many jobs the two attempt streams must disagree somewhere.
        let m = FailureModel::sc05();
        let site = &crate::resource::paper_federation_sites()[4];
        let differs =
            (0..500).any(|j| m.launch_fails(11, j, 1, site) != m.launch_fails(11, j, 2, site));
        assert!(differs, "attempt streams are correlated");
    }
}
