//! Outage injection (§V-C-4).
//!
//! "for a duration close to SC05, the number of UK resources whose
//! utilization could be coordinated with the US TeraGrid nodes was
//! reduced to one. As luck would have it there was then a security breach
//! on that one UK node. It took several weeks to sanitize that node."

use crate::resource::SiteId;
use serde::{Deserialize, Serialize};

/// Why a site went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageCause {
    /// Hardware failure.
    Hardware,
    /// Security incident + sanitization (weeks-scale).
    SecurityBreach,
    /// Scheduled maintenance.
    Maintenance,
    /// Immature middleware deployment making the site unusable for
    /// coupled runs (§V-C-2).
    MiddlewareImmaturity,
}

/// A full-site outage window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Affected site.
    pub site: SiteId,
    /// Start (hours from campaign begin).
    pub start: f64,
    /// End (hours).
    pub end: f64,
    /// Cause (for reporting).
    pub cause: OutageCause,
}

impl Outage {
    /// Construct an outage.
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn new(site: SiteId, start: f64, end: f64, cause: OutageCause) -> Self {
        assert!(end > start, "outage window must be non-empty");
        Outage {
            site,
            start,
            end,
            cause,
        }
    }

    /// Duration in hours.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// True when the outage covers time `t`.
    pub fn covers(&self, t: f64) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// The paper's security-breach scenario: the given site is down for
    /// `weeks` weeks starting at `start_h`.
    pub fn security_breach(site: SiteId, start_h: f64, weeks: f64) -> Self {
        Outage::new(
            site,
            start_h,
            start_h + weeks * 7.0 * 24.0,
            OutageCause::SecurityBreach,
        )
    }
}

/// Blocked windows per site, as consumed by the capacity profiles.
pub fn blocked_windows(outages: &[Outage], site: SiteId) -> Vec<(f64, f64)> {
    outages
        .iter()
        .filter(|o| o.site == site)
        .map(|o| (o.start, o.end))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_half_open() {
        let o = Outage::new(1, 10.0, 20.0, OutageCause::Hardware);
        assert!(!o.covers(9.9));
        assert!(o.covers(10.0));
        assert!(o.covers(19.9));
        assert!(!o.covers(20.0));
        assert_eq!(o.duration(), 10.0);
    }

    #[test]
    fn security_breach_is_weeks_long() {
        let o = Outage::security_breach(3, 24.0, 3.0);
        assert_eq!(o.cause, OutageCause::SecurityBreach);
        assert_eq!(o.duration(), 3.0 * 168.0);
    }

    #[test]
    fn blocked_windows_filters_by_site() {
        let outs = vec![
            Outage::new(0, 0.0, 1.0, OutageCause::Hardware),
            Outage::new(1, 2.0, 3.0, OutageCause::Maintenance),
            Outage::new(0, 5.0, 6.0, OutageCause::Hardware),
        ];
        assert_eq!(blocked_windows(&outs, 0), vec![(0.0, 1.0), (5.0, 6.0)]);
        assert_eq!(blocked_windows(&outs, 1), vec![(2.0, 3.0)]);
        assert!(blocked_windows(&outs, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        Outage::new(0, 5.0, 5.0, OutageCause::Hardware);
    }
}
