//! Multi-hop paths: serial composition of links.

use super::link::Link;

/// A route as an ordered sequence of links (e.g. compute node → gateway →
/// trans-Atlantic lightpath → visualization host).
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    links: Vec<Link>,
}

impl Path {
    /// A path over the given hops.
    ///
    /// # Panics
    /// Panics on an empty hop list.
    pub fn new(links: Vec<Link>) -> Self {
        assert!(!links.is_empty(), "a path needs at least one link");
        Path { links }
    }

    /// Hop count.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// End-to-end one-way latency sample (ms) for message `n`.
    pub fn sample_latency_ms(&self, seed: u64, n: u64) -> f64 {
        self.links
            .iter()
            .enumerate()
            .map(|(h, l)| l.sample_latency_ms(seed.wrapping_add(h as u64 * 0x9E37), n))
            .sum()
    }

    /// Whether message `n` survives every hop.
    pub fn sample_delivery(&self, seed: u64, n: u64) -> bool {
        self.links
            .iter()
            .enumerate()
            .all(|(h, l)| l.sample_delivery(seed.wrapping_add(h as u64 * 0x51ED), n))
    }

    /// Effective end-to-end loss probability (independent hops).
    pub fn loss(&self) -> f64 {
        1.0 - self.links.iter().map(|l| 1.0 - l.loss).product::<f64>()
    }

    /// Bottleneck bandwidth (Mbit/s).
    pub fn bandwidth_mbps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Transfer + propagation time (ms) for a message of `bytes`,
    /// sampled for message counter `n` (store-and-forward per hop is
    /// approximated by bottleneck serialization once plus summed
    /// latencies — the regime of long fat networks).
    pub fn message_time_ms(&self, bytes: u64, seed: u64, n: u64) -> f64 {
        let bits = bytes as f64 * 8.0;
        self.sample_latency_ms(seed, n) + bits / (self.bandwidth_mbps() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::link::QosProfile;

    fn two_hop() -> Path {
        Path::new(vec![
            QosProfile::Lan.link(),
            QosProfile::TransAtlanticLightpath.link(),
        ])
    }

    #[test]
    fn latency_adds_over_hops() {
        let p = two_hop();
        let single = QosProfile::TransAtlanticLightpath.link();
        // LAN adds only ~0.2 ms to the 45 ms lightpath.
        let ps = p.sample_latency_ms(1, 0);
        let ss = single.sample_latency_ms(1, 0);
        assert!(ps > ss * 0.99);
        assert!(ps < ss + 2.0);
    }

    #[test]
    fn loss_composes() {
        let a = Link {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            loss: 0.1,
            bandwidth_mbps: 10.0,
            lightpath: false,
        };
        let p = Path::new(vec![a, a]);
        assert!((p.loss() - 0.19).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_bandwidth() {
        let p = Path::new(vec![
            QosProfile::Lan.link(),                    // 1000
            QosProfile::TransAtlanticCommodity.link(), // 100
        ]);
        assert_eq!(p.bandwidth_mbps(), 100.0);
    }

    #[test]
    fn message_time_includes_serialization() {
        let p = two_hop();
        let small = p.message_time_ms(1_000, 4, 0);
        let large = p.message_time_ms(10_000_000, 4, 0);
        assert!(large > small + 50.0, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        Path::new(vec![]);
    }
}
