//! Single-link QoS model.

use serde::{Deserialize, Serialize};
use spice_stats::rng::seed_stream;

/// A point-to-point network link with stochastic QoS.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Link {
    /// Base one-way latency (ms).
    pub latency_ms: f64,
    /// Jitter: standard deviation of the latency (ms), sampled from a
    /// truncated Gaussian (latency never below 50% of base).
    pub jitter_ms: f64,
    /// Independent per-packet loss probability.
    pub loss: f64,
    /// Usable bandwidth (Mbit/s).
    pub bandwidth_mbps: f64,
    /// Whether this is a dedicated lightpath (diagnostics only).
    pub lightpath: bool,
}

/// Named QoS profiles from the paper's setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosProfile {
    /// Dedicated trans-Atlantic optical lightpath (UKLight/GLIF):
    /// deterministic propagation delay, negligible jitter and loss,
    /// 1 Gbit/s provisioned.
    TransAtlanticLightpath,
    /// General-purpose production internet across the Atlantic in 2005:
    /// similar propagation delay but queueing jitter and real loss.
    TransAtlanticCommodity,
    /// Campus/metro LAN between co-located resources.
    Lan,
}

impl QosProfile {
    /// The link parameters of this profile.
    pub fn link(self) -> Link {
        match self {
            QosProfile::TransAtlanticLightpath => Link {
                latency_ms: 45.0,
                jitter_ms: 0.1,
                loss: 1e-6,
                bandwidth_mbps: 1000.0,
                lightpath: true,
            },
            QosProfile::TransAtlanticCommodity => Link {
                latency_ms: 55.0,
                jitter_ms: 15.0,
                loss: 0.005,
                bandwidth_mbps: 100.0,
                lightpath: false,
            },
            QosProfile::Lan => Link {
                latency_ms: 0.2,
                jitter_ms: 0.02,
                loss: 1e-7,
                bandwidth_mbps: 1000.0,
                lightpath: false,
            },
        }
    }
}

impl Link {
    /// Sample the one-way latency (ms) of packet `n` on stream `seed`.
    pub fn sample_latency_ms(&self, seed: u64, n: u64) -> f64 {
        // Two uniforms → Box-Muller normal for the jitter term.
        let u1 = (seed_stream(seed, 2 * n) >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (seed_stream(seed, 2 * n + 1) >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * (u1.max(1e-300)).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.latency_ms + self.jitter_ms * z).max(self.latency_ms * 0.5)
    }

    /// Whether packet `n` is delivered (true) or lost (false).
    pub fn sample_delivery(&self, seed: u64, n: u64) -> bool {
        let u = (seed_stream(seed ^ 0xDEAD_BEEF, n) >> 11) as f64 / (1u64 << 53) as f64;
        u >= self.loss
    }

    /// Transfer time (ms) for `bytes` at the link bandwidth (excluding
    /// latency).
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.bandwidth_mbps * 1e3) // Mbit/s → bit/ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_stats::RunningStats;

    #[test]
    fn lightpath_beats_commodity_on_every_metric() {
        let lp = QosProfile::TransAtlanticLightpath.link();
        let gp = QosProfile::TransAtlanticCommodity.link();
        assert!(lp.jitter_ms < gp.jitter_ms);
        assert!(lp.loss < gp.loss);
        assert!(lp.bandwidth_mbps > gp.bandwidth_mbps);
        assert!(lp.lightpath && !gp.lightpath);
    }

    #[test]
    fn latency_sampling_statistics() {
        let link = QosProfile::TransAtlanticCommodity.link();
        let mut rs = RunningStats::new();
        for n in 0..50_000 {
            rs.push(link.sample_latency_ms(1, n));
        }
        assert!(
            (rs.mean() - link.latency_ms).abs() < 1.0,
            "mean {}",
            rs.mean()
        );
        // Truncation slightly shrinks the std; allow 20%.
        assert!(
            (rs.std_dev() - link.jitter_ms).abs() < 0.2 * link.jitter_ms,
            "std {}",
            rs.std_dev()
        );
    }

    #[test]
    fn latency_never_collapses() {
        let link = Link {
            latency_ms: 10.0,
            jitter_ms: 50.0,
            loss: 0.0,
            bandwidth_mbps: 1.0,
            lightpath: false,
        };
        for n in 0..10_000 {
            assert!(link.sample_latency_ms(2, n) >= 5.0);
        }
    }

    #[test]
    fn loss_rate_matches_configuration() {
        let link = Link {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            loss: 0.05,
            bandwidth_mbps: 1.0,
            lightpath: false,
        };
        let delivered =
            (0..100_000).filter(|&n| link.sample_delivery(3, n)).count() as f64 / 100_000.0;
        assert!(
            (delivered - 0.95).abs() < 0.005,
            "delivery rate {delivered}"
        );
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let link = QosProfile::Lan.link(); // 1000 Mbit/s
                                           // 1 MB = 8 Mbit → 8 ms at 1000 Mbit/s... wait: 8e6 bits / 1e6 bit/ms = 8 ms.
        assert!((link.transfer_ms(1_000_000) - 8.0).abs() < 1e-9);
        assert!(link.transfer_ms(2_000_000) > link.transfer_ms(1_000_000));
    }

    #[test]
    fn sampling_deterministic() {
        let link = QosProfile::TransAtlanticCommodity.link();
        assert_eq!(link.sample_latency_ms(9, 4), link.sample_latency_ms(9, 4));
        assert_ne!(link.sample_latency_ms(9, 4), link.sample_latency_ms(9, 5));
    }
}
