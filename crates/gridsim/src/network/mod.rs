//! Network modeling: links with latency/jitter/loss, QoS profiles
//! (general-purpose internet vs optical lightpath), and multi-hop paths.
//!
//! §II: interactive MD needs "high quality-of-service (QoS) — as defined
//! by low latency, jitter and packet loss — networks to ensure reliable
//! bi-directional communication", provided in 2005 by optical lightpaths
//! (UKLight / GLIF).

pub mod link;
pub mod path;
pub mod tcp;

pub use link::{Link, QosProfile};
pub use path::Path;
