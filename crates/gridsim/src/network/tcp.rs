//! TCP macroscopic throughput over long fat networks — the quantitative
//! version of why the paper needed lightpaths rather than "a general
//! purpose network".
//!
//! The Mathis model: a single standard TCP flow sustains at most
//! `throughput ≈ MSS / (RTT · √loss)` — on a trans-Atlantic RTT, even
//! 0.1% loss caps a flow far below what the paper's frame streams need.
//! Dedicated lightpaths escape by driving loss to ~0.

use super::link::Link;

/// Maximum segment size used by 2005-era stacks (bytes).
pub const DEFAULT_MSS: u64 = 1460;

/// Mathis et al. steady-state TCP throughput (Mbit/s) for one flow over a
/// link, capped by the link bandwidth. `C ≈ √(3/2)` for periodic loss.
pub fn mathis_throughput_mbps(link: &Link, mss_bytes: u64) -> f64 {
    let rtt_s = 2.0 * link.latency_ms / 1e3;
    if link.loss <= 0.0 {
        return link.bandwidth_mbps;
    }
    let c = (1.5f64).sqrt();
    let bytes_per_s = c * mss_bytes as f64 / (rtt_s * link.loss.sqrt());
    (bytes_per_s * 8.0 / 1e6).min(link.bandwidth_mbps)
}

/// Number of parallel TCP flows needed to sustain `target_mbps` over the
/// link (the GridFTP-era workaround for lossy paths). Returns `None` when
/// even unlimited flows cannot help (target above link capacity).
pub fn flows_needed(link: &Link, target_mbps: f64, mss_bytes: u64) -> Option<u32> {
    if target_mbps > link.bandwidth_mbps {
        return None;
    }
    let per_flow = mathis_throughput_mbps(link, mss_bytes);
    Some((target_mbps / per_flow).ceil().max(1.0) as u32)
}

/// Time (s) to move `bytes` over the link with one TCP flow at the Mathis
/// rate (ignoring slow-start — long transfers).
pub fn transfer_time_s(link: &Link, bytes: u64, mss_bytes: u64) -> f64 {
    let mbps = mathis_throughput_mbps(link, mss_bytes);
    (bytes as f64 * 8.0 / 1e6) / mbps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QosProfile;

    #[test]
    fn lossless_lightpath_hits_line_rate() {
        let mut lp = QosProfile::TransAtlanticLightpath.link();
        lp.loss = 0.0;
        assert_eq!(mathis_throughput_mbps(&lp, DEFAULT_MSS), lp.bandwidth_mbps);
    }

    #[test]
    fn commodity_loss_craters_throughput() {
        let gp = QosProfile::TransAtlanticCommodity.link();
        // RTT 110 ms, loss 0.5%: Mathis ≈ 1.2 Mbit/s — two orders below
        // the 100 Mbit/s line rate.
        let t = mathis_throughput_mbps(&gp, DEFAULT_MSS);
        assert!(t < 2.0, "got {t} Mbit/s");
        assert!(t > 0.5);
    }

    #[test]
    fn lightpath_vs_commodity_gap_is_large() {
        let lp = QosProfile::TransAtlanticLightpath.link();
        let gp = QosProfile::TransAtlanticCommodity.link();
        let ratio =
            mathis_throughput_mbps(&lp, DEFAULT_MSS) / mathis_throughput_mbps(&gp, DEFAULT_MSS);
        assert!(
            ratio > 50.0,
            "the paper's QoS argument: lightpath/commodity ratio {ratio:.0}"
        );
    }

    #[test]
    fn throughput_decreases_with_loss_and_rtt() {
        let mut a = QosProfile::TransAtlanticCommodity.link();
        let base = mathis_throughput_mbps(&a, DEFAULT_MSS);
        a.loss *= 4.0;
        let lossy = mathis_throughput_mbps(&a, DEFAULT_MSS);
        assert!((lossy - base / 2.0).abs() < 0.05 * base, "√loss scaling");
        let mut b = QosProfile::TransAtlanticCommodity.link();
        b.latency_ms *= 2.0;
        assert!((mathis_throughput_mbps(&b, DEFAULT_MSS) - base / 2.0).abs() < 0.05 * base);
    }

    #[test]
    fn parallel_flows_fill_the_gap() {
        let gp = QosProfile::TransAtlanticCommodity.link();
        let n = flows_needed(&gp, 50.0, DEFAULT_MSS).unwrap();
        assert!(n > 10, "lossy trans-Atlantic needs many flows: {n}");
        assert_eq!(
            flows_needed(&gp, 1000.0, DEFAULT_MSS),
            None,
            "above line rate"
        );
        let lp = QosProfile::TransAtlanticLightpath.link();
        // Even the lightpath's residual 1e-6 loss caps a single 90 ms-RTT
        // flow near 160 Mbit/s — still only a handful of flows needed.
        assert!(flows_needed(&lp, 900.0, DEFAULT_MSS).unwrap() <= 8);
    }

    #[test]
    fn transfer_time_scales_inversely() {
        let gp = QosProfile::TransAtlanticCommodity.link();
        let t1 = transfer_time_s(&gp, 10_000_000, DEFAULT_MSS);
        let t2 = transfer_time_s(&gp, 20_000_000, DEFAULT_MSS);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
