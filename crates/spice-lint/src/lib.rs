//! `spice-lint`: workspace determinism & numerical-safety analyzer.
//!
//! SPICE's science rests on bit-reproducible, NaN-free simulation:
//! Jarzynski's exponential work average is dominated by rare tail
//! trajectories, so one nondeterministic iteration order or NaN-unsafe
//! sort silently corrupts the PMF. This crate turns those conventions
//! into enforced invariants, as three layers (DESIGN.md §10):
//!
//! 1. **Syntax** — a dependency-free lexer (`lexer`) plus a
//!    brace-matched scope tree per file (`parser`): modules, fn bodies,
//!    loop bodies, test gating, and rayon-chain regions.
//! 2. **Workspace semantics** — fn definitions and call sites across
//!    every crate resolved into a deterministic call graph
//!    (`callgraph`), with entropy taint propagated backwards.
//! 3. **Rules** — per-file rules (`rules`) and the interprocedural
//!    E001 on top, reporting `file:line:col` diagnostics suppressible
//!    only through a written `// spice-lint: allow(RULE) reason`
//!    annotation or a `lint-allow.toml` baseline entry (`allow`).

pub mod allow;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

use allow::{parse_baseline, parse_inline, Baseline};
use rules::{run_rules, FileContext, RawDiagnostic};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// A reportable violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001` … `A002`).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Run the per-file rules over an already-lexed file, merge in
/// `extra` workspace-level raw diagnostics (E001 sites owned by this
/// file), and apply both suppression layers plus allow hygiene.
fn lint_lexed(
    rel_path: &str,
    lexed: &lexer::Lexed,
    baseline: &Baseline,
    extra: Vec<RawDiagnostic>,
) -> Vec<Diagnostic> {
    let ctx = FileContext::from_rel_path(rel_path);
    let file_allows = parse_inline(&lexed.comments);
    let mut raw = run_rules(&ctx, lexed);
    raw.extend(extra);

    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let RawDiagnostic {
            rule,
            line,
            col,
            message,
        } = d;
        // Both suppression layers are asked even after a hit, so `used`
        // flags stay accurate for stale-allow detection.
        let inline_hit = file_allows.suppresses(rule, line);
        let baseline_hit = baseline.suppresses(rule, rel_path);
        if inline_hit || baseline_hit {
            continue;
        }
        out.push(Diagnostic {
            rule,
            path: rel_path.to_string(),
            line,
            col,
            message,
        });
    }
    for m in &file_allows.malformed {
        out.push(Diagnostic {
            rule: "A001",
            path: rel_path.to_string(),
            line: m.line,
            col: 1,
            message: m.problem.clone(),
        });
    }
    for a in &file_allows.allows {
        if !a.used.get() {
            out.push(Diagnostic {
                rule: "A002",
                path: rel_path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "stale allow({}): nothing on this or the next line fires that rule",
                    a.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Lint one file's source against the per-file rules, applying inline
/// allows and the baseline. `rel_path` drives crate scoping and must be
/// workspace-relative with `/` separators. The interprocedural rule
/// E001 needs the whole workspace and only runs in [`lint_workspace`].
pub fn lint_source(rel_path: &str, src: &str, baseline: &Baseline) -> Vec<Diagnostic> {
    lint_lexed(rel_path, &lexer::lex(src), baseline, Vec::new())
}

/// Result of a whole-workspace lint.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Directories never scanned: build output, the offline dependency
/// stand-ins (third-party API surface, not workspace code), VCS
/// internals, and lint fixtures (intentionally-bad snippets).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | "vendor-stubs" | ".git" | "fixtures")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !skip_dir(&name) {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Load the baseline from `<root>/lint-allow.toml` (an absent file is an
/// empty baseline).
pub fn load_baseline(root: &Path) -> Baseline {
    match fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(src) => parse_baseline(&src),
        Err(_) => Baseline::default(),
    }
}

/// Lint every `.rs` file under `root` (the workspace checkout): the
/// per-file pass on each file, then the workspace call graph for E001,
/// then baseline hygiene (parse problems, entries that suppress
/// nothing, and entries whose file no longer exists).
pub fn lint_workspace(root: &Path) -> WorkspaceReport {
    let baseline = load_baseline(root);
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);

    // Phase 1: read + lex everything once; both the per-file rules and
    // the call graph work from the same token streams.
    let mut lexed_files: Vec<(String, lexer::Lexed)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        lexed_files.push((rel, lexer::lex(&src)));
    }

    // Phase 2: workspace call graph → E001 raw diagnostics, grouped by
    // the file that owns the flagged public fn (so its inline allows
    // and baseline entries apply like any other rule).
    let refs: Vec<(String, &lexer::Lexed)> = lexed_files
        .iter()
        .map(|(rel, lexed)| (rel.clone(), lexed))
        .collect();
    let graph = callgraph::CallGraph::build(&refs);
    let mut e001: BTreeMap<String, Vec<RawDiagnostic>> = BTreeMap::new();
    for (file, d) in graph.e001() {
        e001.entry(file).or_default().push(d);
    }

    let mut report = WorkspaceReport::default();
    for (rel, lexed) in &lexed_files {
        report.files_scanned += 1;
        let extra = e001.remove(rel).unwrap_or_default();
        report
            .diagnostics
            .extend(lint_lexed(rel, lexed, &baseline, extra));
    }

    // Baseline hygiene: parse problems and entries that suppress
    // nothing anywhere in the workspace are violations too. An unused
    // entry whose path prefix matches no scanned file is a rename/delete
    // leftover and gets the distinct missing-file message.
    for p in &baseline.problems {
        report.diagnostics.push(Diagnostic {
            rule: "A001",
            path: "lint-allow.toml".into(),
            line: 1,
            col: 1,
            message: p.clone(),
        });
    }
    for e in &baseline.entries {
        if !e.used.get() {
            let file_exists = lexed_files
                .iter()
                .any(|(rel, _)| rel.starts_with(e.path.as_str()));
            let message = if file_exists {
                format!(
                    "stale baseline entry: rule {} at path `{}` suppresses nothing",
                    e.rule, e.path
                )
            } else {
                format!(
                    "stale baseline entry: rule {} at path `{}` — no file under that \
                     path exists in the workspace (renamed or deleted?); remove or \
                     update the entry",
                    e.rule, e.path
                )
            };
            report.diagnostics.push(Diagnostic {
                rule: "A002",
                path: "lint-allow.toml".into(),
                line: 1,
                col: 1,
                message,
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

/// Escape a string for a JSON string literal (hand-rolled: the
/// workspace is dependency-free).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a workspace report as stable, sorted JSON — the machine
/// interface CI archives as an artifact. Diagnostics keep the
/// (path, line, col, rule) order [`lint_workspace`] produced, so equal
/// inputs yield byte-equal output.
pub fn report_to_json(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"violations\": {},\n  \"diagnostics\": [",
        report.files_scanned,
        report.diagnostics.len()
    ));
    for (k, d) in report.diagnostics.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Find the workspace root: walk up from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_suppresses_and_is_marked_used() {
        let src = "\
let a = b.unwrap(); // spice-lint: allow(P001) invariant: b set in new()
let c = d.unwrap();
";
        let diags = lint_source("crates/md/src/x.rs", src, &Baseline::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "P001");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn allow_above_the_line_works() {
        let src = "\
// spice-lint: allow(P001) checked by caller
let a = b.unwrap();
";
        let diags = lint_source("crates/md/src/x.rs", src, &Baseline::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stale_allow_reported() {
        let src = "// spice-lint: allow(D001) nothing here uses maps\nlet a = 1;\n";
        let diags = lint_source("crates/md/src/x.rs", src, &Baseline::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "A002");
    }

    #[test]
    fn reasonless_allow_reported_and_does_not_suppress() {
        let src = "let a = b.unwrap(); // spice-lint: allow(P001)\n";
        let diags = lint_source("crates/md/src/x.rs", src, &Baseline::default());
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"P001"), "{diags:?}");
        assert!(rules.contains(&"A001"), "{diags:?}");
    }

    #[test]
    fn baseline_suppresses_by_path_prefix() {
        let baseline = parse_baseline(
            "[[allow]]\nrule = \"P001\"\npath = \"crates/md/src/x.rs\"\nreason = \"legacy\"\n",
        );
        let diags = lint_source("crates/md/src/x.rs", "let a = b.unwrap();", &baseline);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(baseline.entries[0].used.get());
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let report = WorkspaceReport {
            diagnostics: vec![Diagnostic {
                rule: "T001",
                path: "crates/md/src/x.rs".into(),
                line: 3,
                col: 7,
                message: "a \"quoted\"\nmessage\\".into(),
            }],
            files_scanned: 1,
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains(r#"\"quoted\"\nmessage\\"#), "{json}");
        // Same input, same bytes.
        assert_eq!(json, report_to_json(&report));
        // Empty report closes the array cleanly.
        let empty = report_to_json(&WorkspaceReport::default());
        assert!(empty.contains("\"diagnostics\": []"), "{empty}");
    }
}
