//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p spice-lint --            # report violations (exit 0)
//! cargo run -p spice-lint -- --deny     # exit nonzero on any violation
//! cargo run -p spice-lint -- --list-rules
//! cargo run -p spice-lint -- --root DIR # lint another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "spice-lint: workspace determinism & numerical-safety analyzer\n\
                     \n\
                     USAGE: spice-lint [--deny] [--root DIR] [--list-rules]\n\
                     \n\
                     --deny        exit nonzero when any non-allowed violation remains\n\
                     --root DIR    workspace root to scan (default: walk up from cwd)\n\
                     --list-rules  print the rule catalog and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in spice_lint::rules::RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match spice_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = spice_lint::lint_workspace(&root);
    for d in &report.diagnostics {
        println!("{d}");
    }
    let n = report.diagnostics.len();
    eprintln!(
        "spice-lint: {} violation{} across {} files",
        n,
        if n == 1 { "" } else { "s" },
        report.files_scanned
    );
    if deny && n > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
