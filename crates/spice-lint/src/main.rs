//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p spice-lint --                  # report violations (exit 0)
//! cargo run -p spice-lint -- --deny           # exit nonzero on any violation
//! cargo run -p spice-lint -- --format json    # stable machine-readable report
//! cargo run -p spice-lint -- --explain R002   # print a rule's full rationale
//! cargo run -p spice-lint -- --check-baseline # lint-allow.toml hygiene only
//! cargo run -p spice-lint -- --list-rules
//! cargo run -p spice-lint -- --root DIR       # lint another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_rules = false;
    let mut check_baseline = false;
    let mut json = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--check-baseline" => check_baseline = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "error: --format takes `json` or `text`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    eprintln!("error: --explain requires a rule id (e.g. R002)");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "spice-lint: workspace determinism & numerical-safety analyzer\n\
                     \n\
                     USAGE: spice-lint [--deny] [--root DIR] [--format json|text]\n\
                     \x20                 [--explain RULE] [--check-baseline] [--list-rules]\n\
                     \n\
                     --deny            exit nonzero when any non-allowed violation remains\n\
                     --root DIR        workspace root to scan (default: walk up from cwd)\n\
                     --format json     emit a stable, sorted JSON report on stdout\n\
                     --explain RULE    print one rule's summary and full rationale\n\
                     --check-baseline  report only lint-allow.toml hygiene (stale/missing\n\
                     \x20                 entries, parse problems); exit nonzero on any\n\
                     --list-rules      print the rule catalog and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in spice_lint::rules::RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(id) = explain {
        return match spice_lint::rules::rule_info(&id) {
            Some(rule) => {
                println!("{}: {}\n\n{}", rule.id, rule.summary, rule.detail);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule `{id}` — run --list-rules for the catalog");
                ExitCode::from(2)
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match spice_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut report = spice_lint::lint_workspace(&root);
    if check_baseline {
        // Baseline hygiene only: the diagnostics attributed to the
        // baseline file itself (stale entries, missing files, parse
        // problems). Always denying — a rotten baseline is never OK.
        report.diagnostics.retain(|d| d.path == "lint-allow.toml");
        deny = true;
    }

    if json {
        print!("{}", spice_lint::report_to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    let n = report.diagnostics.len();
    eprintln!(
        "spice-lint: {} violation{} across {} files",
        n,
        if n == 1 { "" } else { "s" },
        report.files_scanned
    );
    if deny && n > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
