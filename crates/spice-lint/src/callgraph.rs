//! Workspace semantic layer: fn definitions, call sites, and a
//! deterministic cross-crate call graph with entropy-taint propagation.
//!
//! The per-file rules can prove a fn *directly* touches ambient entropy
//! (D002); they cannot see that a "clean" public fn calls one that does.
//! This module extracts every fn definition (via the scope tree) and
//! every call site (free calls, `path::calls`, unambiguous method
//! calls), resolves names deterministically (same module beats same
//! crate beats workspace-wide; adjacency is sorted), and propagates
//! entropy taint backwards from `thread_rng`/`from_entropy`/
//! `Instant::now`/`SystemTime` sites through the graph — cycle-tolerant
//! BFS, shortest chain retained. Rule E001 fires at the public boundary
//! with the full propagation chain in the diagnostic.

use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::{ScopeKind, ScopeTree};
use crate::rules::{FileContext, RawDiagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// One fn definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Qualified path: crate dir + inline modules + name
    /// (`smd::ensemble::run_ensemble`). Root-package files use `root`.
    pub qual: String,
    /// Bare fn name.
    pub name: String,
    /// Crate directory under `crates/` (`None` for root-package files).
    pub crate_dir: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line of the fn name.
    pub line: u32,
    /// 1-indexed column of the fn name.
    pub col: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Test context: test tree file or `#[cfg(test)]`-gated scope.
    pub in_test: bool,
    /// Lives in an entropy-exempt crate (bench/telemetry).
    pub entropy_exempt: bool,
    /// Direct ambient-entropy use in the body: `(token, line)`.
    pub entropy: Option<(String, u32)>,
}

/// A call site before resolution.
#[derive(Debug)]
struct CallRef {
    /// Caller fn index (into the per-build def list).
    caller: usize,
    /// Path segments before the name (empty for bare calls/methods).
    segments: Vec<String>,
    /// Callee name.
    name: String,
    /// True for `.name(…)` method syntax.
    is_method: bool,
}

/// The resolved, deterministic workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All fn definitions, sorted by (file, line, col); the index is the
    /// fn id used everywhere else.
    pub fns: Vec<FnDef>,
    /// Sorted, deduplicated callee ids per caller.
    pub callees: Vec<Vec<usize>>,
    /// Sorted, deduplicated caller ids per callee (reverse edges).
    pub callers: Vec<Vec<usize>>,
}

/// Taint state for one fn: how far from a direct entropy site, and the
/// next hop toward it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taint {
    /// 0 for direct entropy use; +1 per call edge.
    pub dist: u32,
    /// Next fn id on the shortest chain toward the source (`None` at
    /// the direct site).
    pub via: Option<usize>,
}

/// Ambient-entropy idents the taint seeds on (mirrors rule D002).
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "SystemTime"];

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "mut", "ref", "as",
    "use", "pub", "fn", "impl", "where", "unsafe", "async", "await", "dyn", "break", "continue",
    "else", "struct", "enum", "trait", "type", "mod", "const", "static", "crate", "super",
];

/// Map a workspace-relative path to (crate dir, file module path).
/// `crates/md/src/forces/nonbonded.rs` → (`Some("md")`,
/// `["forces", "nonbonded"]`); `lib.rs`/`main.rs`/`mod.rs` contribute no
/// segment of their own.
fn file_module_path(rel_path: &str) -> (Option<String>, Vec<String>) {
    let comps: Vec<&str> = rel_path.split('/').collect();
    let (crate_dir, rest): (Option<String>, &[&str]) = match comps.as_slice() {
        ["crates", name, "src", rest @ ..] => (Some((*name).to_string()), rest),
        ["crates", name, rest @ ..] => (Some((*name).to_string()), rest),
        ["src", rest @ ..] => (None, rest),
        rest => (None, rest),
    };
    let mut mods = Vec::new();
    for (k, c) in rest.iter().enumerate() {
        let last = k + 1 == rest.len();
        if last {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if !matches!(stem, "lib" | "main" | "mod") {
                mods.push(stem.to_string());
            }
        } else {
            mods.push((*c).to_string());
        }
    }
    (crate_dir, mods)
}

/// Normalize a call-path segment: external crate names like `spice_md`
/// refer to the workspace crate dir `md`.
fn normalize_segment(seg: &str) -> &str {
    seg.strip_prefix("spice_").unwrap_or(seg)
}

/// True when `tokens[i]` (`Instant`) is followed by `:: now`.
fn is_instant_now(tokens: &[Token], i: usize) -> bool {
    tokens[i].text == "Instant"
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.text == "now")
}

impl CallGraph {
    /// Build the graph from `(rel_path, lexed)` pairs. Callers should
    /// pass files sorted by path; definitions get ids in (file, token)
    /// order either way.
    pub fn build(files: &[(String, &Lexed)]) -> CallGraph {
        let mut fns: Vec<FnDef> = Vec::new();
        let mut calls: Vec<CallRef> = Vec::new();

        let mut sorted: Vec<&(String, &Lexed)> = files.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));

        for (rel, lexed) in sorted {
            extract_file(rel, lexed, &mut fns, &mut calls);
        }

        // Name → sorted candidate ids.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }

        let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
        for call in &calls {
            for id in resolve(&fns, &by_name, call) {
                if id != call.caller {
                    callees[call.caller].insert(id);
                }
            }
        }
        let callees: Vec<Vec<usize>> = callees
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (caller, cs) in callees.iter().enumerate() {
            for &callee in cs {
                callers[callee].push(caller);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        CallGraph {
            fns,
            callees,
            callers,
        }
    }

    /// Propagate entropy taint backwards from direct sites. BFS over the
    /// reverse edges in sorted order — cycle-tolerant, shortest chain
    /// kept, fully deterministic.
    pub fn entropy_taint(&self) -> Vec<Option<Taint>> {
        let mut taint: Vec<Option<Taint>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.entropy.is_some() && !f.in_test && !f.entropy_exempt {
                taint[id] = Some(Taint { dist: 0, via: None });
                queue.push_back(id);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let dist = taint[cur].as_ref().map_or(0, |t| t.dist);
            for &caller in &self.callers[cur] {
                let f = &self.fns[caller];
                if taint[caller].is_none() && !f.in_test && !f.entropy_exempt {
                    taint[caller] = Some(Taint {
                        dist: dist + 1,
                        via: Some(cur),
                    });
                    queue.push_back(caller);
                }
            }
        }
        taint
    }

    /// Render the propagation chain for a tainted fn:
    /// `a::f -> a::g -> b::h` ending at the direct-entropy fn.
    pub fn chain(&self, taint: &[Option<Taint>], mut id: usize) -> String {
        let mut parts = vec![self.fns[id].qual.clone()];
        let mut guard = 0usize;
        while let Some(t) = taint.get(id).and_then(|t| t.as_ref()) {
            let Some(next) = t.via else { break };
            parts.push(self.fns[next].qual.clone());
            id = next;
            guard += 1;
            if guard > self.fns.len() {
                break; // defensive: chains cannot be longer than the graph
            }
        }
        parts.join(" -> ")
    }

    /// Rule E001: public fns that reach entropy only *transitively*
    /// (direct use is D002's territory). Returns `(file, diagnostic)`
    /// pairs sorted by (file, line, col).
    pub fn e001(&self) -> Vec<(String, RawDiagnostic)> {
        let taint = self.entropy_taint();
        let mut out: Vec<(String, RawDiagnostic)> = Vec::new();
        for (id, f) in self.fns.iter().enumerate() {
            let Some(t) = &taint[id] else { continue };
            if t.dist == 0 || !f.is_pub || f.in_test || f.entropy_exempt {
                continue;
            }
            // Find the chain's terminal direct-entropy fn for the source
            // location in the message.
            let mut term = id;
            while let Some(Taint {
                via: Some(next), ..
            }) = &taint[term]
            {
                term = *next;
            }
            let (src_tok, src_line) = self.fns[term]
                .entropy
                .clone()
                .unwrap_or_else(|| ("ambient entropy".to_string(), self.fns[term].line));
            out.push((
                f.file.clone(),
                RawDiagnostic {
                    rule: "E001",
                    line: f.line,
                    col: f.col,
                    message: format!(
                        "pub fn `{}` transitively reaches `{}` ({}:{}): {} — thread seeds \
                         and clocks through explicit parameters, or confine the entropy \
                         behind the telemetry boundary",
                        f.name,
                        src_tok,
                        self.fns[term].file,
                        src_line,
                        self.chain(&taint, id),
                    ),
                },
            ));
        }
        out.sort_by(|a, b| (&a.0, a.1.line, a.1.col).cmp(&(&b.0, b.1.line, b.1.col)));
        out
    }
}

/// Extract fn defs + call refs from one file.
fn extract_file(rel: &str, lexed: &Lexed, fns: &mut Vec<FnDef>, calls: &mut Vec<CallRef>) {
    let ctx = FileContext::from_rel_path(rel);
    let tokens = &lexed.tokens;
    let tree = ScopeTree::build(tokens);
    let (crate_dir, file_mods) = file_module_path(rel);
    let entropy_exempt = ctx.entropy_exempt();

    // Innermost-fn ownership per token: children follow parents in the
    // scopes vec, so later fills win.
    let mut owner: Vec<Option<usize>> = vec![None; tokens.len()];
    let mut scope_to_fn: BTreeMap<usize, usize> = BTreeMap::new();
    let base = fns.len();
    for (local, (scope_idx, sig)) in tree.fns().enumerate() {
        let s = &tree.scopes[scope_idx];
        let mut qual_parts: Vec<String> =
            vec![crate_dir.clone().unwrap_or_else(|| "root".to_string())];
        qual_parts.extend(file_mods.iter().cloned());
        qual_parts.extend(tree.module_path(scope_idx));
        qual_parts.push(sig.name.clone());
        fns.push(FnDef {
            qual: qual_parts.join("::"),
            name: sig.name.clone(),
            crate_dir: crate_dir.clone(),
            file: rel.to_string(),
            line: sig.line,
            col: sig.col,
            is_pub: sig.is_pub,
            in_test: ctx.test_file || tree.in_test(scope_idx),
            entropy_exempt,
            entropy: None,
        });
        scope_to_fn.insert(scope_idx, base + local);
        let end = s.close.min(tokens.len());
        for o in owner.iter_mut().take(end).skip(s.open + 1) {
            *o = Some(base + local);
        }
    }
    // Second pass: re-fill so nested fns own their tokens (scopes vec is
    // already parent-before-child, so the loop above suffices — nested
    // fns were pushed later and overwrote the parent's range).

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let Some(fn_id) = owner[i] else { continue };
        let name = tok.text.as_str();
        // Direct entropy.
        let hit = if ENTROPY_IDENTS.contains(&name) {
            Some(name.to_string())
        } else if is_instant_now(tokens, i) {
            Some("Instant::now".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            let e = &mut fns[fn_id].entropy;
            if e.is_none() {
                *e = Some((what, tok.line));
            }
            continue;
        }
        // Calls: `ident (`, not a macro, not the def's own name token.
        let followed_by_paren = tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Punct('('));
        if !followed_by_paren
            || NON_CALL_KEYWORDS.contains(&name)
            || (i > 0 && tokens[i - 1].text == "fn")
        {
            continue;
        }
        if i > 0 && tokens[i - 1].kind == TokKind::Punct('.') {
            calls.push(CallRef {
                caller: fn_id,
                segments: Vec::new(),
                name: name.to_string(),
                is_method: true,
            });
            continue;
        }
        // Collect `a :: b ::` prefix backwards.
        let mut segments: Vec<String> = Vec::new();
        let mut j = i;
        while j >= 3
            && tokens[j - 1].kind == TokKind::Punct(':')
            && tokens[j - 2].kind == TokKind::Punct(':')
            && tokens[j - 3].kind == TokKind::Ident
        {
            segments.push(tokens[j - 3].text.clone());
            j -= 3;
        }
        segments.reverse();
        segments.retain(|s| !matches!(s.as_str(), "crate" | "self"));
        calls.push(CallRef {
            caller: fn_id,
            segments,
            name: name.to_string(),
            is_method: false,
        });
    }

    // Suppress accidental `mod`-scope reuse warnings: nothing else to do —
    // scope_to_fn kept for potential future per-scope queries.
    let _ = scope_to_fn;
    let _ = ScopeKind::Other;
}

/// Resolve one call to candidate fn ids (sorted, possibly several for a
/// deliberately conservative taint propagation).
fn resolve(fns: &[FnDef], by_name: &BTreeMap<&str, Vec<usize>>, call: &CallRef) -> Vec<usize> {
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let caller = &fns[call.caller];
    if call.is_method {
        // Method names resolve only when workspace-unique: `new`/`run`/
        // `len` collisions would wire the graph into noise.
        return if cands.len() == 1 {
            cands.clone()
        } else {
            Vec::new()
        };
    }
    if !call.segments.is_empty() {
        // Path call: the callee's qualified path must end with the
        // written segments (crate aliases normalized: `spice_md` ≡ `md`).
        let want: Vec<&str> = call.segments.iter().map(|s| normalize_segment(s)).collect();
        let mut hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| {
                let parts: Vec<&str> = fns[id].qual.split("::").collect();
                let path = &parts[..parts.len().saturating_sub(1)];
                path.len() >= want.len() && path[path.len() - want.len()..] == want[..]
            })
            .collect();
        let same_crate: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&id| fns[id].crate_dir == caller.crate_dir)
            .collect();
        if !same_crate.is_empty() {
            hits = same_crate;
        }
        return hits;
    }
    // Bare call: same module wins, then same crate, then any import
    // candidate workspace-wide (conservative over-approximation).
    let caller_mod = caller
        .qual
        .rsplit_once("::")
        .map(|(m, _)| m.to_string())
        .unwrap_or_default();
    let same_mod: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| {
            fns[id]
                .qual
                .rsplit_once("::")
                .map(|(m, _)| m)
                .unwrap_or_default()
                == caller_mod
        })
        .collect();
    if !same_mod.is_empty() {
        return same_mod;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| fns[id].crate_dir == caller.crate_dir)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<(String, Lexed)> = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), lex(s)))
            .collect();
        let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(p, l)| (p.clone(), l)).collect();
        CallGraph::build(&refs)
    }

    fn by_qual<'a>(g: &'a CallGraph, qual: &str) -> (usize, &'a FnDef) {
        g.fns
            .iter()
            .enumerate()
            .find(|(_, f)| f.qual == qual)
            .unwrap_or_else(|| panic!("fn {qual} not found in {:?}", g.fns))
    }

    #[test]
    fn defs_get_modules_and_visibility() {
        let g = graph(&[(
            "crates/md/src/forces/ext.rs",
            "pub fn api() {}\nmod detail { fn inner() {} }",
        )]);
        let (_, api) = by_qual(&g, "md::forces::ext::api");
        assert!(api.is_pub);
        let (_, inner) = by_qual(&g, "md::forces::ext::detail::inner");
        assert!(!inner.is_pub);
    }

    #[test]
    fn bare_call_resolves_same_module_first() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {} pub fn go() { helper(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let (go, _) = by_qual(&g, "a::go");
        let (a_help, _) = by_qual(&g, "a::helper");
        assert_eq!(g.callees[go], vec![a_help], "same-crate helper wins");
    }

    #[test]
    fn qualified_cross_crate_call_resolves() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn go() { spice_b::helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let (go, _) = by_qual(&g, "a::go");
        let (help, _) = by_qual(&g, "b::helper");
        assert_eq!(g.callees[go], vec![help]);
    }

    #[test]
    fn taint_propagates_through_cycles_and_stops() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn outer() { ping(); }\n\
             fn ping() { pong(); roll(); }\n\
             fn pong() { ping(); }\n\
             fn roll() { let r = thread_rng(); }",
        )]);
        let taint = g.entropy_taint();
        let (outer, _) = by_qual(&g, "a::outer");
        let (roll, _) = by_qual(&g, "a::roll");
        assert_eq!(taint[roll].as_ref().map(|t| t.dist), Some(0));
        assert_eq!(taint[outer].as_ref().map(|t| t.dist), Some(2));
        let chain = g.chain(&taint, outer);
        assert_eq!(chain, "a::outer -> a::ping -> a::roll");
    }

    #[test]
    fn e001_fires_only_at_transitive_public_boundary() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn clean() {}\n\
             pub fn direct() { let r = thread_rng(); }\n\
             pub fn indirect() { direct(); }\n\
             fn private_indirect() { direct(); }",
        )]);
        let diags = g.e001();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].1.rule, "E001");
        assert!(diags[0].1.message.contains("a::indirect -> a::direct"));
        assert!(diags[0].1.message.contains("thread_rng"));
    }

    #[test]
    fn test_and_exempt_contexts_do_not_seed_or_fire() {
        let g = graph(&[
            (
                "crates/telemetry/src/lib.rs",
                "pub fn clock() { let t = Instant::now(); }",
            ),
            (
                "crates/a/src/lib.rs",
                "#[cfg(test)]\nmod tests { fn t() { let r = thread_rng(); } }",
            ),
        ]);
        assert!(g.e001().is_empty());
        assert!(g.entropy_taint().iter().all(Option::is_none));
    }

    #[test]
    fn deterministic_across_rebuilds_and_input_order() {
        let files = [
            ("crates/b/src/lib.rs", "pub fn b1() { spice_a::a1(); }"),
            (
                "crates/a/src/lib.rs",
                "pub fn a1() { let t = SystemTime::now(); }",
            ),
        ];
        let g1 = graph(&files);
        let rev = [files[1], files[0]];
        let g2 = graph(&rev);
        let quals1: Vec<&String> = g1.fns.iter().map(|f| &f.qual).collect();
        let quals2: Vec<&String> = g2.fns.iter().map(|f| &f.qual).collect();
        assert_eq!(quals1, quals2);
        assert_eq!(g1.callees, g2.callees);
        let d1: Vec<String> = g1
            .e001()
            .iter()
            .map(|(p, d)| format!("{p}:{d:?}"))
            .collect();
        let d2: Vec<String> = g2
            .e001()
            .iter()
            .map(|(p, d)| format!("{p}:{d:?}"))
            .collect();
        assert_eq!(d1, d2);
    }
}
