//! A hand-rolled Rust lexer sufficient for token-stream lint passes.
//!
//! Deliberately dependency-free (no `syn`, no `proc-macro2`): the build
//! environment is offline and the rules only need a faithful token
//! stream, not a syntax tree. The lexer understands everything that can
//! make a naive text scan lie about code: line and (nested) block
//! comments, string/char/byte/raw-string literals, lifetimes vs char
//! literals, numeric literal shapes (`1.0`, `1.`, `1e-9`, `0x1F`,
//! `1_000.5f64`), and the range-vs-float ambiguity (`0..10`).

/// Token kinds the rules care about. Punctuation is mostly passed
/// through one char at a time; `==`/`!=` are fused because a rule keys
/// on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including `0x`/`0o`/`0b` and suffixed forms).
    Int,
    /// Floating-point literal (`1.0`, `1.`, `1e-9`, `2.5f64`, …).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// Any other single punctuation character.
    Punct(char),
}

/// One token with its source location (1-indexed line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. Plain `"…"` string literals carry their body
    /// (escapes unexpanded, quotes stripped) so M001 can validate metric
    /// names; raw/byte literals and numbers stay empty — no rule reads
    /// them, and skipping the copy keeps the pass cheap.
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column (byte-based).
    pub col: u32,
}

/// A line comment, captured so the allow-directive scanner can see
/// `// spice-lint: allow(...)` annotations with their locations.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the leading `//`.
    pub text: String,
    /// 1-indexed source line the comment starts on.
    pub line: u32,
    /// True when no code precedes the comment on its line (an
    /// annotation-above comment rather than a trailing one).
    pub own_line: bool,
}

/// Lexer output: the token stream plus all line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: unknown bytes become punctuation and a
/// truncated literal simply ends at EOF — a linter must degrade
/// gracefully on code that does not compile yet.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    own_line: out.tokens.last().is_none_or(|t| t.line != line),
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                // Keep the body (escapes unexpanded, quotes stripped) so
                // rules that validate literal *contents* — M001's metric
                // name check — can read it. Raw/byte literals below stay
                // empty-texted; registry names are always plain strings.
                let start = cur.pos + 1;
                lex_string(&mut cur);
                let end = cur.pos.saturating_sub(1).max(start);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&cur.src[start..end.min(cur.src.len())])
                        .into_owned(),
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_prefixed_literal(&cur) => {
                let kind = lex_prefixed_literal(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut cur, &mut out);
                if let Some(kind) = kind {
                    // Char literal; lifetimes push their own token.
                    out.tokens.push(Token {
                        kind,
                        text: String::new(),
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'=' if cur.peek(1) == Some(b'=') => {
                cur.bump();
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::EqEq,
                    text: "==".into(),
                    line,
                    col,
                });
            }
            b'!' if cur.peek(1) == Some(b'=') => {
                cur.bump();
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Ne,
                    text: "!=".into(),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"` or `br#`
/// (a raw/byte literal) rather than a plain identifier starting with
/// `r`/`b`.
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(0), cur.peek(1), cur.peek(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> TokKind {
    // Consume the prefix letters.
    let mut raw = false;
    while let Some(c) = cur.peek(0) {
        if c == b'r' {
            raw = true;
            cur.bump();
        } else if c == b'b' {
            cur.bump();
        } else {
            break;
        }
    }
    if raw {
        // Count hashes, then scan to `"` + the same number of hashes.
        let mut hashes = 0usize;
        while cur.peek(0) == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek(0) == Some(b'"') {
            cur.bump();
            'scan: while let Some(c) = cur.bump() {
                if c == b'"' {
                    for k in 0..hashes {
                        if cur.peek(k) != Some(b'#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break;
                }
            }
        }
        TokKind::Str
    } else if cur.peek(0) == Some(b'\'') {
        cur.bump();
        lex_char_body(cur);
        TokKind::Char
    } else {
        lex_string(cur);
        TokKind::Str
    }
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn lex_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

/// Byte length of the UTF-8 character starting with `b`.
fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >= 0xF0 {
        4
    } else if b >= 0xE0 {
        3
    } else {
        2
    }
}

/// Disambiguate `'a'` (char), `'a` (lifetime) and `'_`; called with the
/// cursor on the opening quote. Lifetimes are pushed directly; char
/// literals return their kind for the caller to push. The closing-quote
/// probe skips one full UTF-8 character, so `'é'` is a char literal and
/// not a lifetime plus a stray quote.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed) -> Option<TokKind> {
    let (line, col) = (cur.line, cur.col);
    // Lifetime: 'ident not followed by a closing quote.
    let first_len = cur.peek(1).map_or(1, utf8_len);
    if cur.peek(1).is_some_and(|c| is_ident_start(c) || c == b'_')
        && cur.peek(1 + first_len) != Some(b'\'')
    {
        cur.bump(); // '
        let start = cur.pos;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            line,
            col,
        });
        None
    } else {
        cur.bump(); // '
        lex_char_body(cur);
        Some(TokKind::Char)
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokKind {
    // Radix-prefixed integers never contain a float part.
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return TokKind::Int;
    }
    let mut float = false;
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // Fractional part: a dot NOT followed by another dot (range) or an
    // identifier start (method call / tuple field on an integer).
    if cur.peek(0) == Some(b'.') && !cur.peek(1).is_some_and(|c| c == b'.' || is_ident_start(c)) {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Exponent.
    if cur.peek(0).is_some_and(|c| c == b'e' || c == b'E') {
        let sign = usize::from(matches!(cur.peek(1), Some(b'+' | b'-')));
        if cur.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump(); // e
            for _ in 0..sign {
                cur.bump();
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
    }
    // Type suffix (f32/f64 forces float; i*/u* stays int).
    if cur.peek(0) == Some(b'f') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r#"
            let a = "thread_rng inside a string";
            // thread_rng inside a comment
            /* unwrap() in /* nested */ block */
            let b = real_ident;
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let src = r##"let x = r#"embedded "quote" and unwrap()"#; let y = after;"##;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        // Depth three, with decoys inside: everything up to the LAST
        // `*/` is comment, and code resumes after it.
        let src = "before /* d1 /* d2 /* d3 unwrap() */ still /* d3b */ d2 */ d1 */ after";
        assert_eq!(idents(src), ["before", "after"]);
        // An unterminated nested comment swallows the rest gracefully.
        assert_eq!(idents("x /* /* never closed */ y"), ["x"]);
    }

    #[test]
    fn byte_raw_strings_with_hashes_swallow_contents() {
        let src = r###"let x = br##"quote " and "# unwrap() inside"##; let y = after;"###;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        // The literal is one Str token.
        let strs = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 1);
        // Plain byte strings and hashless raw strings still work.
        assert_eq!(idents(r#"b"bytes with unwrap()" tail"#), ["tail"]);
        assert_eq!(idents(r##"r#"raw with unwrap()"# tail"##), ["tail"]);
    }

    #[test]
    fn plain_string_bodies_are_captured() {
        let toks = lex(r#"t.counter("grid.jobs"); let s = "A \"q\" B";"#).tokens;
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        // Bodies come back quote-stripped with escapes unexpanded.
        assert_eq!(strs, ["grid.jobs", r#"A \"q\" B"#]);
        // Raw/byte literals stay empty-texted (M001 skips them).
        let raw = lex(r##"r#"grid.raw"#"##).tokens;
        assert_eq!(raw[0].kind, TokKind::Str);
        assert!(raw[0].text.is_empty());
    }

    #[test]
    fn lifetime_vs_char_ambiguity() {
        let kinds = |src: &str| lex(src).tokens.iter().map(|t| t.kind).collect::<Vec<_>>();
        // 'a' is a char; 'a (no closing quote) is a lifetime.
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'a"), vec![TokKind::Lifetime]);
        assert_eq!(kinds("'_"), vec![TokKind::Lifetime]);
        // Byte char and escaped-quote char literals.
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\''"), vec![TokKind::Char]);
        // A multi-byte char literal is one Char token, not a lifetime
        // plus a stray quote.
        assert_eq!(kinds("'é'"), vec![TokKind::Char]);
        // Loop labels stay lifetimes even followed by a colon.
        assert_eq!(
            kinds("'outer: loop")[..2],
            [TokKind::Lifetime, TokKind::Punct(':')]
        );
        // Generic bounds mix lifetimes and chars without confusion.
        let mixed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            mixed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            mixed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn number_shapes() {
        let kinds = |src: &str| lex(src).tokens.iter().map(|t| t.kind).collect::<Vec<_>>();
        assert_eq!(kinds("1.0"), vec![TokKind::Float]);
        assert_eq!(kinds("1e-9"), vec![TokKind::Float]);
        assert_eq!(kinds("2.5f64"), vec![TokKind::Float]);
        assert_eq!(kinds("1_000"), vec![TokKind::Int]);
        assert_eq!(kinds("0x1F"), vec![TokKind::Int]);
        // Range stays two ints, not a float.
        assert_eq!(
            kinds("0..10"),
            vec![
                TokKind::Int,
                TokKind::Punct('.'),
                TokKind::Punct('.'),
                TokKind::Int
            ]
        );
        // Tuple-field access on an integer literal position.
        assert_eq!(
            kinds("a.1.x")[..3],
            [TokKind::Ident, TokKind::Punct('.'), TokKind::Int]
        );
    }

    #[test]
    fn eqeq_and_ne_fused() {
        let kinds: Vec<_> = lex("a == 0.0 && b != 1.0")
            .tokens
            .iter()
            .map(|t| t.kind)
            .collect();
        assert!(kinds.contains(&TokKind::EqEq));
        assert!(kinds.contains(&TokKind::Ne));
    }

    #[test]
    fn comments_captured_with_lines() {
        let src = "let a = 1;\n// spice-lint: allow(P001) reason\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(P001)"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet target = 1;";
        let lexed = lex(src);
        let t = lexed
            .tokens
            .iter()
            .find(|t| t.text == "target")
            .expect("target token");
        assert_eq!(t.line, 4);
    }
}
