//! Syntax layer: a brace-matched scope tree per file.
//!
//! The token-stream rules originally derived their test/loop context
//! from ad-hoc pattern scans (`# [ cfg ( test ) ]` lookahead, bounded
//! body-brace searches). This module replaces those heuristics with one
//! structural pass that parses the token stream into a tree of nested
//! scopes — modules, fn bodies, loop bodies, and anonymous braces —
//! so every rule and the workspace call graph share a single, faithful
//! notion of "where am I". Still dependency-free: the tree is built
//! from the lexer's tokens, not from `syn`.

use crate::lexer::{TokKind, Token};

/// What a scope is, structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// An inline `mod name { … }`.
    Mod {
        /// Module name.
        name: String,
        /// True when a `#[cfg(test)]`-style attribute gates the module.
        cfg_test: bool,
    },
    /// A `fn name(…) { … }` body, with its parsed signature facts.
    Fn(FnSig),
    /// The body braces of `loop`/`while`/`for`.
    LoopBody,
    /// Any other brace pair (impl/trait/match/struct-literal/block…).
    Other,
}

/// Signature facts for a fn scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// The fn's name.
    pub name: String,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)` —
    /// those are not a public boundary).
    pub is_pub: bool,
    /// True when a `#[test]`/`#[cfg(test)]` attribute gates the fn.
    pub cfg_test: bool,
    /// 1-indexed line of the fn name.
    pub line: u32,
    /// 1-indexed column of the fn name.
    pub col: u32,
}

/// One scope: a token range `[open, close]` (brace indices) plus its
/// parent link. The root spans the whole file.
#[derive(Debug)]
pub struct Scope {
    /// Structural kind.
    pub kind: ScopeKind,
    /// Parent scope index (root points at itself).
    pub parent: usize,
    /// Token index of the opening `{` (0 for root).
    pub open: usize,
    /// Token index of the matching `}` (token count for root and for
    /// scopes left unclosed at EOF).
    pub close: usize,
}

/// The scope tree for one file.
#[derive(Debug)]
pub struct ScopeTree {
    /// All scopes; index 0 is the root. Children always follow their
    /// parents (scopes are pushed at their opening brace).
    pub scopes: Vec<Scope>,
}

/// A not-yet-opened construct: we saw its keyword and are waiting for
/// the body `{` (or a `;`/mismatch that cancels it).
#[derive(Debug)]
enum Pending {
    Mod {
        name: String,
        cfg_test: bool,
        depth: usize,
    },
    Fn {
        sig: FnSig,
        depth: usize,
        paren: i32,
        bracket: i32,
    },
    Loop {
        is_for: bool,
        saw_in: bool,
        saw_let: bool,
        saw_eq: bool,
        depth: usize,
        paren: i32,
        bracket: i32,
    },
}

impl Pending {
    fn depth(&self) -> usize {
        match self {
            Pending::Mod { depth, .. }
            | Pending::Fn { depth, .. }
            | Pending::Loop { depth, .. } => *depth,
        }
    }

    fn at_item_level(&self, stack_len: usize) -> bool {
        let flat = match self {
            Pending::Mod { .. } => true,
            Pending::Fn { paren, bracket, .. } | Pending::Loop { paren, bracket, .. } => {
                *paren == 0 && *bracket == 0
            }
        };
        flat && self.depth() == stack_len
    }
}

/// Scan a `#[…]` attribute starting at the `#` token; returns the index
/// just past the closing `]` plus whether the attribute gates test
/// compilation (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but
/// not `#[cfg(not(test))]`).
fn scan_attr(tokens: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokKind::Ident => idents.push(tokens[j].text.as_str()),
            _ => {}
        }
        j += 1;
    }
    let is_test = match idents.first().copied() {
        Some("test") => idents.len() == 1,
        Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j, is_test)
}

impl ScopeTree {
    /// Parse the token stream into a scope tree. Never fails: unmatched
    /// braces close at EOF and unknown constructs become `Other` scopes.
    pub fn build(tokens: &[Token]) -> ScopeTree {
        let mut scopes = vec![Scope {
            kind: ScopeKind::Root,
            parent: 0,
            open: 0,
            close: tokens.len(),
        }];
        let mut stack: Vec<usize> = vec![0];
        let mut pendings: Vec<Pending> = Vec::new();
        let mut attr_test = false;
        let mut saw_pub = false;
        let mut pub_restricted = false;
        let mut i = 0usize;

        while i < tokens.len() {
            let t = &tokens[i];
            // Attributes: consume wholesale, remember test-gating.
            if t.kind == TokKind::Punct('#')
                && tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct('['))
            {
                let (next, is_test) = scan_attr(tokens, i);
                attr_test |= is_test;
                i = next;
                continue;
            }
            match t.kind {
                TokKind::Ident => match t.text.as_str() {
                    // Modifiers that keep attr/visibility state alive.
                    "unsafe" | "async" | "const" | "extern" | "default" => {}
                    "pub" => {
                        saw_pub = true;
                        pub_restricted = false;
                        if tokens
                            .get(i + 1)
                            .is_some_and(|n| n.kind == TokKind::Punct('('))
                        {
                            pub_restricted = true;
                            let mut depth = 0i32;
                            let mut j = i + 1;
                            while j < tokens.len() {
                                match tokens[j].kind {
                                    TokKind::Punct('(') => depth += 1,
                                    TokKind::Punct(')') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            i = j;
                        }
                    }
                    "mod" => {
                        let name = tokens
                            .get(i + 1)
                            .filter(|n| n.kind == TokKind::Ident)
                            .map(|n| n.text.clone())
                            .unwrap_or_default();
                        pendings.push(Pending::Mod {
                            name,
                            cfg_test: attr_test,
                            depth: stack.len(),
                        });
                        attr_test = false;
                        saw_pub = false;
                        i += 2;
                        continue;
                    }
                    "fn" => {
                        let (name, line, col) = tokens
                            .get(i + 1)
                            .filter(|n| n.kind == TokKind::Ident)
                            .map(|n| (n.text.clone(), n.line, n.col))
                            .unwrap_or_else(|| (String::new(), t.line, t.col));
                        pendings.push(Pending::Fn {
                            sig: FnSig {
                                name,
                                is_pub: saw_pub && !pub_restricted,
                                cfg_test: attr_test,
                                line,
                                col,
                            },
                            depth: stack.len(),
                            paren: 0,
                            bracket: 0,
                        });
                        attr_test = false;
                        saw_pub = false;
                    }
                    kw @ ("loop" | "while" | "for") => {
                        pendings.push(Pending::Loop {
                            is_for: kw == "for",
                            saw_in: false,
                            saw_let: false,
                            saw_eq: false,
                            depth: stack.len(),
                            paren: 0,
                            bracket: 0,
                        });
                        attr_test = false;
                        saw_pub = false;
                    }
                    "in" => {
                        if let Some(Pending::Loop {
                            saw_in,
                            depth,
                            paren,
                            bracket,
                            ..
                        }) = pendings.last_mut()
                        {
                            if *depth == stack.len() && *paren == 0 && *bracket == 0 {
                                *saw_in = true;
                            }
                        }
                    }
                    "let" => {
                        if let Some(Pending::Loop {
                            saw_let,
                            depth,
                            paren,
                            bracket,
                            ..
                        }) = pendings.last_mut()
                        {
                            if *depth == stack.len() && *paren == 0 && *bracket == 0 {
                                *saw_let = true;
                            }
                        }
                        attr_test = false;
                        saw_pub = false;
                    }
                    _ => {
                        attr_test = false;
                        saw_pub = false;
                    }
                },
                TokKind::Punct('=') => {
                    if let Some(Pending::Loop {
                        saw_eq,
                        depth,
                        paren,
                        bracket,
                        ..
                    }) = pendings.last_mut()
                    {
                        if *depth == stack.len() && *paren == 0 && *bracket == 0 {
                            *saw_eq = true;
                        }
                    }
                }
                TokKind::Punct(c @ ('(' | ')' | '[' | ']')) => {
                    if let Some(p) = pendings.last_mut() {
                        if p.depth() == stack.len() {
                            if let Pending::Fn { paren, bracket, .. }
                            | Pending::Loop { paren, bracket, .. } = p
                            {
                                match c {
                                    '(' => *paren += 1,
                                    ')' => *paren -= 1,
                                    '[' => *bracket += 1,
                                    _ => *bracket -= 1,
                                }
                            }
                        }
                    }
                    attr_test = false;
                    saw_pub = false;
                }
                // `extern "C"` between visibility and `fn`: the ABI string
                // must not clear the modifier state.
                TokKind::Str => {}
                TokKind::Punct(';') => {
                    if pendings
                        .last()
                        .is_some_and(|p| p.at_item_level(stack.len()))
                    {
                        pendings.pop();
                    }
                    attr_test = false;
                    saw_pub = false;
                }
                TokKind::Punct('{') => {
                    let armed = pendings
                        .last()
                        .is_some_and(|p| p.at_item_level(stack.len()));
                    let kind = if armed {
                        match pendings.pop() {
                            Some(Pending::Mod { name, cfg_test, .. }) => {
                                ScopeKind::Mod { name, cfg_test }
                            }
                            Some(Pending::Fn { sig, .. }) => ScopeKind::Fn(sig),
                            Some(Pending::Loop {
                                is_for,
                                saw_in,
                                saw_let,
                                saw_eq,
                                ..
                            }) => {
                                // `for … in … {` needs its `in`; a `while let
                                // Pat { … }` brace before the `=` is the
                                // pattern, not the body — keep waiting.
                                if is_for && !saw_in {
                                    ScopeKind::Other
                                } else if saw_let && !saw_eq {
                                    pendings.push(Pending::Loop {
                                        is_for,
                                        saw_in,
                                        saw_let,
                                        saw_eq,
                                        depth: stack.len(),
                                        paren: 0,
                                        bracket: 0,
                                    });
                                    ScopeKind::Other
                                } else {
                                    ScopeKind::LoopBody
                                }
                            }
                            None => ScopeKind::Other,
                        }
                    } else {
                        ScopeKind::Other
                    };
                    let parent = *stack.last().unwrap_or(&0);
                    scopes.push(Scope {
                        kind,
                        parent,
                        open: i,
                        close: tokens.len(),
                    });
                    stack.push(scopes.len() - 1);
                    attr_test = false;
                    saw_pub = false;
                }
                TokKind::Punct('}') => {
                    if stack.len() > 1 {
                        let idx = stack.pop().unwrap_or(0);
                        scopes[idx].close = i;
                    }
                    while pendings.last().is_some_and(|p| p.depth() > stack.len()) {
                        pendings.pop();
                    }
                    attr_test = false;
                    saw_pub = false;
                }
                _ => {
                    attr_test = false;
                    saw_pub = false;
                }
            }
            i += 1;
        }
        ScopeTree { scopes }
    }

    /// Token mask: true inside `#[cfg(test)]` modules and `#[test]`/
    /// `#[cfg(test)]` fns — the structural replacement for the old
    /// pattern-scan `test_mask`.
    pub fn test_mask(&self, n_tokens: usize) -> Vec<bool> {
        let mut mask = vec![false; n_tokens];
        for s in &self.scopes {
            let test = match &s.kind {
                ScopeKind::Mod { cfg_test, .. } => *cfg_test,
                ScopeKind::Fn(sig) => sig.cfg_test,
                _ => false,
            };
            if test {
                let end = s.close.min(n_tokens.saturating_sub(1));
                for m in mask.iter_mut().take(end + 1).skip(s.open) {
                    *m = true;
                }
            }
        }
        mask
    }

    /// Token mask: true strictly inside `loop`/`while`/`for` bodies.
    pub fn loop_mask(&self, n_tokens: usize) -> Vec<bool> {
        let mut mask = vec![false; n_tokens];
        for s in &self.scopes {
            if s.kind == ScopeKind::LoopBody {
                let end = s.close.min(n_tokens);
                for m in mask.iter_mut().take(end).skip(s.open + 1) {
                    *m = true;
                }
            }
        }
        mask
    }

    /// True when the scope (or any ancestor) is test-gated.
    pub fn in_test(&self, mut idx: usize) -> bool {
        loop {
            let s = &self.scopes[idx];
            let test = match &s.kind {
                ScopeKind::Mod { cfg_test, .. } => *cfg_test,
                ScopeKind::Fn(sig) => sig.cfg_test,
                _ => false,
            };
            if test {
                return true;
            }
            if idx == 0 {
                return false;
            }
            idx = s.parent;
        }
    }

    /// Inline-module path of a scope, outermost first.
    pub fn module_path(&self, idx: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = idx;
        loop {
            if let ScopeKind::Mod { name, .. } = &self.scopes[cur].kind {
                chain.push(name.clone());
            }
            if cur == 0 {
                break;
            }
            cur = self.scopes[cur].parent;
        }
        chain.reverse();
        chain
    }

    /// All fn scopes as `(scope index, signature)`.
    pub fn fns(&self) -> impl Iterator<Item = (usize, &FnSig)> {
        self.scopes.iter().enumerate().filter_map(|(i, s)| {
            if let ScopeKind::Fn(sig) = &s.kind {
                Some((i, sig))
            } else {
                None
            }
        })
    }
}

/// Rayon-source methods that start a parallel iterator chain.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

/// Chain methods that consume a parallel iterator: after one of these
/// the chain is no longer parallel, so the walk stops.
const PAR_CONSUMERS: &[&str] = &[
    "collect",
    "for_each",
    "count",
    "any",
    "all",
    "find",
    "find_any",
    "find_first",
    "position",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "unzip",
    "partition",
];

/// Order-sensitive reductions: nondeterministic over floats in a real
/// work-stealing pool (reassociation order varies per run).
const PAR_REDUCTIONS: &[&str] = &["sum", "reduce", "fold", "product"];

/// Result of the parallel-closure analysis for one file.
#[derive(Debug, Default)]
pub struct ParAnalysis {
    /// True for tokens inside the argument lists of parallel-chain
    /// methods (closure bodies included) and `spawn(…)` calls.
    pub par_mask: Vec<bool>,
    /// Token indices of `sum`/`reduce`/`fold`/`product` idents applied
    /// to a still-parallel chain (rule R002's sites).
    pub reductions: Vec<usize>,
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        match tok.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Skip a turbofish `::<…>` starting at the first `:`; returns the index
/// just past the closing `>`, or `start` when it is not a turbofish.
fn skip_turbofish(tokens: &[Token], start: usize) -> usize {
    if !(tokens
        .get(start)
        .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens
            .get(start + 1)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens
            .get(start + 2)
            .is_some_and(|t| t.kind == TokKind::Punct('<')))
    {
        return start;
    }
    let mut depth = 0i32;
    let mut j = start + 2;
    let limit = (j + 64).min(tokens.len());
    while j < limit {
        match tokens[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    start
}

/// Find parallel-iterator chains and `spawn` bodies: marks their
/// argument tokens (rule R001's scope) and records order-sensitive
/// reductions on still-parallel chains (rule R002's sites).
pub fn analyze_par(tokens: &[Token]) -> ParAnalysis {
    let mut out = ParAnalysis {
        par_mask: vec![false; tokens.len()],
        reductions: Vec::new(),
    };
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        // `spawn(…)`: thread/rayon/scope spawns all take the closure as
        // their argument — mark the whole argument region.
        if name == "spawn" {
            if let Some(open) = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Punct('('))
                .map(|_| i + 1)
            {
                if let Some(close) = matching_paren(tokens, open) {
                    for m in out.par_mask.iter_mut().take(close).skip(open + 1) {
                        *m = true;
                    }
                }
            }
            continue;
        }
        if !PAR_SOURCES.contains(&name) {
            continue;
        }
        // Must be a method call: `. par_iter (`.
        let is_call = i > 0
            && tokens[i - 1].kind == TokKind::Punct('.')
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Punct('('));
        if !is_call {
            continue;
        }
        let Some(src_close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        // Walk the chain.
        let mut j = src_close + 1;
        while tokens.get(j).is_some_and(|t| t.kind == TokKind::Punct('.'))
            && tokens.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let m = j + 1;
            let method = tokens[m].text.as_str();
            let after = skip_turbofish(tokens, m + 1);
            if !tokens
                .get(after)
                .is_some_and(|t| t.kind == TokKind::Punct('('))
            {
                break; // field access / end of chain
            }
            let Some(close) = matching_paren(tokens, after) else {
                break;
            };
            for msk in out.par_mask.iter_mut().take(close).skip(after + 1) {
                *msk = true;
            }
            if PAR_REDUCTIONS.contains(&method) {
                out.reductions.push(m);
            }
            if PAR_CONSUMERS.contains(&method) || PAR_REDUCTIONS.contains(&method) {
                break; // chain is consumed past this point
            }
            j = close + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Token>, ScopeTree) {
        let tokens = lex(src).tokens;
        let t = ScopeTree::build(&tokens);
        (tokens, t)
    }

    fn masked_idents(src: &str, which: &str) -> Vec<String> {
        let (tokens, t) = tree(src);
        let mask = match which {
            "test" => t.test_mask(tokens.len()),
            _ => t.loop_mask(tokens.len()),
        };
        tokens
            .iter()
            .enumerate()
            .filter(|(i, tok)| mask[*i] && tok.kind == TokKind::Ident)
            .map(|(_, tok)| tok.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_mod_masks_body_only() {
        let src = "
pub fn lib_code() {}
#[cfg(test)]
mod tests {
    fn t() { inner_marker(); }
}
fn after() {}
";
        let ids = masked_idents(src, "test");
        assert!(ids.contains(&"inner_marker".to_string()));
        assert!(!ids.contains(&"lib_code".to_string()));
        assert!(!ids.contains(&"after".to_string()));
    }

    #[test]
    fn cfg_test_with_extra_attrs_and_pub_still_masks() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\npub mod t { fn x() { marker(); } }";
        assert!(masked_idents(src, "test").contains(&"marker".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))]\nmod m { fn x() { marker(); } }";
        assert!(!masked_idents(src, "test").contains(&"marker".to_string()));
    }

    #[test]
    fn test_fn_attribute_masks_fn_body() {
        let src = "#[test]\nfn t() { marker(); }\nfn lib() { other(); }";
        let ids = masked_idents(src, "test");
        assert!(ids.contains(&"marker".to_string()));
        assert!(!ids.contains(&"other".to_string()));
    }

    #[test]
    fn loop_mask_covers_all_loop_forms() {
        let src = "
fn f() {
    for x in xs { in_for(); }
    while cond() { in_while(); }
    loop { in_loop(); }
    after();
}
";
        let ids = masked_idents(src, "loop");
        for m in ["in_for", "in_while", "in_loop"] {
            assert!(ids.contains(&m.to_string()), "{m} missing: {ids:?}");
        }
        assert!(!ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"cond".to_string()));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Clone for Thing { fn clone(&self) { body(); } }";
        assert!(masked_idents(src, "loop").is_empty());
    }

    #[test]
    fn closure_in_loop_condition_does_not_confuse_body() {
        let src = "fn f() { while xs.iter().any(|x| { x.live }) { in_body(); } }";
        let ids = masked_idents(src, "loop");
        assert!(ids.contains(&"in_body".to_string()));
        assert!(!ids.contains(&"live".to_string()));
    }

    #[test]
    fn while_let_pattern_brace_is_not_the_body() {
        let src = "fn f() { while let State { live } = next() { in_body(); } }";
        let ids = masked_idents(src, "loop");
        assert!(ids.contains(&"in_body".to_string()), "{ids:?}");
        assert!(!ids.contains(&"live".to_string()), "{ids:?}");
    }

    #[test]
    fn fn_signatures_parse_pub_and_restricted() {
        let (_, t) = tree(
            "pub fn api() {}\npub(crate) fn internal() {}\nfn private() {}\n\
             pub async fn async_api() {}",
        );
        let sigs: Vec<(&str, bool)> = t.fns().map(|(_, s)| (s.name.as_str(), s.is_pub)).collect();
        assert_eq!(
            sigs,
            [
                ("api", true),
                ("internal", false),
                ("private", false),
                ("async_api", true)
            ]
        );
    }

    #[test]
    fn module_paths_nest() {
        let (_, t) = tree("mod outer { mod inner { fn deep() {} } }");
        let (idx, sig) = t.fns().next().expect("one fn");
        assert_eq!(sig.name, "deep");
        assert_eq!(t.module_path(idx), ["outer", "inner"]);
    }

    #[test]
    fn par_chain_marks_closure_and_finds_reduction() {
        let src = "let e: f64 = xs.par_iter().map(|x| x * k).sum();";
        let tokens = lex(src).tokens;
        let par = analyze_par(&tokens);
        assert_eq!(par.reductions.len(), 1, "{par:?}");
        let masked: Vec<&str> = tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| par.par_mask[*i] && t.kind == TokKind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"x"), "{masked:?}");
    }

    #[test]
    fn collect_ends_the_parallel_chain() {
        let src =
            "let v: Vec<f64> = xs.par_iter().map(|x| x).collect(); let s: f64 = v.iter().sum();";
        let par = analyze_par(&lex(src).tokens);
        assert!(
            par.reductions.is_empty(),
            "serial sum after collect: {par:?}"
        );
    }

    #[test]
    fn serial_chains_are_untouched() {
        let src = "let s: f64 = xs.iter().map(|x| x).sum(); spawnling();";
        let par = analyze_par(&lex(src).tokens);
        assert!(par.reductions.is_empty());
        assert!(par.par_mask.iter().all(|m| !m));
    }

    #[test]
    fn spawn_body_is_marked() {
        let src = "std::thread::spawn(move || { inside.lock() });";
        let tokens = lex(src).tokens;
        let par = analyze_par(&tokens);
        let masked: Vec<&str> = tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| par.par_mask[*i] && t.kind == TokKind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"inside"), "{masked:?}");
    }

    #[test]
    fn turbofish_sum_is_still_a_reduction() {
        let src = "let e = xs.par_iter().map(|x| x).sum::<f64>();";
        let par = analyze_par(&lex(src).tokens);
        assert_eq!(par.reductions.len(), 1);
    }
}
