//! The rule catalog and the per-file token-stream pass.
//!
//! Every rule works on the lexed token stream (never raw text), so
//! string literals and comments can not produce false positives, and
//! every diagnostic carries a file:line:col location plus the rule id
//! the allow mechanism keys on.

use crate::lexer::{Lexed, TokKind, Token};

/// A single rule's metadata (id + human rationale), used by
/// `--list-rules` and kept in sync with DESIGN.md's catalog.
pub struct RuleInfo {
    /// Stable rule id (`D001`, `N002`, …).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The shipped rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "HashMap/HashSet in simulation crates (gridsim/md/smd/core): \
                  iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
    },
    RuleInfo {
        id: "D002",
        summary: "ambient entropy or wall-clock time (thread_rng, from_entropy, \
                  Instant::now, SystemTime) in simulation logic; seed explicitly instead",
    },
    RuleInfo {
        id: "N001",
        summary: "NaN-unsafe ordering: partial_cmp(..).unwrap()/.expect(..); \
                  use f64::total_cmp for a deterministic total order",
    },
    RuleInfo {
        id: "N002",
        summary: "float == / != against a float literal in library code; \
                  compare with a tolerance or annotate the exact-sentinel intent",
    },
    RuleInfo {
        id: "P001",
        summary: "unwrap()/panic! in non-test library code without an allow \
                  annotation; use expect with an invariant message or return Result",
    },
    RuleInfo {
        id: "P002",
        summary: "allocation or linear scan inside a gridsim loop body \
                  (.clone() / .iter().position(..)): the DES hot path must stay \
                  allocation-free and O(log n) — hoist, borrow, or maintain an index",
    },
    RuleInfo {
        id: "T001",
        summary: "println!/eprintln! (or print!/eprint!) in non-test library code: \
                  route output through return values or the telemetry layer; \
                  direct printing belongs to CLI mains and report paths only",
    },
    RuleInfo {
        id: "A001",
        summary: "malformed spice-lint directive (unknown form, bad rule id, \
                  or allow without a written reason)",
    },
    RuleInfo {
        id: "A002",
        summary: "stale allow: the directive or baseline entry suppresses nothing",
    },
];

/// Crate directories whose non-test code is a deterministic simulation
/// path (rule D001's scope).
const SIM_CRATES: &[&str] = &["gridsim", "md", "smd", "core"];

/// Crate directories exempt from D002: benchmarks time things by design,
/// and the telemetry crate is the one sanctioned wall-clock reader (its
/// `Instant::now` lives behind the off-by-default `timing` feature so
/// deterministic builds contain no clock reads).
const ENTROPY_EXEMPT_CRATES: &[&str] = &["bench", "telemetry"];

/// A rule violation before allow-filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiagnostic {
    /// Rule id.
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug)]
pub struct FileContext {
    /// Crate directory name under `crates/` (root package files get
    /// `None`).
    pub crate_dir: Option<String>,
    /// True when the whole file is test/bench/example context.
    pub test_file: bool,
}

impl FileContext {
    /// Classify a workspace-relative, `/`-separated path.
    pub fn from_rel_path(rel_path: &str) -> FileContext {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_dir = match components.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            _ => None,
        };
        let test_file = components
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples"))
            || crate_dir.as_deref() == Some("bench");
        FileContext {
            crate_dir,
            test_file,
        }
    }

    fn in_sim_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| SIM_CRATES.contains(&c))
    }

    fn entropy_exempt(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| ENTROPY_EXEMPT_CRATES.contains(&c))
    }
}

/// Mark every token inside a `#[cfg(test)] mod … { … }` block. Inline
/// test modules are the one place unwrap/exact-equality idioms are
/// welcome, so the mask feeds the rules' test-context exemptions.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            if let Some((_open, close)) = find_mod_braces(tokens, after_attr) {
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                i = close;
            }
        }
        i += 1;
    }
    mask
}

/// Mark every token inside the braces of a `loop`/`while`/`for` body.
/// `for` is only a loop when an `in` appears at bracket depth 0 between
/// the keyword and the body brace — that distinguishes `for x in xs {`
/// from `impl Trait for Type {` and from `for<'a>` bounds. Rule P002
/// keys on this mask: an allocation is hot exactly when a loop repeats
/// it.
pub fn loop_body_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let body_open = match tok.text.as_str() {
            "loop" | "while" => find_body_brace(tokens, i + 1, false),
            "for" => find_body_brace(tokens, i + 1, true),
            _ => None,
        };
        if let Some(open) = body_open {
            if let Some(close) = matching_brace(tokens, open) {
                for m in mask.iter_mut().take(close).skip(open + 1) {
                    *m = true;
                }
            }
        }
    }
    mask
}

/// Scan from `j` for the loop-body `{` at paren/bracket/brace depth 0.
/// With `require_in`, an `in` ident must appear at depth 0 first (the
/// `for`-loop discriminator). Bails at a depth-0 `;` or `}` — whatever
/// construct this was, it had no loop body.
fn find_body_brace(tokens: &[Token], j: usize, require_in: bool) -> Option<usize> {
    let mut saw_in = false;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut brace = 0usize;
    let limit = (j + 512).min(tokens.len());
    for (k, tok) in tokens.iter().enumerate().take(limit).skip(j) {
        let at_depth0 = paren == 0 && bracket == 0 && brace == 0;
        match tok.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren = paren.checked_sub(1)?,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket = bracket.checked_sub(1)?,
            TokKind::Punct('{') if at_depth0 => {
                return (!require_in || saw_in).then_some(k);
            }
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') if at_depth0 => return None,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct(';') if at_depth0 => return None,
            TokKind::Ident if at_depth0 && tok.text == "in" => saw_in = true,
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        match tok.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Match `# [ cfg ( test ) ]` starting at `i`; return the index after
/// the closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let pat = [
        TokKind::Punct('#'),
        TokKind::Punct('['),
        TokKind::Ident,
        TokKind::Punct('('),
        TokKind::Ident,
        TokKind::Punct(')'),
        TokKind::Punct(']'),
    ];
    if i + pat.len() > tokens.len() {
        return None;
    }
    for (k, want) in pat.iter().enumerate() {
        if tokens[i + k].kind != *want {
            return None;
        }
    }
    if tokens[i + 2].text != "cfg" || tokens[i + 4].text != "test" {
        return None;
    }
    Some(i + pat.len())
}

/// From just after the cfg attribute, skip further attributes and
/// visibility, require a `mod name {`, and return the indices of the
/// opening and matching closing brace.
fn find_mod_braces(tokens: &[Token], mut i: usize) -> Option<(usize, usize)> {
    // Skip additional `#[...]` attributes (balanced brackets).
    while i + 1 < tokens.len()
        && tokens[i].kind == TokKind::Punct('#')
        && tokens[i + 1].kind == TokKind::Punct('[')
    {
        let mut depth = 0usize;
        i += 1;
        while i < tokens.len() {
            match tokens[i].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Skip `pub`, `pub(crate)` etc.
    if tokens.get(i).is_some_and(|t| t.text == "pub") {
        i += 1;
        if tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct('(')) {
            while i < tokens.len() && tokens[i].kind != TokKind::Punct(')') {
                i += 1;
            }
            i += 1;
        }
    }
    if tokens.get(i).is_none_or(|t| t.text != "mod") {
        return None;
    }
    i += 1; // mod name
    i += 1;
    if !tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct('{')) {
        return None; // out-of-line `mod x;`
    }
    let open = i;
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Run every rule over one lexed file.
pub fn run_rules(ctx: &FileContext, lexed: &Lexed) -> Vec<RawDiagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_mask(tokens);
    let in_gridsim = ctx.crate_dir.as_deref() == Some("gridsim");
    let loop_mask = if in_gridsim {
        loop_body_mask(tokens)
    } else {
        Vec::new()
    };
    let mut out = Vec::new();
    // Token indices consumed by an N001 match, so the same `unwrap`
    // does not also fire P001 (one defect, one diagnostic).
    let mut n001_tail = vec![false; tokens.len()];

    for (i, tok) in tokens.iter().enumerate() {
        let in_test = ctx.test_file || mask[i];
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                // D001 — nondeterministic iteration in simulation crates.
                if !in_test && ctx.in_sim_crate() && (name == "HashMap" || name == "HashSet") {
                    out.push(RawDiagnostic {
                        rule: "D001",
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{name}` in a simulation crate: iteration order is \
                             nondeterministic across runs — use BTreeMap/BTreeSet or a \
                             sorted Vec so results are bit-reproducible"
                        ),
                    });
                }
                // D002 — ambient entropy / wall-clock time.
                if !in_test && !ctx.entropy_exempt() {
                    let hit = match name {
                        "thread_rng" | "from_entropy" | "SystemTime" => Some(name),
                        "Instant" if is_path_call(tokens, i, "now") => Some("Instant::now"),
                        _ => None,
                    };
                    if let Some(what) = hit {
                        out.push(RawDiagnostic {
                            rule: "D002",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`{what}` injects ambient entropy/time into simulation \
                                 logic — thread seeds and clocks through explicit \
                                 parameters so runs are reproducible"
                            ),
                        });
                    }
                }
                // N001 — NaN-unsafe ordering (applies in tests too: a
                // NaN-poisoned comparator corrupts analysis anywhere).
                if name == "partial_cmp" {
                    if let Some(tail) = match_partial_cmp_unwrap(tokens, i) {
                        n001_tail[tail] = true;
                        out.push(RawDiagnostic {
                            rule: "N001",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "NaN-unsafe ordering: `partial_cmp(..).{}()` panics or \
                                 misorders on NaN — use `f64::total_cmp` for a \
                                 deterministic total order",
                                tokens[tail].text
                            ),
                        });
                    }
                }
                // P001 — unwrap()/panic! in non-test library code.
                if !in_test {
                    if name == "unwrap"
                        && !n001_tail[i]
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        out.push(RawDiagnostic {
                            rule: "P001",
                            line: tok.line,
                            col: tok.col,
                            message: "`unwrap()` in library code: use `expect` with an \
                                      invariant message, return a Result, or annotate \
                                      why it cannot fail"
                                .into(),
                        });
                    }
                    if name == "panic" && next_is(tokens, i, TokKind::Punct('!')) {
                        out.push(RawDiagnostic {
                            rule: "P001",
                            line: tok.line,
                            col: tok.col,
                            message: "`panic!` in library code: prefer a typed error, or \
                                      annotate why aborting is the contract"
                                .into(),
                        });
                    }
                }
                // P002 — allocations / linear scans repeated by a loop in
                // the gridsim DES (the paths the scale work de-quadratified).
                if !in_test && in_gridsim && loop_mask.get(i).copied().unwrap_or(false) {
                    if name == "clone"
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        out.push(RawDiagnostic {
                            rule: "P002",
                            line: tok.line,
                            col: tok.col,
                            message: "`.clone()` inside a gridsim loop body: the DES hot \
                                      path must stay allocation-free — hoist the clone out \
                                      of the loop, borrow, or carry an index"
                                .into(),
                        });
                    }
                    if name == "iter" && is_iter_position_chain(tokens, i) {
                        out.push(RawDiagnostic {
                            rule: "P002",
                            line: tok.line,
                            col: tok.col,
                            message: "`.iter().position(..)` inside a gridsim loop body: \
                                      an O(n) scan per iteration makes the event loop \
                                      quadratic — maintain an index map instead"
                                .into(),
                        });
                    }
                }
                // T001 — stray stdout/stderr prints in non-test code.
                // Intentional CLI entry points and report paths carry an
                // allow annotation or a baseline entry.
                if !in_test
                    && matches!(name, "println" | "eprintln" | "print" | "eprint")
                    && next_is(tokens, i, TokKind::Punct('!'))
                {
                    out.push(RawDiagnostic {
                        rule: "T001",
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{name}!` in library code writes straight to the terminal \
                             — return the text, or record it through the telemetry \
                             layer; direct printing is for CLI mains and report paths \
                             (annotate or baseline those)"
                        ),
                    });
                }
            }
            // N002 — float ==/!= against a float literal.
            TokKind::EqEq | TokKind::Ne if !in_test && float_operand(tokens, i) => {
                let op = if tok.kind == TokKind::EqEq {
                    "=="
                } else {
                    "!="
                };
                out.push(RawDiagnostic {
                    rule: "N002",
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "float `{op}` comparison against a literal: exact float \
                         equality is fragile — compare with a tolerance, or \
                         annotate the exact-sentinel intent"
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

/// True when `tokens[i]` (an ident) is followed by `:: name` — detects
/// `Instant::now`.
fn is_path_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens
        .get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.text == name)
}

/// Match `. iter ( ) . position (` with `i` at the `iter` ident.
fn is_iter_position_chain(tokens: &[Token], i: usize) -> bool {
    prev_is(tokens, i, TokKind::Punct('.'))
        && next_is(tokens, i, TokKind::Punct('('))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Punct(')'))
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Punct('.'))
        && tokens.get(i + 4).is_some_and(|t| t.text == "position")
        && tokens
            .get(i + 5)
            .is_some_and(|t| t.kind == TokKind::Punct('('))
}

fn prev_is(tokens: &[Token], i: usize, kind: TokKind) -> bool {
    i > 0 && tokens[i - 1].kind == kind
}

fn next_is(tokens: &[Token], i: usize, kind: TokKind) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.kind == kind)
}

/// Match `partial_cmp ( … ) . unwrap|expect (` starting at the
/// `partial_cmp` ident; returns the index of the `unwrap`/`expect`
/// ident. The argument scan is balanced-paren and bounded, so a
/// pathological file cannot stall the pass.
fn match_partial_cmp_unwrap(tokens: &[Token], i: usize) -> Option<usize> {
    if !next_is(tokens, i, TokKind::Punct('(')) {
        return None;
    }
    let mut j = i + 1;
    let mut depth = 0usize;
    let limit = j + 256;
    while j < tokens.len() && j < limit {
        match tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() || tokens[j].kind != TokKind::Punct(')') {
        return None;
    }
    // `. unwrap (` or `. expect (`
    let dot = j + 1;
    let name = j + 2;
    if tokens
        .get(dot)
        .is_some_and(|t| t.kind == TokKind::Punct('.'))
        && tokens
            .get(name)
            .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        && tokens
            .get(name + 1)
            .is_some_and(|t| t.kind == TokKind::Punct('('))
    {
        Some(name)
    } else {
        None
    }
}

/// True when either operand token adjacent to a `==`/`!=` is a float
/// literal (tolerating one leading unary minus or open paren on the
/// right).
fn float_operand(tokens: &[Token], i: usize) -> bool {
    if i > 0 && tokens[i - 1].kind == TokKind::Float {
        return true;
    }
    let mut j = i + 1;
    while tokens
        .get(j)
        .is_some_and(|t| matches!(t.kind, TokKind::Punct('-') | TokKind::Punct('(')))
    {
        j += 1;
    }
    tokens.get(j).is_some_and(|t| t.kind == TokKind::Float)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawDiagnostic> {
        run_rules(&FileContext::from_rel_path(path), &lex(src))
    }

    fn rules_fired(diags: &[RawDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d001_only_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/lib.rs", src)),
            ["D001"]
        );
        assert!(run("crates/steering/src/lib.rs", src).is_empty());
        assert!(run("crates/gridsim/tests/t.rs", src).is_empty());
    }

    #[test]
    fn d002_catches_instant_now_but_not_instant_type() {
        let hits = run("crates/md/src/x.rs", "let t = Instant::now();");
        assert_eq!(rules_fired(&hits), ["D002"]);
        assert!(run("crates/md/src/x.rs", "fn f(t: Instant) {}").is_empty());
        assert!(run("crates/bench/src/x.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn n001_fires_even_in_tests_and_suppresses_p001() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(rules_fired(&run("crates/stats/src/d.rs", src)), ["N001"]);
        assert_eq!(rules_fired(&run("crates/stats/tests/t.rs", src)), ["N001"]);
        let src2 = "v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));";
        assert_eq!(rules_fired(&run("crates/stats/src/d.rs", src2)), ["N001"]);
    }

    #[test]
    fn n002_literal_float_equality() {
        assert_eq!(
            rules_fired(&run("crates/stats/src/d.rs", "if x == 0.0 {}")),
            ["N002"]
        );
        assert_eq!(
            rules_fired(&run("crates/stats/src/d.rs", "if 1e-9 != y {}")),
            ["N002"]
        );
        // Integer equality is fine; var-vs-var floats are out of scope.
        assert!(run("crates/stats/src/d.rs", "if n == 0 {}").is_empty());
        assert!(run("crates/stats/src/d.rs", "if a == b {}").is_empty());
    }

    #[test]
    fn p001_unwrap_and_panic_lib_only() {
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "let a = b.unwrap();")),
            ["P001"]
        );
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "panic!(\"boom\");")),
            ["P001"]
        );
        assert!(run("crates/md/tests/t.rs", "let a = b.unwrap();").is_empty());
        // unwrap_or_else is a different method.
        assert!(run("crates/md/src/x.rs", "let a = b.unwrap_or_else(f);").is_empty());
        // should_panic attribute text does not match panic!.
        assert!(run("crates/md/src/x.rs", "#[should_panic(expected = \"x\")]").is_empty());
    }

    #[test]
    fn inline_test_module_is_exempt() {
        let src = "
pub fn lib_code(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x: Option<u32> = None; x.unwrap(); }
}
";
        let hits = run("crates/md/src/x.rs", src);
        assert_eq!(rules_fired(&hits), ["P001"]);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn t001_prints_in_lib_code_only() {
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "println!(\"{x}\");")),
            ["T001"]
        );
        assert_eq!(
            rules_fired(&run("crates/steering/src/x.rs", "eprintln!(\"warn\");")),
            ["T001"]
        );
        // Tests, benches and examples print freely.
        assert!(run("crates/md/tests/t.rs", "println!(\"{x}\");").is_empty());
        assert!(run("examples/demo.rs", "println!(\"{x}\");").is_empty());
        // CLI front-ends are NOT path-exempt — they get baseline entries.
        assert_eq!(
            rules_fired(&run("src/main.rs", "println!(\"{x}\");")),
            ["T001"]
        );
        // A `println` ident without the macro bang is something else.
        assert!(run("crates/md/src/x.rs", "let println = 3; println == 4;").is_empty());
    }

    #[test]
    fn p002_clone_and_position_in_gridsim_loops_only() {
        let in_loop = "for ev in events { let j = jobs.iter().position(|x| x.id == ev); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", in_loop)),
            ["P002"]
        );
        let clone_loop = "while let Some(e) = q.pop() { let name = site.name.clone(); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", clone_loop)),
            ["P002"]
        );
        assert_eq!(
            rules_fired(&run(
                "crates/gridsim/src/x.rs",
                "loop { let c = v.clone(); break; }"
            )),
            ["P002"]
        );
        // Outside a loop body, in other crates, and in tests: no rule.
        assert!(run("crates/gridsim/src/x.rs", "let c = v.clone();").is_empty());
        assert!(run("crates/md/src/x.rs", clone_loop).is_empty());
        assert!(run("crates/gridsim/tests/t.rs", clone_loop).is_empty());
        // `iter_mut().position` or a bare `position` is not the chain.
        assert!(run(
            "crates/gridsim/src/x.rs",
            "for e in v { let p = w.position(f); }"
        )
        .is_empty());
    }

    #[test]
    fn p002_for_loop_discriminated_from_impl_for() {
        // `impl Trait for Type { .. }` bodies are not loop bodies.
        let impl_block = "impl Clone for Thing { fn clone(&self) -> Thing { self.inner.clone() } }";
        assert!(run("crates/gridsim/src/x.rs", impl_block).is_empty());
        // ...but a real for-loop inside an impl method still fires.
        let loop_in_impl =
            "impl Thing { fn go(&self) { for x in &self.v { let c = x.clone(); } } }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", loop_in_impl)),
            ["P002"]
        );
        // Closures in the condition do not confuse the body finder.
        let cond_closure = "while xs.iter().any(|x| { x.live }) { let c = n.clone(); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", cond_closure)),
            ["P002"]
        );
    }

    #[test]
    fn string_and_comment_bodies_never_fire() {
        let src = "let s = \"thread_rng unwrap() == 0.0\"; // thread_rng unwrap()\n";
        assert!(run("crates/md/src/x.rs", src).is_empty());
    }
}
