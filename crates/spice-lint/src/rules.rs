//! The rule catalog and the per-file pass.
//!
//! Every rule works on the lexed token stream (never raw text), so
//! string literals and comments can not produce false positives, and
//! every diagnostic carries a file:line:col location plus the rule id
//! the allow mechanism keys on. Test/loop context comes from the
//! `parser` scope tree — one structural pass shared by all rules —
//! and the parallel-safety rules (R001/R002) key on the parser's
//! rayon-chain analysis. The interprocedural rule E001 lives in
//! `callgraph`, not here: it needs the whole workspace.

use crate::lexer::{Lexed, TokKind, Token};
use crate::parser::{analyze_par, ScopeTree};

/// A single rule's metadata, used by `--list-rules`/`--explain` and kept
/// in sync with DESIGN.md's catalog.
pub struct RuleInfo {
    /// Stable rule id (`D001`, `N002`, …).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The longer rationale printed by `--explain <rule>`: why the
    /// pattern is a defect here, and what to write instead.
    pub detail: &'static str,
}

/// The shipped rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "HashMap/HashSet in simulation crates (gridsim/md/smd/core): \
                  iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
        detail: "std's hash containers seed SipHash per process, so iteration order \
                 differs between runs. Any fold, event dispatch, or output built by \
                 iterating one silently changes results run-to-run — fatal for \
                 bit-reproducible trajectories and the Jarzynski tail average. \
                 Use BTreeMap/BTreeSet, or collect into a Vec and sort by a total key.",
    },
    RuleInfo {
        id: "D002",
        summary: "ambient entropy or wall-clock time (thread_rng, from_entropy, \
                  Instant::now, SystemTime) in simulation logic; seed explicitly instead",
        detail: "thread_rng/from_entropy pull operating-system entropy and \
                 Instant::now/SystemTime read the wall clock: both make a run a \
                 function of when and where it executed. Simulation code must take \
                 seeds and times as explicit parameters (the config carries a u64 \
                 seed; telemetry's feature-gated clock is the one sanctioned reader). \
                 The interprocedural escalation E001 also flags public fns that \
                 reach these only through their callees.",
    },
    RuleInfo {
        id: "N001",
        summary: "NaN-unsafe ordering: partial_cmp(..).unwrap()/.expect(..); \
                  use f64::total_cmp for a deterministic total order",
        detail: "partial_cmp returns None on NaN, so .unwrap() panics mid-analysis \
                 and .expect() hides the misordering until it corrupts a sort. \
                 f64::total_cmp is a total order (IEEE 754 totalOrder) that places \
                 NaNs deterministically — use it in comparators, even in tests.",
    },
    RuleInfo {
        id: "N002",
        summary: "float == / != against a float literal in library code; \
                  compare with a tolerance or annotate the exact-sentinel intent",
        detail: "Exact float equality against a literal is almost always a rounding \
                 accident waiting to happen. Compare |a-b| against an explicit \
                 tolerance, or — when the literal is a genuine sentinel (0.0 meaning \
                 'unset') — keep the comparison and write an allow with that reason.",
    },
    RuleInfo {
        id: "P001",
        summary: "unwrap()/panic! in non-test library code without an allow \
                  annotation; use expect with an invariant message or return Result",
        detail: "A bare unwrap/panic! aborts a multi-hour campaign with no context. \
                 Return a typed error where the caller can act, use expect(\"why this \
                 cannot fail\") where it truly cannot, or annotate the call site with \
                 the invariant that protects it.",
    },
    RuleInfo {
        id: "P002",
        summary: "allocation or linear scan inside a gridsim loop body \
                  (.clone() / .iter().position(..)): the DES hot path must stay \
                  allocation-free and O(log n) — hoist, borrow, or maintain an index",
        detail: "The grid DES processes millions of events; a .clone() or O(n) \
                 .iter().position() inside a loop body multiplies into quadratic \
                 time and allocator churn. Hoist the clone out of the loop, borrow, \
                 or maintain an index map keyed by id.",
    },
    RuleInfo {
        id: "P003",
        summary: "per-iteration heap allocation (Vec::new / vec![] / .clone()) \
                  inside a loop body of the batched SoA kernels \
                  (md::batch, smd::batch): preallocate lane scratch in the \
                  constructor and reuse it every step",
        detail: "The batched ensemble engine earns its ≥5x throughput gate by \
                 keeping every per-step loop allocation-free: BatchSim \
                 preallocates all lane buffers (positions, forces, pair \
                 scratch, displacement rows) at construction and the kernels \
                 only index into them. A Vec::new/vec![]/.clone() inside a \
                 loop body here reintroduces allocator churn on the exact \
                 path the SIMD lane sweep optimizes, and shows up directly \
                 in BENCH_ensemble_batch's realizations/sec. Hoist the \
                 allocation into the constructor (or the one-time setup \
                 before the step loop) and borrow it per iteration; \
                 setup/report paths that legitimately allocate once per \
                 ensemble carry an annotated allow.",
    },
    RuleInfo {
        id: "T001",
        summary: "println!/eprintln! (or print!/eprint!) in non-test library code: \
                  route output through return values or the telemetry layer; \
                  direct printing belongs to CLI mains and report paths only",
        detail: "Library code that prints cannot be embedded, tested quietly, or \
                 redirected. Return the text, or record through the telemetry layer; \
                 CLI mains and report writers that legitimately print carry a \
                 baseline entry or an annotated allow.",
    },
    RuleInfo {
        id: "M001",
        summary: "telemetry span/metric name built with format! (or a string \
                  literal that is not lowercase dot-separated) in a \
                  simulation/steering crate: use a static literal like \
                  \"grid.attempt\" or a named constant",
        detail: "The registry export is diffed byte-for-byte across runs and \
                 machines (spice-trace diff), and the obs layer groups spans \
                 and sections reports by name prefix — so names must be a \
                 closed, stable vocabulary. A format!-built name mints an \
                 unbounded family (one metric per job id) that explodes the \
                 registry and defeats prefix grouping; a MixedCase or spaced \
                 literal breaks the dot-path convention every consumer keys \
                 on. Name each series with a lowercase dot-separated literal \
                 ([a-z0-9_-] segments), hoist per-kind families into a match \
                 returning &'static str (see FailureKind::failures_counter), \
                 and put variable detail in attrs or track keys — never the \
                 name.",
    },
    RuleInfo {
        id: "W001",
        summary: "direct File::create / fs::write in simulation-crate library code: \
                  checkpoint and artifact files must go through an atomic writer \
                  (temp sibling + flush + rename)",
        detail: "A process killed mid-write leaves a torn file under the real name, \
                 and the durability layer will (rightly) refuse to load it — but a \
                 torn *snapshot* costs the campaign its newest restore point, and a \
                 torn artifact corrupts the record silently. Simulation crates write \
                 durable files only through the atomic-writer protocol \
                 (gridsim::durability's writer, md checkpoint's save): create a temp \
                 sibling, write, flush, then rename into place. The sanctioned \
                 writer internals carry an annotated allow; everything else should \
                 call them.",
    },
    RuleInfo {
        id: "R001",
        summary: "shared-state synchronization (Mutex/RwLock/RefCell/.lock()/\
                  Ordering::Relaxed) inside a rayon closure or spawn body in a \
                  simulation crate: lock-order and interleaving are nondeterministic",
        detail: "A Mutex<f64> accumulator (or RwLock/RefCell/.lock()/relaxed atomic) \
                 inside par_iter/par_chunks/spawn makes the result depend on \
                 work-stealing interleaving: float additions reassociate in a \
                 different order every run. Give each chunk its own scratch slot and \
                 reduce serially in index order (see md::forces::nonbonded's \
                 ChunkScratch), or move the state out of the parallel region. \
                 Monotone gauges (progress counters never read back into results) \
                 may keep a relaxed atomic behind an annotated allow.",
    },
    RuleInfo {
        id: "R002",
        summary: ".sum()/.reduce()/.fold()/.product() on a parallel iterator in a \
                  simulation crate: float reduction order varies per run — use the \
                  chunked-scratch serial reduction idiom",
        detail: "Rayon's reductions combine partial results in work-stealing order, \
                 so parallel float sums reassociate differently every run — results \
                 drift at the ulp level and diverge chaotically over a trajectory. \
                 The sanctioned idiom (md::forces::nonbonded): fill per-chunk \
                 scratch buffers with for_each, then reduce the chunks serially in \
                 index order. collect() into a Vec followed by a serial sum is also \
                 fine — the rule stops at the first order-restoring consumer.",
    },
    RuleInfo {
        id: "E001",
        summary: "public fn transitively reaches ambient entropy/time \
                  (thread_rng/from_entropy/Instant::now/SystemTime) through the \
                  call graph; the diagnostic prints the propagation chain",
        detail: "D002 sees only direct uses; E001 walks the workspace call graph \
                 backwards from every entropy site and flags public fns that reach \
                 one transitively — the boundary a caller trusts. The diagnostic \
                 names the full chain (a::api -> a::helper -> b::roll) and the \
                 originating site. Fix the leaf (thread the seed/clock as a \
                 parameter) rather than allowing the boundary: one leaf fix clears \
                 every chain through it.",
    },
    RuleInfo {
        id: "A001",
        summary: "malformed spice-lint directive (unknown form, bad rule id, \
                  or allow without a written reason)",
        detail: "Allow directives are part of the audit trail: \
                 `// spice-lint: allow(RULE) reason` with a real reason. A typo'd \
                 rule id or a missing reason silently suppresses nothing (or \
                 everything), so the malformed directive is itself a violation.",
    },
    RuleInfo {
        id: "A002",
        summary: "stale allow: the directive or baseline entry suppresses nothing \
                  (including baseline entries whose file no longer exists)",
        detail: "An allow that no longer matches a diagnostic — after a fix, a \
                 rename, or a deleted file — is debt that hides future regressions. \
                 Inline allows must fire on their own or the next line; baseline \
                 entries must match at least one current diagnostic AND point at a \
                 file that still exists in the workspace.",
    },
];

/// Look up a rule's catalog entry by id (case-sensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Crate directories whose non-test code is a deterministic simulation
/// path (rules D001/R001/R002's scope).
const SIM_CRATES: &[&str] = &["gridsim", "md", "smd", "core"];

/// Crates whose telemetry names M001 polices: the simulation crates plus
/// steering (the remote-control layer owns the `steering.*` namespace).
const M001_CRATES: &[&str] = &["gridsim", "md", "smd", "core", "steering"];

/// Telemetry registry/track methods whose first argument is a series or
/// track name (`probe` takes a typed ProbePoint, so it is not listed).
const M001_METHODS: &[&str] = &[
    "counter",
    "bind_counter",
    "gauge",
    "set_gauge",
    "histogram",
    "track",
    "span",
    "span_at",
    "enter_at",
    "exit_at",
    "instant",
    "instant_at",
];

/// Crate directories exempt from D002/E001: benchmarks time things by
/// design, and the telemetry crate is the one sanctioned wall-clock
/// reader (its `Instant::now` lives behind the off-by-default `timing`
/// feature so deterministic builds contain no clock reads).
const ENTROPY_EXEMPT_CRATES: &[&str] = &["bench", "telemetry"];

/// A rule violation before allow-filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiagnostic {
    /// Rule id.
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug)]
pub struct FileContext {
    /// Crate directory name under `crates/` (root package files get
    /// `None`).
    pub crate_dir: Option<String>,
    /// True when the whole file is test/bench/example context.
    pub test_file: bool,
    /// True for the batched SoA kernel files (`crates/md/src/batch.rs`,
    /// `crates/smd/src/batch.rs`) whose loop bodies P003 polices.
    pub batch_kernel: bool,
}

impl FileContext {
    /// Classify a workspace-relative, `/`-separated path.
    pub fn from_rel_path(rel_path: &str) -> FileContext {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_dir = match components.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            _ => None,
        };
        let test_file = components
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples"))
            || crate_dir.as_deref() == Some("bench");
        let batch_kernel = matches!(crate_dir.as_deref(), Some("md") | Some("smd"))
            && components.contains(&"src")
            && components.last() == Some(&"batch.rs");
        FileContext {
            crate_dir,
            test_file,
            batch_kernel,
        }
    }

    /// True for the deterministic-simulation crates D001/R001/R002 guard.
    pub fn in_sim_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| SIM_CRATES.contains(&c))
    }

    /// True for crates sanctioned to read entropy/clocks (bench,
    /// telemetry) — exempt from D002 and never seeds/targets for E001.
    pub fn entropy_exempt(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| ENTROPY_EXEMPT_CRATES.contains(&c))
    }

    /// True for crates whose telemetry names M001 polices.
    pub fn in_m001_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| M001_CRATES.contains(&c))
    }
}

/// Mark every token inside `#[cfg(test)]` modules and `#[test]` fns.
/// Thin wrapper over the scope tree, kept for callers that only need
/// the mask.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    ScopeTree::build(tokens).test_mask(tokens.len())
}

/// Mark every token strictly inside a `loop`/`while`/`for` body.
/// Thin wrapper over the scope tree.
pub fn loop_body_mask(tokens: &[Token]) -> Vec<bool> {
    ScopeTree::build(tokens).loop_mask(tokens.len())
}

/// Sync primitives whose mere mention inside a parallel region is an
/// R001 hit (type position or constructor — both mean shared state).
const R001_TYPES: &[&str] = &["Mutex", "RwLock", "RefCell"];

/// Run every per-file rule over one lexed file.
pub fn run_rules(ctx: &FileContext, lexed: &Lexed) -> Vec<RawDiagnostic> {
    let tokens = &lexed.tokens;
    let tree = ScopeTree::build(tokens);
    let mask = tree.test_mask(tokens.len());
    let in_gridsim = ctx.crate_dir.as_deref() == Some("gridsim");
    let loop_mask = if in_gridsim || ctx.batch_kernel {
        tree.loop_mask(tokens.len())
    } else {
        Vec::new()
    };
    let par = if ctx.in_sim_crate() && !ctx.test_file {
        analyze_par(tokens)
    } else {
        Default::default()
    };
    let mut out = Vec::new();
    // Token indices consumed by an N001 match, so the same `unwrap`
    // does not also fire P001 (one defect, one diagnostic).
    let mut n001_tail = vec![false; tokens.len()];

    for (i, tok) in tokens.iter().enumerate() {
        let in_test = ctx.test_file || mask[i];
        let in_par = par.par_mask.get(i).copied().unwrap_or(false);
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                // D001 — nondeterministic iteration in simulation crates.
                if !in_test && ctx.in_sim_crate() && (name == "HashMap" || name == "HashSet") {
                    out.push(RawDiagnostic {
                        rule: "D001",
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{name}` in a simulation crate: iteration order is \
                             nondeterministic across runs — use BTreeMap/BTreeSet or a \
                             sorted Vec so results are bit-reproducible"
                        ),
                    });
                }
                // D002 — ambient entropy / wall-clock time.
                if !in_test && !ctx.entropy_exempt() {
                    let hit = match name {
                        "thread_rng" | "from_entropy" | "SystemTime" => Some(name),
                        "Instant" if is_path_call(tokens, i, "now") => Some("Instant::now"),
                        _ => None,
                    };
                    if let Some(what) = hit {
                        out.push(RawDiagnostic {
                            rule: "D002",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`{what}` injects ambient entropy/time into simulation \
                                 logic — thread seeds and clocks through explicit \
                                 parameters so runs are reproducible"
                            ),
                        });
                    }
                }
                // R001 — shared-state synchronization inside a parallel
                // region: Mutex/RwLock/RefCell mentions, `.lock()`/
                // `.borrow_mut()` calls, and relaxed atomic orderings all
                // make results interleaving-dependent.
                if !in_test && in_par {
                    let hit = if R001_TYPES.contains(&name) {
                        Some(name.to_string())
                    } else if (name == "lock" || name == "borrow_mut")
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        Some(format!(".{name}()"))
                    } else if name == "Relaxed" {
                        Some("Ordering::Relaxed".to_string())
                    } else {
                        None
                    };
                    if let Some(what) = hit {
                        out.push(RawDiagnostic {
                            rule: "R001",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`{what}` inside a parallel closure: work-stealing \
                                 interleaving makes shared-state updates \
                                 order-nondeterministic — give each chunk its own \
                                 scratch slot and reduce serially in index order \
                                 (see md::forces::nonbonded), or hoist the state out \
                                 of the parallel region"
                            ),
                        });
                    }
                }
                // N001 — NaN-unsafe ordering (applies in tests too: a
                // NaN-poisoned comparator corrupts analysis anywhere).
                if name == "partial_cmp" {
                    if let Some(tail) = match_partial_cmp_unwrap(tokens, i) {
                        n001_tail[tail] = true;
                        out.push(RawDiagnostic {
                            rule: "N001",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "NaN-unsafe ordering: `partial_cmp(..).{}()` panics or \
                                 misorders on NaN — use `f64::total_cmp` for a \
                                 deterministic total order",
                                tokens[tail].text
                            ),
                        });
                    }
                }
                // P001 — unwrap()/panic! in non-test library code.
                if !in_test {
                    if name == "unwrap"
                        && !n001_tail[i]
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        out.push(RawDiagnostic {
                            rule: "P001",
                            line: tok.line,
                            col: tok.col,
                            message: "`unwrap()` in library code: use `expect` with an \
                                      invariant message, return a Result, or annotate \
                                      why it cannot fail"
                                .into(),
                        });
                    }
                    if name == "panic" && next_is(tokens, i, TokKind::Punct('!')) {
                        out.push(RawDiagnostic {
                            rule: "P001",
                            line: tok.line,
                            col: tok.col,
                            message: "`panic!` in library code: prefer a typed error, or \
                                      annotate why aborting is the contract"
                                .into(),
                        });
                    }
                }
                // P002 — allocations / linear scans repeated by a loop in
                // the gridsim DES (the paths the scale work de-quadratified).
                if !in_test && in_gridsim && loop_mask.get(i).copied().unwrap_or(false) {
                    if name == "clone"
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        out.push(RawDiagnostic {
                            rule: "P002",
                            line: tok.line,
                            col: tok.col,
                            message: "`.clone()` inside a gridsim loop body: the DES hot \
                                      path must stay allocation-free — hoist the clone out \
                                      of the loop, borrow, or carry an index"
                                .into(),
                        });
                    }
                    if name == "iter" && is_iter_position_chain(tokens, i) {
                        out.push(RawDiagnostic {
                            rule: "P002",
                            line: tok.line,
                            col: tok.col,
                            message: "`.iter().position(..)` inside a gridsim loop body: \
                                      an O(n) scan per iteration makes the event loop \
                                      quadratic — maintain an index map instead"
                                .into(),
                        });
                    }
                }
                // P003 — per-iteration heap allocation in the batched SoA
                // kernel files (md::batch, smd::batch): the lane-swept hot
                // path must stay allocation-free to hold the throughput
                // gate; all scratch is preallocated at construction.
                if !in_test && ctx.batch_kernel && loop_mask.get(i).copied().unwrap_or(false) {
                    let hit = if name == "clone"
                        && prev_is(tokens, i, TokKind::Punct('.'))
                        && next_is(tokens, i, TokKind::Punct('('))
                    {
                        Some(".clone()")
                    } else if name == "Vec" && is_path_call(tokens, i, "new") {
                        Some("Vec::new()")
                    } else if name == "vec" && next_is(tokens, i, TokKind::Punct('!')) {
                        Some("vec![..]")
                    } else {
                        None
                    };
                    if let Some(what) = hit {
                        out.push(RawDiagnostic {
                            rule: "P003",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`{what}` inside a batched-kernel loop body: the SoA \
                                 ensemble hot path must stay allocation-free to hold \
                                 the BENCH_ensemble_batch throughput gate — \
                                 preallocate the buffer at construction (BatchSim \
                                 owns all lane scratch) and reuse it per iteration"
                            ),
                        });
                    }
                }
                // W001 — raw durable-file writes in simulation crates.
                // The atomic-writer internals themselves carry allows.
                if !in_test && ctx.in_sim_crate() {
                    let hit = if name == "File" && is_path_call(tokens, i, "create") {
                        Some("File::create")
                    } else if name == "fs" && is_path_call(tokens, i, "write") {
                        Some("fs::write")
                    } else {
                        None
                    };
                    if let Some(what) = hit {
                        out.push(RawDiagnostic {
                            rule: "W001",
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`{what}` writes a file directly in a simulation crate: \
                                 a crash mid-write leaves a torn file under the real \
                                 name — route it through the atomic writer (temp \
                                 sibling + flush + rename)"
                            ),
                        });
                    }
                }
                // T001 — stray stdout/stderr prints in non-test code.
                // Intentional CLI entry points and report paths carry an
                // allow annotation or a baseline entry.
                if !in_test
                    && matches!(name, "println" | "eprintln" | "print" | "eprint")
                    && next_is(tokens, i, TokKind::Punct('!'))
                {
                    out.push(RawDiagnostic {
                        rule: "T001",
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{name}!` in library code writes straight to the terminal \
                             — return the text, or record it through the telemetry \
                             layer; direct printing is for CLI mains and report paths \
                             (annotate or baseline those)"
                        ),
                    });
                }
                // M001 — telemetry names must be a closed, stable
                // vocabulary: lowercase dot-separated literals or named
                // constants, never format!-built strings.
                if !in_test
                    && ctx.in_m001_crate()
                    && M001_METHODS.contains(&name)
                    && prev_is(tokens, i, TokKind::Punct('.'))
                    && next_is(tokens, i, TokKind::Punct('('))
                {
                    if let Some(hit) = m001_bad_name_arg(tokens, i + 2) {
                        out.push(RawDiagnostic {
                            rule: "M001",
                            line: tok.line,
                            col: tok.col,
                            message: match hit {
                                M001Hit::FormatBuilt => format!(
                                    "`.{name}(format!(..))` mints telemetry names at \
                                     runtime: an unbounded name family breaks the \
                                     diff-able registry export — use a static \
                                     lowercase dot-separated literal or hoist the \
                                     family into a match returning &'static str, and \
                                     carry the variable part in attrs or track keys"
                                ),
                                M001Hit::BadLiteral(lit) => format!(
                                    "telemetry name \"{lit}\" is not lowercase \
                                     dot-separated: every consumer (summary \
                                     sectioning, trace diff, flamegraph frames) keys \
                                     on [a-z0-9_-] segments joined by dots, like \
                                     \"grid.attempt\""
                                ),
                            },
                        });
                    }
                }
            }
            // N002 — float ==/!= against a float literal.
            TokKind::EqEq | TokKind::Ne if !in_test && float_operand(tokens, i) => {
                let op = if tok.kind == TokKind::EqEq {
                    "=="
                } else {
                    "!="
                };
                out.push(RawDiagnostic {
                    rule: "N002",
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "float `{op}` comparison against a literal: exact float \
                         equality is fragile — compare with a tolerance, or \
                         annotate the exact-sentinel intent"
                    ),
                });
            }
            _ => {}
        }
    }
    // R002 — order-sensitive reductions on still-parallel chains.
    for &r in &par.reductions {
        let tok = &tokens[r];
        if mask.get(r).copied().unwrap_or(false) {
            continue; // test context
        }
        out.push(RawDiagnostic {
            rule: "R002",
            line: tok.line,
            col: tok.col,
            message: format!(
                "`.{}()` on a parallel iterator: rayon combines partial results in \
                 work-stealing order, so float reductions reassociate differently \
                 every run — fill per-chunk scratch with for_each and reduce \
                 serially in index order (the md::forces::nonbonded idiom), or \
                 collect() and sum serially",
                tok.text
            ),
        });
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// True when `tokens[i]` (an ident) is followed by `:: name` — detects
/// `Instant::now`.
fn is_path_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens
        .get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.text == name)
}

/// How a telemetry-name argument violates M001.
enum M001Hit {
    /// First argument is `format!(..)` — a runtime-minted name.
    FormatBuilt,
    /// First argument is a string literal that is not lowercase
    /// dot-separated; carries the offending body.
    BadLiteral(String),
}

/// Inspect the first argument of a telemetry-name call, with `j` at the
/// token just past the opening paren. Returns a hit for `format!` (with
/// or without a leading `&`) and for non-conforming string literals;
/// idents (named constants, variables) and raw/byte literals (whose
/// bodies the lexer does not keep) pass — the rule is a vocabulary
/// guard, not a taint analysis.
fn m001_bad_name_arg(tokens: &[Token], mut j: usize) -> Option<M001Hit> {
    while tokens.get(j).is_some_and(|t| t.kind == TokKind::Punct('&')) {
        j += 1;
    }
    let tok = tokens.get(j)?;
    match tok.kind {
        TokKind::Ident if tok.text == "format" && next_is(tokens, j, TokKind::Punct('!')) => {
            Some(M001Hit::FormatBuilt)
        }
        TokKind::Str if !tok.text.is_empty() && !is_registry_name(&tok.text) => {
            Some(M001Hit::BadLiteral(tok.text.clone()))
        }
        _ => None,
    }
}

/// True for the registry-name grammar: one or more non-empty
/// `[a-z0-9_-]` segments joined by single dots.
fn is_registry_name(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        })
}

/// Match `. iter ( ) . position (` with `i` at the `iter` ident.
fn is_iter_position_chain(tokens: &[Token], i: usize) -> bool {
    prev_is(tokens, i, TokKind::Punct('.'))
        && next_is(tokens, i, TokKind::Punct('('))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Punct(')'))
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Punct('.'))
        && tokens.get(i + 4).is_some_and(|t| t.text == "position")
        && tokens
            .get(i + 5)
            .is_some_and(|t| t.kind == TokKind::Punct('('))
}

fn prev_is(tokens: &[Token], i: usize, kind: TokKind) -> bool {
    i > 0 && tokens[i - 1].kind == kind
}

fn next_is(tokens: &[Token], i: usize, kind: TokKind) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.kind == kind)
}

/// Match `partial_cmp ( … ) . unwrap|expect (` starting at the
/// `partial_cmp` ident; returns the index of the `unwrap`/`expect`
/// ident. The argument scan is balanced-paren and bounded, so a
/// pathological file cannot stall the pass.
fn match_partial_cmp_unwrap(tokens: &[Token], i: usize) -> Option<usize> {
    if !next_is(tokens, i, TokKind::Punct('(')) {
        return None;
    }
    let mut j = i + 1;
    let mut depth = 0usize;
    let limit = j + 256;
    while j < tokens.len() && j < limit {
        match tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() || tokens[j].kind != TokKind::Punct(')') {
        return None;
    }
    // `. unwrap (` or `. expect (`
    let dot = j + 1;
    let name = j + 2;
    if tokens
        .get(dot)
        .is_some_and(|t| t.kind == TokKind::Punct('.'))
        && tokens
            .get(name)
            .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        && tokens
            .get(name + 1)
            .is_some_and(|t| t.kind == TokKind::Punct('('))
    {
        Some(name)
    } else {
        None
    }
}

/// True when either operand token adjacent to a `==`/`!=` is a float
/// literal (tolerating one leading unary minus or open paren on the
/// right).
fn float_operand(tokens: &[Token], i: usize) -> bool {
    if i > 0 && tokens[i - 1].kind == TokKind::Float {
        return true;
    }
    let mut j = i + 1;
    while tokens
        .get(j)
        .is_some_and(|t| matches!(t.kind, TokKind::Punct('-') | TokKind::Punct('(')))
    {
        j += 1;
    }
    tokens.get(j).is_some_and(|t| t.kind == TokKind::Float)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawDiagnostic> {
        run_rules(&FileContext::from_rel_path(path), &lex(src))
    }

    fn rules_fired(diags: &[RawDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d001_only_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/lib.rs", src)),
            ["D001"]
        );
        assert!(run("crates/steering/src/lib.rs", src).is_empty());
        assert!(run("crates/gridsim/tests/t.rs", src).is_empty());
    }

    #[test]
    fn d002_catches_instant_now_but_not_instant_type() {
        let hits = run("crates/md/src/x.rs", "let t = Instant::now();");
        assert_eq!(rules_fired(&hits), ["D002"]);
        assert!(run("crates/md/src/x.rs", "fn f(t: Instant) {}").is_empty());
        assert!(run("crates/bench/src/x.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn n001_fires_even_in_tests_and_suppresses_p001() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(rules_fired(&run("crates/stats/src/d.rs", src)), ["N001"]);
        assert_eq!(rules_fired(&run("crates/stats/tests/t.rs", src)), ["N001"]);
        let src2 = "v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));";
        assert_eq!(rules_fired(&run("crates/stats/src/d.rs", src2)), ["N001"]);
    }

    #[test]
    fn n002_literal_float_equality() {
        assert_eq!(
            rules_fired(&run("crates/stats/src/d.rs", "if x == 0.0 {}")),
            ["N002"]
        );
        assert_eq!(
            rules_fired(&run("crates/stats/src/d.rs", "if 1e-9 != y {}")),
            ["N002"]
        );
        // Integer equality is fine; var-vs-var floats are out of scope.
        assert!(run("crates/stats/src/d.rs", "if n == 0 {}").is_empty());
        assert!(run("crates/stats/src/d.rs", "if a == b {}").is_empty());
    }

    #[test]
    fn p001_unwrap_and_panic_lib_only() {
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "let a = b.unwrap();")),
            ["P001"]
        );
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "panic!(\"boom\");")),
            ["P001"]
        );
        assert!(run("crates/md/tests/t.rs", "let a = b.unwrap();").is_empty());
        // unwrap_or_else is a different method.
        assert!(run("crates/md/src/x.rs", "let a = b.unwrap_or_else(f);").is_empty());
        // should_panic attribute text does not match panic!.
        assert!(run("crates/md/src/x.rs", "#[should_panic(expected = \"x\")]").is_empty());
    }

    #[test]
    fn inline_test_module_is_exempt() {
        let src = "
pub fn lib_code(v: Option<u32>) -> u32 { v.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x: Option<u32> = None; x.unwrap(); }
}
";
        let hits = run("crates/md/src/x.rs", src);
        assert_eq!(rules_fired(&hits), ["P001"]);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn test_fn_attribute_exempts_outside_test_mod() {
        // The scope tree (unlike the old mod-only mask) also exempts a
        // bare `#[test] fn` at file scope.
        let src = "#[test]\nfn t() { let x: Option<u32> = None; x.unwrap(); }";
        assert!(run("crates/md/src/x.rs", src).is_empty());
    }

    #[test]
    fn t001_prints_in_lib_code_only() {
        assert_eq!(
            rules_fired(&run("crates/md/src/x.rs", "println!(\"{x}\");")),
            ["T001"]
        );
        assert_eq!(
            rules_fired(&run("crates/steering/src/x.rs", "eprintln!(\"warn\");")),
            ["T001"]
        );
        // Tests, benches and examples print freely.
        assert!(run("crates/md/tests/t.rs", "println!(\"{x}\");").is_empty());
        assert!(run("examples/demo.rs", "println!(\"{x}\");").is_empty());
        // CLI front-ends are NOT path-exempt — they get baseline entries.
        assert_eq!(
            rules_fired(&run("src/main.rs", "println!(\"{x}\");")),
            ["T001"]
        );
        // A `println` ident without the macro bang is something else.
        assert!(run("crates/md/src/x.rs", "let println = 3; println == 4;").is_empty());
    }

    #[test]
    fn m001_format_built_names_in_sim_and_steering_crates() {
        let fmt = "t.counter(&format!(\"grid.failures.{}\", kind)).add(1);";
        assert_eq!(rules_fired(&run("crates/gridsim/src/x.rs", fmt)), ["M001"]);
        assert_eq!(rules_fired(&run("crates/steering/src/x.rs", fmt)), ["M001"]);
        // Without the borrow, and on track/span methods too.
        let span = "track.span_at(format!(\"job.{id}\"), t0);";
        assert_eq!(rules_fired(&run("crates/md/src/x.rs", span)), ["M001"]);
        // Out of scope: non-sim crates, tests, and non-name methods.
        assert!(run("crates/stats/src/x.rs", fmt).is_empty());
        assert!(run("crates/gridsim/tests/t.rs", fmt).is_empty());
        assert!(run("crates/gridsim/src/x.rs", "let s = format!(\"x.{n}\");").is_empty());
    }

    #[test]
    fn m001_literal_names_must_be_lowercase_dotted() {
        let bad = "t.set_gauge(\"steering.messages.control:Pause\", 1.0);";
        assert_eq!(rules_fired(&run("crates/steering/src/x.rs", bad)), ["M001"]);
        let spaced = "track.instant(\"Checkpoint Write\", vec![]);";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", spaced)),
            ["M001"]
        );
        // Conforming literals, named constants, and variables all pass.
        assert!(run(
            "crates/gridsim/src/x.rs",
            "t.counter(\"grid.failures.node-crash\").add(1);"
        )
        .is_empty());
        assert!(run(
            "crates/steering/src/x.rs",
            "t.counter(kind.failures_counter()).add(1);"
        )
        .is_empty());
        assert!(run("crates/smd/src/x.rs", "track.span(NAME_PULL);").is_empty());
        // A free function named like a method is not a telemetry call.
        assert!(run("crates/gridsim/src/x.rs", "histogram(\"Bad Name\", &b);").is_empty());
    }

    #[test]
    fn w001_raw_file_writes_in_sim_crates_only() {
        let create = "let f = fs::File::create(&tmp)?;";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/durability/x.rs", create)),
            ["W001"]
        );
        let write = "std::fs::write(&path, bytes)?;";
        assert_eq!(rules_fired(&run("crates/md/src/x.rs", write)), ["W001"]);
        // Tests, benches, and non-sim crates write files freely.
        assert!(run("crates/gridsim/tests/t.rs", create).is_empty());
        assert!(run("crates/bench/benches/b.rs", write).is_empty());
        assert!(run("crates/steering/src/x.rs", write).is_empty());
        // Neither a plain method named `write` nor a `File` type
        // annotation is a raw file write.
        assert!(run("crates/md/src/x.rs", "w.write(buf)?;").is_empty());
        assert!(run("crates/md/src/x.rs", "fn f(f: File) {}").is_empty());
    }

    #[test]
    fn p002_clone_and_position_in_gridsim_loops_only() {
        let in_loop = "for ev in events { let j = jobs.iter().position(|x| x.id == ev); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", in_loop)),
            ["P002"]
        );
        let clone_loop = "while let Some(e) = q.pop() { let name = site.name.clone(); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", clone_loop)),
            ["P002"]
        );
        assert_eq!(
            rules_fired(&run(
                "crates/gridsim/src/x.rs",
                "loop { let c = v.clone(); break; }"
            )),
            ["P002"]
        );
        // Outside a loop body, in other crates, and in tests: no rule.
        assert!(run("crates/gridsim/src/x.rs", "let c = v.clone();").is_empty());
        assert!(run("crates/md/src/x.rs", clone_loop).is_empty());
        assert!(run("crates/gridsim/tests/t.rs", clone_loop).is_empty());
        // `iter_mut().position` or a bare `position` is not the chain.
        assert!(run(
            "crates/gridsim/src/x.rs",
            "for e in v { let p = w.position(f); }"
        )
        .is_empty());
    }

    #[test]
    fn p003_allocs_in_batch_kernel_loops_only() {
        let clone_loop = "for l in 0..r { let s = lanes.clone(); use_lane(s); }";
        assert_eq!(
            rules_fired(&run("crates/md/src/batch.rs", clone_loop)),
            ["P003"]
        );
        let vec_new = "while step < n { let mut buf = Vec::new(); buf.push(step); }";
        assert_eq!(
            rules_fired(&run("crates/smd/src/batch.rs", vec_new)),
            ["P003"]
        );
        let vec_macro = "loop { let v = vec![0.0; 3 * r]; consume(v); break; }";
        assert_eq!(
            rules_fired(&run("crates/md/src/batch.rs", vec_macro)),
            ["P003"]
        );
        // Construction-time preallocation outside a loop is the
        // sanctioned idiom — silent.
        assert!(run("crates/md/src/batch.rs", "let frc = vec![0.0; 3 * n * r];").is_empty());
        assert!(run("crates/smd/src/batch.rs", "let work = Vec::new();").is_empty());
        // Other md/smd files, other crates' batch.rs, and test trees
        // are out of P003's scope.
        assert!(run("crates/md/src/lib.rs", clone_loop).is_empty());
        assert!(run("crates/stats/src/batch.rs", clone_loop).is_empty());
        assert!(run("crates/md/tests/batch.rs", clone_loop).is_empty());
        // In gridsim the same pattern is P002's jurisdiction, not P003's.
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/batch.rs", clone_loop)),
            ["P002"]
        );
    }

    #[test]
    fn p002_for_loop_discriminated_from_impl_for() {
        // `impl Trait for Type { .. }` bodies are not loop bodies.
        let impl_block = "impl Clone for Thing { fn clone(&self) -> Thing { self.inner.clone() } }";
        assert!(run("crates/gridsim/src/x.rs", impl_block).is_empty());
        // ...but a real for-loop inside an impl method still fires.
        let loop_in_impl =
            "impl Thing { fn go(&self) { for x in &self.v { let c = x.clone(); } } }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", loop_in_impl)),
            ["P002"]
        );
        // Closures in the condition do not confuse the body finder.
        let cond_closure = "while xs.iter().any(|x| { x.live }) { let c = n.clone(); }";
        assert_eq!(
            rules_fired(&run("crates/gridsim/src/x.rs", cond_closure)),
            ["P002"]
        );
    }

    #[test]
    fn r001_sync_in_par_closure_sim_crates_only() {
        let src = "xs.par_iter().for_each(|x| { *acc.lock().expect(\"ok\") += x; });";
        assert_eq!(rules_fired(&run("crates/smd/src/x.rs", src)), ["R001"]);
        // Outside a sim crate, or in a serial closure: no rule.
        assert!(run("crates/steering/src/x.rs", src).is_empty());
        let serial = "xs.iter().for_each(|x| { *acc.lock().expect(\"ok\") += x; });";
        assert!(run("crates/smd/src/x.rs", serial).is_empty());
    }

    #[test]
    fn r001_relaxed_atomic_and_mutex_type_in_par() {
        let relaxed = "(0..n).into_par_iter().map(|i| { c.fetch_add(1, Ordering::Relaxed); i }).collect::<Vec<_>>();";
        assert_eq!(rules_fired(&run("crates/smd/src/x.rs", relaxed)), ["R001"]);
        let mutex = "xs.par_chunks(8).for_each(|c| { let m = Mutex::new(0.0); drop(m); });";
        assert_eq!(rules_fired(&run("crates/md/src/x.rs", mutex)), ["R001"]);
        // A Mutex outside the parallel region is not R001's business.
        let outside = "let acc = Mutex::new(0.0); xs.par_iter().for_each(|x| { work(x); });";
        assert!(run("crates/md/src/x.rs", outside).is_empty());
    }

    #[test]
    fn r002_parallel_float_reduction() {
        let src = "let e: f64 = xs.par_iter().map(|x| x * x).sum();";
        assert_eq!(rules_fired(&run("crates/md/src/x.rs", src)), ["R002"]);
        let reduce = "let e = xs.par_iter().map(f).reduce(|| 0.0, |a, b| a + b);";
        assert_eq!(rules_fired(&run("crates/md/src/x.rs", reduce)), ["R002"]);
        // collect() restores order: the serial sum after it is fine.
        let collected =
            "let v: Vec<f64> = xs.par_iter().map(f).collect(); let e: f64 = v.iter().sum();";
        assert!(run("crates/md/src/x.rs", collected).is_empty());
        // The sanctioned idiom (for_each into scratch) never fires.
        let idiom = "scratch.par_iter_mut().enumerate().for_each(|(c, s)| { fill(c, s); });";
        assert!(run("crates/md/src/x.rs", idiom).is_empty());
        // Serial sums and non-sim crates are out of scope.
        assert!(run("crates/md/src/x.rs", "let e: f64 = xs.iter().sum();").is_empty());
        assert!(run("crates/stats/src/x.rs", src).is_empty());
    }

    #[test]
    fn r_rules_silent_in_test_context() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { let e: f64 = xs.par_iter().map(|x| *acc.lock().expect(\"k\") + x).sum(); }\n}";
        assert!(run("crates/md/src/x.rs", src).is_empty());
        assert!(run("crates/md/tests/t.rs", src).is_empty());
    }

    #[test]
    fn rule_info_lookup_covers_catalog() {
        for r in RULES {
            assert!(rule_info(r.id).is_some());
            assert!(!r.detail.is_empty());
        }
        assert!(rule_info("Z999").is_none());
    }

    #[test]
    fn string_and_comment_bodies_never_fire() {
        let src = "let s = \"thread_rng unwrap() == 0.0\"; // thread_rng unwrap()\n";
        assert!(run("crates/md/src/x.rs", src).is_empty());
    }
}
