//! Violation suppression: inline `// spice-lint: allow(RULE) reason`
//! comments and the checked-in `lint-allow.toml` baseline.
//!
//! Both forms require a written reason; a reason-less allow is itself a
//! violation (`A001`), and an allow that suppresses nothing is reported
//! as stale (`A002`) so annotations cannot rot silently.

use crate::lexer::Comment;
use std::cell::Cell;

/// One inline allow directive, parsed from a line comment.
#[derive(Debug)]
pub struct InlineAllow {
    /// Rule id this directive suppresses (e.g. `P001`).
    pub rule: String,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// 1-indexed line the comment sits on.
    pub line: u32,
    /// Annotation-above style (own line, covers the next line) vs
    /// trailing style (after code, covers its own line).
    pub own_line: bool,
    /// Set when the directive suppressed at least one diagnostic.
    pub used: Cell<bool>,
}

/// A malformed directive (recognized `spice-lint:` marker but unusable).
#[derive(Debug)]
pub struct MalformedAllow {
    /// 1-indexed line of the comment.
    pub line: u32,
    /// What was wrong with it.
    pub problem: String,
}

/// All directives found in one file.
#[derive(Debug, Default)]
pub struct FileAllows {
    /// Well-formed inline allows.
    pub allows: Vec<InlineAllow>,
    /// Malformed ones (reported as `A001`).
    pub malformed: Vec<MalformedAllow>,
}

/// Scan the file's comments for `spice-lint:` directives.
pub fn parse_inline(comments: &[Comment]) -> FileAllows {
    let mut out = FileAllows::default();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("spice-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            out.malformed.push(MalformedAllow {
                line: c.line,
                problem: format!("unrecognized spice-lint directive: `{text}`"),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.malformed.push(MalformedAllow {
                line: c.line,
                problem: "unterminated allow(...) directive".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if rule.is_empty() || !rule.chars().all(|ch| ch.is_ascii_alphanumeric()) {
            out.malformed.push(MalformedAllow {
                line: c.line,
                problem: format!("invalid rule id in allow(...): `{rule}`"),
            });
            continue;
        }
        if reason.is_empty() {
            out.malformed.push(MalformedAllow {
                line: c.line,
                problem: format!("allow({rule}) has no reason — every allow must say why"),
            });
            continue;
        }
        out.allows.push(InlineAllow {
            rule,
            reason,
            line: c.line,
            own_line: c.own_line,
            used: Cell::new(false),
        });
    }
    out
}

impl FileAllows {
    /// True when a directive covers (and therefore suppresses) a
    /// diagnostic of `rule` on `line`. A trailing directive covers its
    /// own line; an annotation-above directive covers the next line.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            let covered = if a.own_line { a.line + 1 } else { a.line };
            if a.rule == rule && covered == line {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// One baseline entry from `lint-allow.toml`: suppress `rule` for every
/// file whose workspace-relative path starts with `path`.
#[derive(Debug)]
pub struct BaselineEntry {
    /// Rule id to suppress.
    pub rule: String,
    /// Path prefix (workspace-relative, `/`-separated).
    pub path: String,
    /// Written justification (required).
    pub reason: String,
    /// Set when the entry suppressed at least one diagnostic.
    pub used: Cell<bool>,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All entries in file order.
    pub entries: Vec<BaselineEntry>,
    /// Parse problems (reported as `A001` at the baseline's own path).
    pub problems: Vec<String>,
}

/// Parse the `lint-allow.toml` baseline. The accepted grammar is the
/// minimal TOML subset the file needs (`[[allow]]` tables with string
/// keys), hand-rolled because the workspace is dependency-free.
pub fn parse_baseline(src: &str) -> Baseline {
    let mut out = Baseline::default();
    let mut cur: Option<(Option<String>, Option<String>, Option<String>)> = None;
    let flush = |cur: &mut Option<(Option<String>, Option<String>, Option<String>)>,
                 out: &mut Baseline| {
        if let Some((rule, path, reason)) = cur.take() {
            match (rule, path, reason) {
                (Some(rule), Some(path), Some(reason)) if !reason.trim().is_empty() => {
                    out.entries.push(BaselineEntry {
                        rule,
                        path,
                        reason,
                        used: Cell::new(false),
                    });
                }
                (rule, path, _) => out.problems.push(format!(
                    "incomplete [[allow]] entry (rule={rule:?}, path={path:?}): \
                     needs rule, path and a non-empty reason"
                )),
            }
        }
    };
    for (n, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut cur, &mut out);
            cur = Some((None, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.problems
                .push(format!("line {}: expected `key = \"value\"`", n + 1));
            continue;
        };
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(str::to_string);
        let Some(value) = value else {
            out.problems.push(format!(
                "line {}: value must be a double-quoted string",
                n + 1
            ));
            continue;
        };
        let Some(entry) = cur.as_mut() else {
            out.problems
                .push(format!("line {}: key outside any [[allow]] entry", n + 1));
            continue;
        };
        match key.trim() {
            "rule" => entry.0 = Some(value),
            "path" => entry.1 = Some(value),
            "reason" => entry.2 = Some(value),
            other => out
                .problems
                .push(format!("line {}: unknown key `{other}`", n + 1)),
        }
    }
    flush(&mut cur, &mut out);
    out
}

impl Baseline {
    /// True when a baseline entry covers `rule` at `path`.
    pub fn suppresses(&self, rule: &str, path: &str) -> bool {
        let mut hit = false;
        for e in &self.entries {
            if e.rule == rule && path.starts_with(e.path.as_str()) {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn inline_allow_with_reason_parses() {
        let lexed = lex("let x = 1; // spice-lint: allow(P001) index proven in range\n");
        let allows = parse_inline(&lexed.comments);
        assert_eq!(allows.allows.len(), 1);
        assert_eq!(allows.allows[0].rule, "P001");
        assert!(allows.allows[0].reason.contains("proven"));
        assert!(allows.suppresses("P001", 1), "trailing covers its own line");
        assert!(!allows.suppresses("P001", 2), "trailing does not leak down");
        assert!(!allows.suppresses("N001", 1));
        let above = parse_inline(&lex("// spice-lint: allow(P001) why\nlet x = 1;\n").comments);
        assert!(above.suppresses("P001", 2), "own-line covers the next line");
        assert!(!above.suppresses("P001", 1));
    }

    #[test]
    fn reasonless_allow_is_malformed() {
        let lexed = lex("// spice-lint: allow(P001)\n");
        let allows = parse_inline(&lexed.comments);
        assert!(allows.allows.is_empty());
        assert_eq!(allows.malformed.len(), 1);
        assert!(allows.malformed[0].problem.contains("no reason"));
    }

    #[test]
    fn baseline_roundtrip() {
        let src = r#"
# comment
[[allow]]
rule = "P001"
path = "crates/md/src/checkpoint.rs"
reason = "serde stub round-trips are infallible here"

[[allow]]
rule = "N002"
path = "crates/stats"
reason = "exact sentinel comparisons"
"#;
        let b = parse_baseline(src);
        assert!(b.problems.is_empty(), "{:?}", b.problems);
        assert_eq!(b.entries.len(), 2);
        assert!(b.suppresses("P001", "crates/md/src/checkpoint.rs"));
        assert!(b.suppresses("N002", "crates/stats/src/descriptive.rs"));
        assert!(!b.suppresses("P001", "crates/md/src/sim.rs"));
    }

    #[test]
    fn baseline_requires_reason() {
        let src = "[[allow]]\nrule = \"P001\"\npath = \"x\"\n";
        let b = parse_baseline(src);
        assert!(b.entries.is_empty());
        assert_eq!(b.problems.len(), 1);
    }
}
