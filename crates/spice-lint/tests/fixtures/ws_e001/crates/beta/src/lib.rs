//! Fixture crate `beta`: owns the entropy site, behind a call cycle.

pub fn deep_roll() {
    spin();
}

fn spin() {
    twirl();
}

fn twirl() {
    spin(); // cycle: spin -> twirl -> spin
    let _r = thread_rng();
}

// Direct entropy use: D002's territory, NOT E001's (distance zero).
pub fn roll() {
    let _r = thread_rng();
}
