//! Fixture crate `alpha`: reaches entropy only through `beta`.

pub fn launch() {
    mid();
}

fn mid() {
    helper();
}

fn helper() {
    spice_beta::deep_roll();
}

pub fn clean() {}

// Shadowed name: this local `roll` is clean; `beta` also has a `roll`
// (tainted). Same-module resolution must pick this one.
fn roll() {}

pub fn call_local_roll() {
    roll();
}

// spice-lint: allow(E001) reproducibility audited: realization seeds threaded at the campaign layer
pub fn audited() {
    mid();
}
