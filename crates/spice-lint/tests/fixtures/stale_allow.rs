// Fixture: the allow below suppresses nothing — A002 expected.
// spice-lint: allow(D001) nothing here iterates a map
pub fn noop() {}
