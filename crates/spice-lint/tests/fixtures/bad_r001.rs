// R001: a Mutex<f64> accumulator inside a par_iter closure makes the
// float-addition order depend on work-stealing interleaving.
pub fn energy(xs: &[f64], acc: &Mutex<f64>) {
    xs.par_iter().for_each(|x| {
        *acc.lock().expect("poisoned") += *x;
    });
}

// Also bad: relaxed atomics inside a spawn body.
pub fn counted(n: usize, hits: &AtomicUsize) {
    spawn(move || {
        hits.fetch_add(n, Ordering::Relaxed);
    });
}
