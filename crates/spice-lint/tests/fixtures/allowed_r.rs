// Annotated parallel-safety exceptions: each allow carries its reason,
// so neither R rule (nor a stale-allow A002) may fire here.
pub fn gauged(xs: &[f64], done: &AtomicUsize) {
    xs.par_iter().for_each(|_x| {
        // spice-lint: allow(R001) monotone progress gauge; value never feeds back into results
        done.fetch_add(1, Ordering::Relaxed);
    });
}

pub fn counted(xs: &[u64]) -> u64 {
    // spice-lint: allow(R002) integer sum: addition is associative, order cannot change the result
    xs.par_iter().sum()
}
