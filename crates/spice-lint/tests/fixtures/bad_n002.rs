// Known-bad fixture: exact float equality against a literal.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
