// P003: per-iteration heap allocation inside the batched SoA kernel's
// step loop — each pattern churns the allocator on the exact path the
// lane sweep optimizes.
pub fn step_all(lanes: &mut [f64], r: usize, steps: u64) {
    for _ in 0..steps {
        let scratch = vec![0.0; 3 * r];
        let mut rows = Vec::new();
        rows.push(scratch.clone());
        apply(lanes, &rows);
    }
}
