//! Fixture: a clean file, so the only diagnostic in this workspace is
//! the stale baseline entry.

pub fn nothing() {}
