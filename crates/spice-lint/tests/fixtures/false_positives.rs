// Fixture: rule-shaped text inside strings and comments must never
// fire. Mentions of HashMap, thread_rng(), unwrap(), x == 0.0, panic!
pub fn describe() -> &'static str {
    "uses HashMap, thread_rng, Instant::now, x == 0.0, unwrap() and panic!"
}

/* block comment: partial_cmp(b).unwrap() and SystemTime too */
pub fn raw() -> &'static str {
    r#"even raw strings: HashSet iteration, from_entropy, 1.0 != y"#
}
