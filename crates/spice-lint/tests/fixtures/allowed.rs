// Fixture: real violations, each carrying a written allow — zero
// diagnostics expected, and no A002 (every allow suppresses something).
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap() // spice-lint: allow(P001) caller guarantees non-empty
}

pub fn is_sentinel(x: f64) -> bool {
    // spice-lint: allow(N002) exact sentinel comparison by design
    x == -1.0
}
