// T001: direct terminal output from library code.
pub fn report_progress(step: u64) {
    println!("step {step}");
    eprintln!("still going");
}
