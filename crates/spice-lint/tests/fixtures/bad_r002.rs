// R002: float reductions on a parallel iterator reassociate in
// work-stealing order — results drift run to run.
pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}

pub fn reduced(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b)
}
