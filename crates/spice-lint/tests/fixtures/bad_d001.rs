// Known-bad fixture: nondeterministic map type in a simulation crate.
pub fn tally(m: &std::collections::HashMap<u32, f64>) -> f64 {
    m.values().sum()
}
