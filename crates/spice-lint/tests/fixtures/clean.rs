//! Clean fixture: deterministic idioms adjacent to every rule's target —
//! zero diagnostics expected.
use std::collections::BTreeMap;

pub fn tally(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum()
}

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn near_zero(x: f64) -> bool {
    x.abs() < 1e-12
}

pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
