// Known-bad fixture: ambient entropy and wall-clock time.
pub fn seed() -> u64 {
    let _t = std::time::Instant::now();
    rand::thread_rng().gen()
}
