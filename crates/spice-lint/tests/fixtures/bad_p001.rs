// Known-bad fixture: panicking library code without annotation.
pub fn get(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    if *first > 10 {
        panic!("too big");
    }
    *first
}
