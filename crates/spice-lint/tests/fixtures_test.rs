//! Fixture-based self-tests: each known-bad snippet must fire its rule
//! at the expected line, clean/allowed/string-heavy snippets must stay
//! silent, and the CLI must exit 0 on the real workspace but nonzero on
//! the fixture directory. Fixture files live in `tests/fixtures/`, which
//! the workspace scan skips by name.

use spice_lint::allow::Baseline;
use spice_lint::{lint_source, Diagnostic};
use std::path::Path;
use std::process::Command;

fn lint(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(rel_path, src, &Baseline::default())
}

fn fired(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn d001_fires_in_sim_crate_at_expected_line() {
    let src = include_str!("fixtures/bad_d001.rs");
    assert_eq!(
        fired(&lint("crates/gridsim/src/bad.rs", src)),
        [("D001", 2)]
    );
    // The same code outside a simulation crate is not a violation.
    assert!(lint("crates/steering/src/bad.rs", src).is_empty());
    // Nor in a sim crate's test tree.
    assert!(lint("crates/gridsim/tests/bad.rs", src).is_empty());
}

#[test]
fn d002_fires_on_both_entropy_sources() {
    let src = include_str!("fixtures/bad_d002.rs");
    assert_eq!(
        fired(&lint("crates/md/src/bad.rs", src)),
        [("D002", 3), ("D002", 4)]
    );
    // Benchmarks time things by design.
    assert!(lint("crates/bench/src/bad.rs", src).is_empty());
}

#[test]
fn n001_fires_once_not_doubled_with_p001() {
    let src = include_str!("fixtures/bad_n001.rs");
    assert_eq!(fired(&lint("crates/stats/src/bad.rs", src)), [("N001", 3)]);
    // N001 applies in test context too: analysis code lives there.
    assert_eq!(
        fired(&lint("crates/stats/tests/bad.rs", src)),
        [("N001", 3)]
    );
}

#[test]
fn n002_fires_at_expected_line() {
    let src = include_str!("fixtures/bad_n002.rs");
    assert_eq!(fired(&lint("crates/md/src/bad.rs", src)), [("N002", 3)]);
}

#[test]
fn p001_fires_on_unwrap_and_panic() {
    let src = include_str!("fixtures/bad_p001.rs");
    assert_eq!(
        fired(&lint("crates/md/src/bad.rs", src)),
        [("P001", 3), ("P001", 5)]
    );
    assert!(lint("crates/md/tests/bad.rs", src).is_empty());
}

#[test]
fn p003_fires_on_all_three_alloc_forms_in_batch_kernels() {
    let src = include_str!("fixtures/bad_p003.rs");
    assert_eq!(
        fired(&lint("crates/md/src/batch.rs", src)),
        [("P003", 6), ("P003", 7), ("P003", 8)]
    );
    assert_eq!(
        fired(&lint("crates/smd/src/batch.rs", src)),
        [("P003", 6), ("P003", 7), ("P003", 8)]
    );
    // The same code anywhere else in md/smd is not P003's business.
    assert!(lint("crates/md/src/integrate.rs", src).is_empty());
    assert!(lint("crates/smd/tests/batch.rs", src).is_empty());
}

#[test]
fn t001_fires_on_prints_in_lib_code() {
    let src = include_str!("fixtures/bad_t001.rs");
    assert_eq!(
        fired(&lint("crates/md/src/bad.rs", src)),
        [("T001", 3), ("T001", 4)]
    );
    // Test trees print freely; CLI front-ends get baseline entries.
    assert!(lint("crates/md/tests/bad.rs", src).is_empty());
}

#[test]
fn r001_fires_on_sync_in_parallel_closures_in_sim_crates() {
    let src = include_str!("fixtures/bad_r001.rs");
    assert_eq!(
        fired(&lint("crates/smd/src/bad.rs", src)),
        [("R001", 5), ("R001", 12)]
    );
    // Outside a simulation crate, and in test trees: silent.
    assert!(lint("crates/steering/src/bad.rs", src).is_empty());
    assert!(lint("crates/smd/tests/bad.rs", src).is_empty());
}

#[test]
fn r002_fires_on_parallel_float_reductions_in_sim_crates() {
    let src = include_str!("fixtures/bad_r002.rs");
    assert_eq!(
        fired(&lint("crates/md/src/bad.rs", src)),
        [("R002", 4), ("R002", 8)]
    );
    assert!(lint("crates/stats/src/bad.rs", src).is_empty());
    assert!(lint("crates/md/benches/bad.rs", src).is_empty());
}

#[test]
fn annotated_r_allows_suppress_without_going_stale() {
    let src = include_str!("fixtures/allowed_r.rs");
    assert!(fired(&lint("crates/smd/src/allowed.rs", src)).is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    let src = include_str!("fixtures/clean.rs");
    assert!(fired(&lint("crates/gridsim/src/clean.rs", src)).is_empty());
}

#[test]
fn allowed_fixture_is_silent_with_no_stale_allows() {
    let src = include_str!("fixtures/allowed.rs");
    assert!(fired(&lint("crates/md/src/allowed.rs", src)).is_empty());
}

#[test]
fn string_and_comment_bodies_are_silent() {
    let src = include_str!("fixtures/false_positives.rs");
    assert!(fired(&lint("crates/gridsim/src/fp.rs", src)).is_empty());
}

#[test]
fn stale_allow_is_reported() {
    let src = include_str!("fixtures/stale_allow.rs");
    assert_eq!(fired(&lint("crates/md/src/stale.rs", src)), [("A002", 2)]);
}

#[test]
fn cli_deny_exits_zero_on_the_workspace() {
    let root = spice_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the crate dir");
    let out = Command::new(env!("CARGO_BIN_EXE_spice-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spice-lint binary runs");
    assert!(
        out.status.success(),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_deny_exits_nonzero_on_bad_fixtures() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = Command::new(env!("CARGO_BIN_EXE_spice-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(&fixtures)
        .output()
        .expect("spice-lint binary runs");
    assert!(
        !out.status.success(),
        "fixture dir full of violations must fail --deny"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["D002", "N001", "N002", "P001", "T001", "A002"] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
