//! Workspace-semantic-layer tests over the fixture workspaces in
//! `tests/fixtures/`: cross-crate resolution, cycle tolerance, shadowed
//! names, deterministic propagation order, E001 chain output, and the
//! missing-file baseline staleness message.

use spice_lint::{lint_workspace, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture_ws(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn e001s(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.rule == "E001").collect()
}

#[test]
fn e001_fires_at_transitive_public_boundaries_with_full_chain() {
    let report = lint_workspace(&fixture_ws("ws_e001"));
    let hits = e001s(&report.diagnostics);
    let places: Vec<(&str, u32)> = hits.iter().map(|d| (d.path.as_str(), d.line)).collect();
    // Exactly two boundaries: alpha::launch (five calls from the
    // entropy site) and beta::deep_roll (two calls). beta::roll uses
    // thread_rng directly — that is D002's diagnostic, not E001's —
    // and alpha::audited is suppressed by its annotated allow.
    assert_eq!(
        places,
        [
            ("crates/alpha/src/lib.rs", 3),
            ("crates/beta/src/lib.rs", 3)
        ],
        "{hits:?}"
    );
    let launch = hits[0];
    assert!(
        launch.message.contains(
            "alpha::launch -> alpha::mid -> alpha::helper -> beta::deep_roll -> \
             beta::spin -> beta::twirl"
        ),
        "chain must be printed in full: {}",
        launch.message
    );
    assert!(
        launch.message.contains("thread_rng"),
        "source token named: {}",
        launch.message
    );
    assert!(
        launch.message.contains("crates/beta/src/lib.rs"),
        "source file named: {}",
        launch.message
    );
}

#[test]
fn shadowed_fn_name_resolves_to_same_module() {
    let report = lint_workspace(&fixture_ws("ws_e001"));
    // alpha::call_local_roll calls the clean local `roll`, not the
    // tainted beta::roll sharing its name — no E001 at its line.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule == "E001" && d.message.contains("call_local_roll")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn direct_entropy_is_d002_not_e001() {
    let report = lint_workspace(&fixture_ws("ws_e001"));
    // beta::roll (direct) and beta::twirl's site produce D002s…
    let d002_lines: Vec<u32> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D002" && d.path == "crates/beta/src/lib.rs")
        .map(|d| d.line)
        .collect();
    assert_eq!(d002_lines, [13, 18], "{:?}", report.diagnostics);
    // …and no E001 mentions `roll`'s own boundary (fn name at line 17).
    assert!(!e001s(&report.diagnostics)
        .iter()
        .any(|d| d.path == "crates/beta/src/lib.rs" && d.line == 17));
}

#[test]
fn allow_suppressed_e001_stays_suppressed_and_not_stale() {
    let report = lint_workspace(&fixture_ws("ws_e001"));
    // alpha::audited is covered by its annotated allow(E001)…
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule == "E001" && d.message.contains("audited")));
    // …and since the allow fired, it must not be reported stale.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule == "A002" && d.path == "crates/alpha/src/lib.rs"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn propagation_is_deterministic_across_runs() {
    let a = lint_workspace(&fixture_ws("ws_e001"));
    let b = lint_workspace(&fixture_ws("ws_e001"));
    let fmt = |r: &[Diagnostic]| r.iter().map(|d| d.to_string()).collect::<Vec<_>>();
    assert_eq!(fmt(&a.diagnostics), fmt(&b.diagnostics));
    // Diagnostics arrive sorted by (path, line, col, rule).
    let keys: Vec<_> = a
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.col, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn baseline_entry_for_missing_file_gets_distinct_message() {
    let report = lint_workspace(&fixture_ws("ws_stale"));
    let stale: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "A002" && d.path == "lint-allow.toml")
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.diagnostics);
    assert!(
        stale[0].message.contains("no file under that path exists"),
        "missing-file staleness must be called out distinctly: {}",
        stale[0].message
    );
    assert!(stale[0].message.contains("crates/gone/src/old.rs"));
}
