//! The computational cost model — §I's back-of-envelope and §II's
//! SMD-JE reduction factor, plus the strong-scaling model behind the
//! "interactivity requires 256 processors" claim (§III).

use serde::{Deserialize, Serialize};

/// The paper's reference performance point and problem sizes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CostModel {
    /// Atom count of the full system.
    pub atoms: u64,
    /// Hours of wall-clock per simulated ns at the reference point.
    pub hours_per_ns: f64,
    /// Processors at the reference point.
    pub ref_procs: u32,
    /// MD time step (fs) — 2 fs with rigid bonds in 2005 NAMD practice.
    pub timestep_fs: f64,
    /// Fraction of per-step work that does not parallelize (Amdahl).
    pub serial_fraction: f64,
}

impl CostModel {
    /// §I's numbers: "approximately 24 hours on 128 processors to
    /// simulate one nanosecond of physical time for a system of
    /// approximately 300,000 atoms".
    pub fn paper() -> Self {
        CostModel {
            atoms: 300_000,
            hours_per_ns: 24.0,
            ref_procs: 128,
            timestep_fs: 2.0,
            serial_fraction: 0.001,
        }
    }

    /// CPU-hours per simulated ns: the paper's "about 3000 CPU-hours on a
    /// tightly coupled machine to simulate 1 ns".
    pub fn cpu_hours_per_ns(&self) -> f64 {
        self.hours_per_ns * self.ref_procs as f64
    }

    /// CPU-hours for a vanilla MD run of `microseconds` of physical time:
    /// §I's "3 × 10⁷ CPU-hours to simulate 10 microseconds".
    pub fn vanilla_cpu_hours(&self, microseconds: f64) -> f64 {
        self.cpu_hours_per_ns() * microseconds * 1e3
    }

    /// Years until vanilla simulation becomes routine by Moore's-law
    /// doubling every `doubling_months` months, given a tolerable budget
    /// of `budget_cpu_hours`: §I's "a couple of decades away".
    pub fn moores_law_years(
        &self,
        microseconds: f64,
        budget_cpu_hours: f64,
        doubling_months: f64,
    ) -> f64 {
        let needed = self.vanilla_cpu_hours(microseconds);
        if needed <= budget_cpu_hours {
            return 0.0;
        }
        let doublings = (needed / budget_cpu_hours).log2();
        doublings * doubling_months / 12.0
    }

    /// Wall-clock per MD step (ms) on `procs` processors — Amdahl
    /// strong scaling calibrated at the reference point.
    pub fn step_wall_ms(&self, procs: u32) -> f64 {
        assert!(procs > 0);
        // Steps per ns and total wall at the reference point.
        let steps_per_ns = 1e6 / self.timestep_fs;
        let ref_step_ms = self.hours_per_ns * 3_600_000.0 / steps_per_ns;
        // Decompose the reference step time into serial + parallel parts.
        // ref_step = s + p/ref_procs with s = serial_fraction × t1,
        // p = (1-serial_fraction) × t1 where t1 is the 1-proc step time.
        let rp = self.ref_procs as f64;
        let t1 = ref_step_ms / (self.serial_fraction + (1.0 - self.serial_fraction) / rp);
        self.serial_fraction * t1 + (1.0 - self.serial_fraction) * t1 / procs as f64
    }

    /// Steering-force update rate (Hz) on `procs` processors with an
    /// IMD exchange every `steps_per_exchange` steps.
    pub fn imd_rate_hz(&self, procs: u32, steps_per_exchange: u64) -> f64 {
        1e3 / (self.step_wall_ms(procs) * steps_per_exchange as f64)
    }

    /// Minimum processors for interactive steering at ≥ `min_hz` force
    /// updates, scanning powers of two — reproduces §III's "typically
    /// requires performing simulations on 256 processors".
    pub fn min_procs_for_interactivity(&self, min_hz: f64, steps_per_exchange: u64) -> u32 {
        let mut p = 1u32;
        while p <= 1 << 20 {
            if self.imd_rate_hz(p, steps_per_exchange) >= min_hz {
                return p;
            }
            p *= 2;
        }
        p
    }
}

/// The SMD-JE cost picture of §II: "the net computational requirement for
/// the problem of interest can be reduced by a factor of 50-100".
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct SmdJeCosting {
    /// Physical time a brute-force study must cover (µs) — translocation
    /// takes "tens of microseconds"; the tractable study target.
    pub target_microseconds: f64,
    /// Production campaign cost (CPU-hours) — §III's ≈75,000.
    pub campaign_cpu_hours: f64,
    /// Pre-processing + interactive priming cost (CPU-hours).
    pub priming_cpu_hours: f64,
}

impl SmdJeCosting {
    /// Paper-calibrated numbers.
    pub fn paper() -> Self {
        SmdJeCosting {
            target_microseconds: 2.5,
            campaign_cpu_hours: 75_000.0,
            priming_cpu_hours: 20_000.0,
        }
    }

    /// Total SMD-JE cost.
    pub fn total_cpu_hours(&self) -> f64 {
        self.campaign_cpu_hours + self.priming_cpu_hours
    }

    /// The net reduction factor vs vanilla MD.
    pub fn reduction_factor(&self, model: &CostModel) -> f64 {
        model.vanilla_cpu_hours(self.target_microseconds) / self.total_cpu_hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_back_of_envelope_reproduced() {
        let m = CostModel::paper();
        // "about 3000 CPU-hours … to simulate 1 ns"
        assert!((m.cpu_hours_per_ns() - 3_072.0).abs() < 1.0);
        // "3 × 10⁷ CPU-hours to simulate 10 microseconds"
        let v = m.vanilla_cpu_hours(10.0);
        assert!(
            (v - 3.072e7).abs() < 1e5,
            "10 µs vanilla cost {v} should be ≈3×10⁷ CPU-hours"
        );
    }

    #[test]
    fn moores_law_a_couple_of_decades() {
        let m = CostModel::paper();
        // Routine ≡ affordable within ~75k CPU-hours (one campaign).
        let years = m.moores_law_years(10.0, 75_000.0, 18.0);
        assert!(
            (10.0..30.0).contains(&years),
            "\"a couple of decades\": got {years:.1} years"
        );
    }

    #[test]
    fn step_time_calibrated_at_reference() {
        let m = CostModel::paper();
        // 24 h per ns at 2 fs steps = 172.8 ms per step on 128 procs.
        let t = m.step_wall_ms(128);
        assert!((t - 172.8).abs() < 0.5, "got {t}");
        // More processors → faster, with diminishing returns.
        assert!(m.step_wall_ms(256) < t);
        assert!(m.step_wall_ms(256) > t / 2.0, "Amdahl penalty visible");
    }

    #[test]
    fn interactivity_needs_256_procs() {
        let m = CostModel::paper();
        // "sense of interactivity": ≥ 1 force update/s with a 10-step
        // exchange cadence.
        let p = m.min_procs_for_interactivity(1.0, 10);
        assert_eq!(
            p, 256,
            "§III: interactive simulation of the 300k-atom system needs 256 procs"
        );
        // 128 procs must NOT be interactive under the same criterion.
        assert!(m.imd_rate_hz(128, 10) < 1.0);
    }

    #[test]
    fn smdje_reduction_in_paper_band() {
        let f = SmdJeCosting::paper().reduction_factor(&CostModel::paper());
        assert!(
            (50.0..=100.0).contains(&f),
            "§II: SMD-JE reduces cost by 50–100×; got {f:.0}"
        );
    }

    #[test]
    fn reduction_scales_with_target() {
        let m = CostModel::paper();
        let mut c = SmdJeCosting::paper();
        let base = c.reduction_factor(&m);
        c.target_microseconds *= 2.0;
        assert!((c.reduction_factor(&m) / base - 2.0).abs() < 1e-9);
    }
}
