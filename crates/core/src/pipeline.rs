//! The SMD-JE → PMF pipeline and the Fig. 4 parameter sweep.

use crate::config::Scale;
use rayon::prelude::*;
use spice_jarzynski::error::statistical::{
    cost_normalized_sigma, pmf_bootstrap_sigma, pmf_sigma_scalar,
};
use spice_jarzynski::optimal::{select_optimal, ParameterCell, Selection};
use spice_jarzynski::pmf::{Estimator, PmfCurve};
use spice_md::units::KT_300;
use spice_md::Simulation;
use spice_pore::build::{PoreSystemBuilder, SmdSelection};
use spice_pore::dna::DnaParams;
use spice_smd::{
    partition_outcomes, run_ensemble_batched_traced, run_ensemble_cloned_traced, PullProtocol,
    WorkTrajectory,
};
use spice_stats::rng::SeedSequence;
use spice_telemetry::Telemetry;

/// Leading-bead start height: in the β-barrel just below the
/// constriction, so the 10 Å pull crosses the narrowest point — the
/// paper's "sub-trajectory close to the centre of the pore".
pub const PULL_START_Z: f64 = 46.0;

/// Build the standard SPICE simulation for one realization.
pub fn pore_simulation(scale: Scale, seed: u64) -> Simulation {
    PoreSystemBuilder::new()
        .dna(DnaParams {
            n_bases: scale.dna_bases(),
            ..DnaParams::default()
        })
        .dna_start_z(PULL_START_Z)
        .smd_selection(SmdSelection::WholeStrand)
        .build()
        .into_simulation(0.01, seed)
}

/// One completed (κ, v) sweep cell.
#[derive(Debug, Clone)]
pub struct PmfCell {
    /// Spring constant, paper units (pN/Å).
    pub kappa_pn_per_a: f64,
    /// Velocity, paper units (Å/ns) — the *label*; the engine runs the
    /// scaled value (see [`Scale::velocity_factor`]).
    pub v_label: f64,
    /// Jarzynski PMF curve.
    pub curve: PmfCurve,
    /// Mean-work curve (dissipation upper bound).
    pub mean_work_curve: PmfCurve,
    /// Cost-normalized statistical error (kcal/mol).
    pub sigma_stat_norm: f64,
    /// Raw (un-normalized) bootstrap error.
    pub sigma_stat_raw: f64,
    /// Systematic error vs the reference profile.
    pub sigma_sys: f64,
    /// Fraction of the required span the ensemble-mean COM actually
    /// covered (1.0 = full sub-trajectory).
    pub coverage: f64,
    /// Realizations used.
    pub n_realizations: usize,
    /// Realizations that failed (numerical blow-up) and were dropped
    /// from the estimate — silent attrition biases the Jarzynski
    /// average, so it must be visible in every report.
    pub n_failed: usize,
    /// The raw trajectories (kept for downstream analysis).
    pub trajectories: Vec<WorkTrajectory>,
}

/// The full sweep output: Fig. 4(a–d) plus the §IV parameter table and
/// selection.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// All cells, ordered (κ outer, v inner) per the paper's grids.
    pub cells: Vec<PmfCell>,
    /// The reference ("putatively correct") profile: (s, Φ).
    pub reference: Vec<(f64, f64)>,
    /// Parameter-cell summary for the selection step.
    pub table: Vec<ParameterCell>,
    /// The selected optimum — the paper concludes (100 pN/Å, 12.5 Å/ns).
    pub selection: Selection,
    /// Scale the sweep ran at.
    pub scale: Scale,
}

/// Run one (κ, v) ensemble and estimate its PMF.
pub fn run_cell(scale: Scale, kappa: f64, v_label: f64, seeds: SeedSequence) -> PmfCell {
    run_cell_traced(scale, kappa, v_label, seeds, &Telemetry::disabled(), 0)
}

/// [`run_cell`] with telemetry: the whole cell runs under a
/// `core.run_cell` span on the `("core.cell", track_key)` track, the
/// ensemble and its realizations trace through
/// [`run_ensemble_cloned_traced`] (same `track_key`), and the estimation
/// stages land as instants once the work values are in. With
/// `Telemetry::disabled()` this *is* `run_cell` — identical results
/// either way.
pub fn run_cell_traced(
    scale: Scale,
    kappa: f64,
    v_label: f64,
    seeds: SeedSequence,
    telemetry: &Telemetry,
    track_key: u64,
) -> PmfCell {
    let cell_track = telemetry.track("core.cell", track_key);
    let _cell_span = cell_track.span("core.run_cell");
    let protocol = scale.protocol(kappa, v_label);
    // Clone-amortized ensemble: one shared equilibration per cell, each
    // realization forked from the snapshot with a fresh noise stream plus
    // a short decorrelation hold (see DESIGN.md). Large cells route
    // through the batched SoA engine — bit-identical to the cloned path,
    // but all replicas advance through one vectorized loop.
    let n = scale.realizations();
    let results = if n >= scale.batch_min_realizations() {
        run_ensemble_batched_traced(
            |seed| pore_simulation(scale, seed),
            &protocol,
            n,
            seeds,
            scale.decorrelation_steps(),
            telemetry,
            track_key,
        )
    } else {
        run_ensemble_cloned_traced(
            |seed| pore_simulation(scale, seed),
            &protocol,
            n,
            seeds,
            scale.decorrelation_steps(),
            telemetry,
            track_key,
        )
    };
    let (mut trajectories, failures) = partition_outcomes(results);
    let n_failed = failures.len();
    if let Some(first) = failures.first() {
        // spice-lint: allow(T001) anti-silent-attrition contract: the drop must reach the operator even untraced; the count also lands in the report's failed-realizations fact
        eprintln!(
            "spice-core: cell (κ={kappa}, v={v_label}) dropped {n_failed} failed \
             realization(s); first: {first}"
        );
    }
    assert!(
        !trajectories.is_empty(),
        "every realization of cell (κ={kappa}, v={v_label}) failed"
    );
    // Re-label with paper units so curves carry the Fig. 4 legend values.
    for t in &mut trajectories {
        t.v_a_per_ns = v_label;
        t.kappa_pn_per_a = kappa;
    }
    // Audit: the ensemble handed downstream must be exactly what the
    // scale requested — no duplicated or invented realizations — and
    // every surviving trajectory must be time/coordinate ordered.
    #[cfg(feature = "audit")]
    {
        if trajectories.len() > scale.realizations() {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[core.ensemble_count]: cell (κ={kappa}, \
                 v={v_label}) produced {} trajectories for {} requested",
                trajectories.len(),
                scale.realizations()
            );
        }
        for t in &trajectories {
            if !t.is_well_formed() {
                // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                panic!(
                    "spice-audit[core.trajectory_order]: cell (κ={kappa}, \
                     v={v_label}) seed {} produced a non-monotone work \
                     trajectory",
                    t.seed
                );
            }
        }
    }
    let span = scale.pull_distance();
    let npts = scale.pmf_points();
    let curve = PmfCurve::estimate(&trajectories, span, npts, KT_300, Estimator::Jarzynski);
    let mean_work_curve =
        PmfCurve::estimate(&trajectories, span, npts, KT_300, Estimator::MeanWork);
    let sigmas = pmf_bootstrap_sigma(
        &trajectories,
        span,
        npts,
        KT_300,
        Estimator::Jarzynski,
        scale.bootstrap_resamples(),
        seeds.stream(u64::MAX),
    );
    let sigma_stat_raw = pmf_sigma_scalar(&sigmas);
    let sigma_stat_norm = cost_normalized_sigma(
        sigma_stat_raw,
        trajectories.len(),
        v_label,
        *PullProtocol::V_GRID.last().expect("non-empty grid"),
        trajectories.len(),
    );
    let coverage = curve
        .points
        .last()
        .map(|p| (p.com_disp / span).clamp(0.0, 1.0))
        .unwrap_or(0.0);
    if telemetry.is_enabled() {
        telemetry.counter("core.cells_completed").incr();
        telemetry
            .counter("core.realizations_used")
            .add(trajectories.len() as u64);
        telemetry
            .counter("core.realizations_failed")
            .add(n_failed as u64);
        cell_track.instant(
            "core.pmf_estimated",
            vec![
                ("kappa", format!("{kappa}")),
                ("v", format!("{v_label}")),
                ("realizations", trajectories.len().to_string()),
            ],
        );
    }
    PmfCell {
        kappa_pn_per_a: kappa,
        v_label,
        curve,
        mean_work_curve,
        sigma_stat_norm,
        sigma_stat_raw,
        sigma_sys: f64::NAN, // filled in once the reference exists
        coverage,
        n_realizations: trajectories.len(),
        n_failed,
        trajectories,
    }
}

/// Compute the reference profile — the "putatively correct PMF" of
/// §IV-C: thermodynamic integration over static umbrella windows (the
/// adiabatic limit of the pull), at the paper's optimal spring constant,
/// reported on the *COM displacement* axis (the x-axis of Fig. 4: the
/// PMF belongs to the molecule, not the guide).
pub fn reference_profile(scale: Scale, seeds: SeedSequence) -> Vec<(f64, f64)> {
    let n_windows = (scale.pmf_points() / 2).max(5);
    let ti = crate::ti::ti_profile(
        |seed| pore_simulation(scale, seed),
        scale,
        scale.pull_distance(),
        n_windows,
        100.0,
        seeds,
    );
    // Keep strictly monotone in COM so it can be interpolated.
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(ti.profile.len());
    for &(c, phi) in &ti.profile {
        if out.last().is_none_or(|&(pc, _)| c > pc + 1e-9) {
            out.push((c, phi));
        }
    }
    out
}

/// Systematic error of a cell on the COM axis: RMS of
/// `Φ_cell(com) − Φ_ref(com)` over a uniform COM grid spanning the FULL
/// required range. The PMF is needed along the whole sub-trajectory, so
/// where a cell's COM never reached (a weak spring lagging its guide)
/// its profile is clamped at the last measured value — exactly the
/// failure mode Fig. 4a exhibits for κ = 10 pN/Å.
fn sigma_sys_on_com(curve: &PmfCurve, reference: &[(f64, f64)], span: f64) -> f64 {
    // The cell's profile as a (com, phi) table, monotone in com.
    let mut cell: Vec<(f64, f64)> = Vec::with_capacity(curve.points.len());
    for p in &curve.points {
        if cell.last().is_none_or(|&(c, _)| p.com_disp > c + 1e-9) {
            cell.push((p.com_disp, p.phi));
        }
    }
    if reference.len() < 2 {
        return f64::NAN;
    }
    if cell.len() < 2 {
        // The COM never moved measurably: the cell produced no profile at
        // all. Its implicit estimate is Φ ≡ 0; score the full deviation.
        cell = vec![(0.0, 0.0), (1e-9, 0.0)];
    }
    let npts = 16;
    let mut sum = 0.0;
    for k in 1..=npts {
        let com = span * k as f64 / npts as f64;
        // interp_reference clamps beyond the table ends, implementing the
        // "no data beyond coverage" penalty for both curves.
        let d = interp_reference(&cell, com) - interp_reference(reference, com);
        sum += d * d;
    }
    (sum / npts as f64).sqrt()
}

fn interp_reference(reference: &[(f64, f64)], s: f64) -> f64 {
    if reference.is_empty() {
        return 0.0;
    }
    let mut prev = reference[0];
    for &cur in &reference[1..] {
        if cur.0 >= s {
            let span = cur.0 - prev.0;
            if span <= 0.0 {
                return cur.1;
            }
            let w = (s - prev.0) / span;
            return prev.1 * (1.0 - w) + cur.1 * w;
        }
        prev = cur;
    }
    reference.last().expect("non-empty").1
}

/// Run the full Fig. 4 sweep: 3 κ × 4 v cells, reference, error table and
/// parameter selection.
pub fn run_sweep(scale: Scale, master_seed: u64) -> SweepResult {
    let root = SeedSequence::new(master_seed);
    let reference = reference_profile(scale, root.child(999));

    // Cells are independent; parallelize across them (each cell already
    // parallelizes its realizations, rayon nests fine via work stealing).
    let grid: Vec<(usize, f64, f64)> = PullProtocol::KAPPA_GRID
        .iter()
        .flat_map(|&k| PullProtocol::V_GRID.iter().map(move |&v| (k, v)))
        .enumerate()
        .map(|(i, (k, v))| (i, k, v))
        .collect();
    let mut cells: Vec<PmfCell> = grid
        .par_iter()
        .map(|&(i, k, v)| run_cell(scale, k, v, root.child(i as u64)))
        .collect();

    // Fill systematic errors against the reference, on the COM axis over
    // the full required range.
    for cell in &mut cells {
        cell.sigma_sys = sigma_sys_on_com(&cell.curve, &reference, scale.pull_distance());
    }

    // Build the selection table, including Δ(PMF) vs the next-slower v.
    let mut table = Vec::with_capacity(cells.len());
    for cell in &cells {
        let slower = cells.iter().find(|c| {
            c.kappa_pn_per_a == cell.kappa_pn_per_a && (c.v_label * 2.0 - cell.v_label).abs() < 1e-9
        });
        let delta = slower
            .map(|s| cell.curve.rms_difference(&s.curve))
            .unwrap_or(f64::NAN);
        table.push(ParameterCell {
            kappa_pn_per_a: cell.kappa_pn_per_a,
            v_a_per_ns: cell.v_label,
            sigma_stat: cell.sigma_stat_norm,
            sigma_sys: cell.sigma_sys,
            delta_vs_slower: delta,
            // "Full sub-trajectory" with a tolerance of one grid cell.
            covered: cell.coverage >= 0.9,
        });
    }
    let selection = select_optimal(&table, 0.5);
    SweepResult {
        cells,
        reference,
        table,
        selection,
        scale,
    }
}

impl SweepResult {
    /// The cell for a (κ, v) pair, if present.
    pub fn cell(&self, kappa: f64, v: f64) -> Option<&PmfCell> {
        self.cells
            .iter()
            .find(|c| c.kappa_pn_per_a == kappa && c.v_label == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_produces_pmf() {
        let cell = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(5));
        assert_eq!(cell.n_realizations, Scale::Test.realizations());
        assert!(!cell.curve.points.is_empty());
        assert!(cell.sigma_stat_raw.is_finite());
        assert!(cell.sigma_stat_norm.is_finite());
        // PMF rises through the constriction approach (confinement +
        // like-charge ring): the end value should be positive.
        let last = cell.curve.points.last().expect("points");
        assert!(last.phi.is_finite(), "PMF must be finite, got {}", last.phi);
    }

    #[test]
    fn jarzynski_below_mean_work_in_real_pipeline() {
        let cell = run_cell(Scale::Test, 100.0, 100.0, SeedSequence::new(6));
        for (je, mw) in cell.curve.points.iter().zip(&cell.mean_work_curve.points) {
            assert!(
                je.phi <= mw.phi + 1e-6,
                "JE {} above mean work {}",
                je.phi,
                mw.phi
            );
        }
    }

    #[test]
    fn dissipation_ordering_between_velocities() {
        // Mean work (dissipation-inclusive) at the fastest pull must
        // exceed the slowest at matched κ — §IV-C's mechanism. Evaluated
        // at the end of the pull where the effect accumulates.
        let seeds = SeedSequence::new(7);
        let slow = run_cell(Scale::Test, 100.0, 12.5, seeds.child(0));
        let fast = run_cell(Scale::Test, 100.0, 100.0, seeds.child(1));
        let end_mw = |c: &PmfCell| c.mean_work_curve.points.last().unwrap().phi;
        assert!(
            end_mw(&fast) > end_mw(&slow),
            "fast-pull mean work {} must exceed slow-pull {}",
            end_mw(&fast),
            end_mw(&slow)
        );
    }

    #[test]
    fn reference_profile_monotone_grid() {
        let r = reference_profile(Scale::Test, SeedSequence::new(8));
        assert!(r.len() >= 2);
        for w in r.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(r[0].1.abs() < 1e-9, "reference gauged at 0");
    }

    #[test]
    fn interp_reference_endpoints() {
        let r = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 3.0)];
        assert_eq!(interp_reference(&r, 0.5), 1.0);
        assert_eq!(interp_reference(&r, 5.0), 3.0);
        assert_eq!(interp_reference(&[], 1.0), 0.0);
    }
}
