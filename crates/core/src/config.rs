//! Run-scale configuration.
//!
//! The paper's production pulls cover 10 Å at 12.5–100 Å/ns on a
//! 300,000-atom system. Our coarse-grained substitute is ~10³× cheaper
//! per step, so experiments keep the paper's *ratios* (the physics of
//! Fig. 4 depends on ratios, not absolute values) while scaling the
//! velocity grid up by a fixed factor to fit laptop wall-clock budgets.
//! DESIGN.md records this substitution.

use serde::{Deserialize, Serialize};
use spice_smd::PullProtocol;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// CI-friendly: seconds per experiment.
    Test,
    /// Bench/default: tens of seconds for the full Fig. 4 sweep.
    Bench,
    /// Overnight: closest to the paper's sampling.
    Paper,
}

impl Scale {
    /// Velocity multiplier applied to the paper's Å/ns grid. The
    /// coarse-grained beads relax in ~0.5 ps, so even the paper's true
    /// velocities are tractable here; Test/Bench scale up modestly to
    /// keep CI fast while staying far below the ballistic regime.
    pub fn velocity_factor(self) -> f64 {
        match self {
            Scale::Test => 8.0,
            Scale::Bench => 1.0,
            Scale::Paper => 1.0,
        }
    }

    /// Pull distance (Å) — the paper's 10 Å sub-trajectory, shortened for
    /// tests.
    pub fn pull_distance(self) -> f64 {
        match self {
            Scale::Test => 4.0,
            Scale::Bench => 10.0,
            Scale::Paper => 10.0,
        }
    }

    /// Realizations per (κ, v) cell.
    pub fn realizations(self) -> usize {
        match self {
            Scale::Test => 6,
            Scale::Bench => 24,
            Scale::Paper => 72,
        }
    }

    /// Equilibration steps before each pull.
    pub fn equilibration_steps(self) -> u64 {
        match self {
            Scale::Test => 300,
            Scale::Bench => 2_000,
            Scale::Paper => 5_000,
        }
    }

    /// Post-clone decorrelation steps when a cell amortizes equilibration
    /// via checkpoint/clone (`run_ensemble_cloned`): each realization is
    /// forked from the shared equilibrated snapshot and held this many
    /// extra steps under its own noise stream before pulling. Sized at a
    /// few thermostat relaxation times (γ = 5 ps⁻¹, dt = 0.01 ps →
    /// 1/(γ·dt) = 20 steps) — long enough to wash out the correlated
    /// start, an order of magnitude shorter than full equilibration.
    pub fn decorrelation_steps(self) -> u64 {
        match self {
            Scale::Test => 60,
            Scale::Bench => 200,
            Scale::Paper => 500,
        }
    }

    /// DNA length (bases) of the model strand.
    pub fn dna_bases(self) -> usize {
        match self {
            Scale::Test => 8,
            Scale::Bench => 12,
            Scale::Paper => 16,
        }
    }

    /// PMF grid points over the pull distance.
    pub fn pmf_points(self) -> usize {
        match self {
            Scale::Test => 9,
            Scale::Bench => 21,
            Scale::Paper => 41,
        }
    }

    /// Bootstrap resamples for σ_stat.
    pub fn bootstrap_resamples(self) -> usize {
        match self {
            Scale::Test => 60,
            Scale::Bench => 200,
            Scale::Paper => 1_000,
        }
    }

    /// Minimum realizations per cell before [`run_cell`] routes the
    /// ensemble through the batched SoA engine
    /// (`spice_smd::run_ensemble_batched_traced`) instead of the cloned
    /// per-replica path. The two paths are bit-identical, so the switch
    /// is purely a throughput decision: lane sweeps only amortize their
    /// fixed costs once enough replicas share the loop. `Test` (6
    /// realizations) stays on the cloned path; `Bench` (24) and `Paper`
    /// (72) batch.
    ///
    /// [`run_cell`]: crate::pipeline::run_cell
    pub fn batch_min_realizations(self) -> usize {
        16
    }

    /// The pulling protocol for one paper-unit (κ [pN/Å], v [Å/ns]) cell
    /// at this scale: paper labels in, scaled velocities out.
    pub fn protocol(self, kappa_pn_per_a: f64, v_a_per_ns: f64) -> PullProtocol {
        PullProtocol {
            kappa_pn_per_a,
            v_a_per_ns: v_a_per_ns * self.velocity_factor(),
            pull_distance: self.pull_distance(),
            dt_ps: 0.01,
            equilibration_steps: self.equilibration_steps(),
            sample_stride: 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_ratios_preserved() {
        // Whatever the factor, 100/12.5 must stay 8 — the paper's cost
        // normalization depends on it.
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let slow = scale.protocol(100.0, 12.5);
            let fast = scale.protocol(100.0, 100.0);
            assert!((fast.v_a_per_ns / slow.v_a_per_ns - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scales_are_ordered_by_cost() {
        let cost = |s: Scale| s.protocol(100.0, 12.5).pull_steps() * s.realizations() as u64;
        assert!(cost(Scale::Test) < cost(Scale::Bench));
        assert!(cost(Scale::Bench) < cost(Scale::Paper));
    }

    #[test]
    fn protocols_are_valid() {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            for &k in &PullProtocol::KAPPA_GRID {
                for &v in &PullProtocol::V_GRID {
                    scale.protocol(k, v).validate();
                }
            }
        }
    }
}
