//! Phase 1: pre-processing / priming (§II–III).
//!
//! "These initial simulations along with real-time interactive tools are
//! used to develop a qualitative understanding of the forces and the
//! DNA's response to forces. This qualitative understanding helps in
//! choosing the initial range of parameters over which we will try to
//! find the optimal value."
//!
//! The priming run relaxes the built system, then drags the strand a
//! short distance with a stiff probe spring and measures the force scale
//! the pore opposes with. The κ grid must bracket that scale (the spring
//! must dominate but not overwhelm it), and the v grid is bounded by the
//! strand's relaxation time.

use crate::config::Scale;
use crate::pipeline::pore_simulation;
use serde::{Deserialize, Serialize};
use spice_md::units;
use spice_smd::{run_pull, PullProtocol};
use spice_stats::rng::SeedSequence;

/// What priming learned.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PrimingResult {
    /// Peak spring force encountered while dragging (pN).
    pub peak_force_pn: f64,
    /// Mean |force| during the drag (pN).
    pub mean_force_pn: f64,
    /// Suggested κ search range (pN/Å): bracket the measured stiffness.
    pub kappa_range_pn_per_a: (f64, f64),
    /// Suggested v grid (paper labels, Å/ns).
    pub v_grid: Vec<f64>,
    /// Steps spent.
    pub steps: u64,
}

/// Run the priming phase.
pub fn run_priming(scale: Scale, master_seed: u64) -> PrimingResult {
    let seeds = SeedSequence::new(master_seed);
    let mut sim = pore_simulation(scale, seeds.stream(0));
    // Relax first (static visualization happens on this state).
    let relax = scale.equilibration_steps();
    sim.run(relax, &mut []).expect("priming relaxation");

    // Drag with a stiff probe at a moderate rate and watch the force.
    let probe = PullProtocol {
        kappa_pn_per_a: 500.0,
        v_a_per_ns: 50.0 * scale.velocity_factor(),
        pull_distance: scale.pull_distance() * 0.5,
        dt_ps: 0.01,
        equilibration_steps: scale.equilibration_steps() / 2,
        sample_stride: 10,
    };
    let outcome = run_pull(&mut sim, &probe, seeds.stream(1)).expect("priming drag");
    let forces_pn: Vec<f64> = outcome
        .trajectory
        .samples
        .iter()
        .map(|s| units::force_kcal_to_pn(s.force).abs())
        .collect();
    let peak = forces_pn.iter().cloned().fold(0.0, f64::max);
    let mean = spice_stats::mean(&forces_pn);

    // κ must overpower the opposing force over ~1 Å of slack but stay
    // within ~2 orders of magnitude: the paper's 10–1000 pN/Å bracket.
    let center = peak.max(1.0);
    let kappa_range = (center / 10.0, center * 10.0);

    PrimingResult {
        peak_force_pn: peak,
        mean_force_pn: mean,
        kappa_range_pn_per_a: kappa_range,
        v_grid: PullProtocol::V_GRID.to_vec(),
        steps: relax + outcome.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priming_measures_a_force_scale() {
        let r = run_priming(Scale::Test, 42);
        assert!(r.peak_force_pn > 0.0, "dragging must meet resistance");
        assert!(
            r.peak_force_pn < 5_000.0,
            "forces should be molecular-scale"
        );
        assert!(r.mean_force_pn <= r.peak_force_pn);
        assert!(r.steps > 0);
    }

    #[test]
    fn kappa_range_brackets_paper_grid() {
        let r = run_priming(Scale::Test, 43);
        let (lo, hi) = r.kappa_range_pn_per_a;
        assert!(lo < hi);
        // The paper's middle κ (100 pN/Å) should fall inside the bracket
        // the priming run suggests for this system.
        assert!(
            lo < 100.0 && 100.0 < hi,
            "paper's κ=100 must lie in the suggested range ({lo}, {hi})"
        );
    }

    #[test]
    fn v_grid_is_papers() {
        let r = run_priming(Scale::Test, 44);
        assert_eq!(r.v_grid, vec![12.5, 25.0, 50.0, 100.0]);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_priming(Scale::Test, 7), run_priming(Scale::Test, 7));
    }
}
