//! Phase 2: interactive molecular dynamics (§II–III).
//!
//! Couples a live pore simulation to a visualizer + haptic device through
//! the steering framework (the in-process analogue of the paper's
//! 256-processor IMD sessions), and quantifies the network dependence of
//! the coupled loop with the QoS model: lightpath vs general-purpose
//! internet.

use crate::config::Scale;
use crate::costing::CostModel;
use crate::pipeline::pore_simulation;
use serde::{Deserialize, Serialize};
use spice_gridsim::network::{Path, QosProfile};
use spice_stats::rng::SeedSequence;
use spice_steering::imd::{simulate_session, ImdConfig, ImdStats};
use spice_steering::service::GridService;
use spice_steering::{HapticDevice, SteeringHook, Visualizer};

/// What the interactive phase produced.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct InteractiveResult {
    /// Frames rendered during the live session.
    pub frames: u64,
    /// IMD forces injected.
    pub forces_applied: u64,
    /// Peak haptic force felt (pN) — the §III "estimate of force values".
    pub peak_haptic_force_pn: f64,
    /// Net displacement achieved by dragging (Å).
    pub dragged_angstroms: f64,
    /// Coupled-loop statistics on the lightpath network.
    pub lightpath: ImdStats,
    /// Coupled-loop statistics on the commodity network.
    pub commodity: ImdStats,
    /// Processors assumed for the full-size system (paper: 256).
    pub procs: u32,
}

/// Run the interactive phase.
pub fn run_interactive(scale: Scale, master_seed: u64) -> InteractiveResult {
    let seeds = SeedSequence::new(master_seed);

    // --- Live in-process session: drag the strand upward with haptics.
    let service = GridService::shared();
    let mut sim = pore_simulation(scale, seeds.stream(0));
    let dna: Vec<usize> = sim
        .force_field()
        .topology()
        .group("dna")
        .expect("pore system defines dna group")
        .to_vec();
    let lead = dna[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    let mut vis = Visualizer::attach(service.clone(), hook.component_id())
        .with_haptic(HapticDevice::phantom());
    let z0 = sim.system().positions()[lead].z;
    let bursts = match scale {
        Scale::Test => 20,
        Scale::Bench => 60,
        Scale::Paper => 200,
    };
    for b in 0..bursts {
        sim.run(10, &mut [&mut hook]).expect("interactive burst");
        // The scientist steadily raises the stylus.
        let hand_z = z0 + 0.25 * (b as f64 + 1.0);
        while vis.steer_with_haptic(&[lead], hand_z).is_some() {}
    }
    // Drag is measured against an unsteered control with the same seed:
    // the free strand coils and its lead bead sinks, so the absolute z
    // change alone would mix steering with relaxation.
    let mut control = pore_simulation(scale, seeds.stream(0));
    control
        .run(bursts * 10, &mut [])
        .expect("interactive control");
    let dragged = sim.system().positions()[lead].z - control.system().positions()[lead].z;
    let device = vis.haptic.as_ref().expect("device attached");
    let peak_pn = device.max_observed_force_pn();

    // --- Network dependence of the coupled loop for the full-size
    // system: the paper's 300k-atom simulation on 256 processors.
    let cost = CostModel::paper();
    let procs = 256;
    let cfg = ImdConfig {
        step_wall_ms: cost.step_wall_ms(procs),
        steps_per_exchange: 10,
        n_exchanges: match scale {
            Scale::Test => 100,
            Scale::Bench => 400,
            Scale::Paper => 2_000,
        },
        frame_bytes: 200_000,
        force_bytes: 512,
        vis_render_ms: 15.0,
        rto_ms: 200.0,
        seed: seeds.stream(1),
    };
    let lightpath = Path::new(vec![QosProfile::TransAtlanticLightpath.link()]);
    let commodity = Path::new(vec![QosProfile::TransAtlanticCommodity.link()]);
    let s_lp = simulate_session(&cfg, &lightpath, &lightpath);
    let s_gp = simulate_session(&cfg, &commodity, &commodity);

    InteractiveResult {
        frames: hook.frames_emitted(),
        forces_applied: hook.forces_applied(),
        peak_haptic_force_pn: peak_pn,
        dragged_angstroms: dragged,
        lightpath: s_lp,
        commodity: s_gp,
        procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_session_drags_strand() {
        let r = run_interactive(Scale::Test, 5);
        assert!(r.frames > 0);
        assert!(r.forces_applied > 0);
        assert!(
            r.dragged_angstroms > 0.3,
            "haptic dragging should lift the lead bead: {}",
            r.dragged_angstroms
        );
        assert!(r.peak_haptic_force_pn > 0.0);
    }

    #[test]
    fn lightpath_outperforms_commodity() {
        let r = run_interactive(Scale::Test, 6);
        assert!(
            r.lightpath.slowdown() < r.commodity.slowdown(),
            "lightpath {} vs commodity {}",
            r.lightpath.slowdown(),
            r.commodity.slowdown()
        );
        assert_eq!(r.procs, 256);
    }

    #[test]
    fn deterministic() {
        let a = run_interactive(Scale::Test, 7);
        let b = run_interactive(Scale::Test, 7);
        assert_eq!(a, b);
    }
}
