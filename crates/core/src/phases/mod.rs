//! The three-phase SPICE workflow (§III):
//!
//! 1. [`preprocess`] — static visualization + priming simulations that
//!    bound the parameter search space,
//! 2. [`interactive`] — IMD with visualization and haptics over
//!    QoS-guaranteed networks,
//! 3. [`batch`] — the 72-simulation production campaign on the federated
//!    grid.

pub mod batch;
pub mod interactive;
pub mod preprocess;

pub use batch::{run_batch, BatchResult};
pub use interactive::{run_interactive, InteractiveResult};
pub use preprocess::{run_priming, PrimingResult};
