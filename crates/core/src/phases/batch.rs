//! Phase 3: the production batch on the federated grid (§III, T-batch).
//!
//! Runs the production SMD-JE ensemble at the selected optimal
//! parameters *and* maps the corresponding 72 grid jobs onto the
//! simulated US–UK federation, giving both the science output (the PMF)
//! and the infrastructure output (makespan, CPU-hours).

use crate::config::Scale;
use crate::pipeline::{pore_simulation, run_cell, PmfCell};
use serde::{Deserialize, Serialize};
use spice_gridsim::campaign::{paper_production_jobs, Campaign, CampaignResult};
use spice_gridsim::federation::Federation;
use spice_stats::rng::SeedSequence;

/// Output of the batch phase.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The production PMF at the optimal parameters.
    pub pmf: PmfCell,
    /// Grid execution of the 72-simulation campaign on the federation.
    pub federated: CampaignResult,
    /// The same campaign forced onto the best single site (NCSA).
    pub single_site: CampaignResult,
}

/// Summary facts for reporting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct BatchSummary {
    /// Federated makespan (days).
    pub federated_days: f64,
    /// Single-site makespan (days).
    pub single_site_days: f64,
    /// Campaign CPU-hours.
    pub cpu_hours: f64,
    /// Under a week on the federation?
    pub under_a_week: bool,
}

impl BatchResult {
    /// Condensed summary.
    pub fn summary(&self) -> BatchSummary {
        BatchSummary {
            federated_days: self.federated.makespan_days(),
            single_site_days: self.single_site.makespan_days(),
            cpu_hours: self.federated.cpu_hours,
            under_a_week: self.federated.makespan_days() < 7.0,
        }
    }
}

/// Run the batch phase with the paper's optimal (κ = 100 pN/Å,
/// v = 12.5 Å/ns).
pub fn run_batch(scale: Scale, master_seed: u64) -> BatchResult {
    let seeds = SeedSequence::new(master_seed);
    // Science: the production ensemble (realization count set by scale;
    // the paper's 72 realizations correspond to Scale::Paper).
    let pmf = run_cell(scale, 100.0, 12.5, seeds.child(0));
    let _ = pore_simulation; // the cell factory builds the same system

    // Infrastructure: 72 jobs on the federation vs the best single site.
    let federated = Campaign::paper_batch_phase(seeds.stream(1)).run();
    let mut single = Campaign::paper_batch_phase(seeds.stream(1));
    single.federation = Federation::paper_us_uk().restricted(&[0]);
    let single_site = single.run();
    assert_eq!(federated.records.len(), paper_production_jobs().len());

    BatchResult {
        pmf,
        federated,
        single_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_reproduces_t_batch_claims() {
        let r = run_batch(Scale::Test, 21);
        let s = r.summary();
        assert!(
            s.under_a_week,
            "federated campaign took {} days",
            s.federated_days
        );
        assert!(
            s.single_site_days > 1.8 * s.federated_days,
            "grid advantage missing: {} vs {}",
            s.single_site_days,
            s.federated_days
        );
        assert!((s.cpu_hours - 75_000.0).abs() < 10_000.0);
    }

    #[test]
    fn science_output_present() {
        let r = run_batch(Scale::Test, 22);
        assert_eq!(r.pmf.kappa_pn_per_a, 100.0);
        assert_eq!(r.pmf.v_label, 12.5);
        assert!(!r.pmf.curve.points.is_empty());
    }
}
