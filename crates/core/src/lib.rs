//! # spice-core
//!
//! The SPICE application: everything above the substrates. This crate
//! wires the pore model, SMD, Jarzynski analysis, steering framework and
//! grid simulator into the paper's actual workflow and into one
//! experiment driver per figure/claim (see DESIGN.md's experiment index).
//!
//! * [`config`] — run scales (test / bench / paper) and the velocity
//!   scaling the coarse-grained substitute uses (documented in
//!   DESIGN.md).
//! * [`costing`] — the paper's §I back-of-envelope cost model, the
//!   SMD-JE 50–100× reduction, and the strong-scaling model behind the
//!   "interactivity needs 256 processors" claim.
//! * [`phases`] — the three-phase scientific workflow: pre-processing /
//!   priming, interactive (IMD + haptics), and the production batch on
//!   the federated grid.
//! * [`pipeline`] — SMD-JE → PMF for one (κ, v) cell and the full Fig. 4
//!   sweep with error analysis and optimal-parameter selection.
//! * [`ti`] — the §VI extension: thermodynamic integration on the same
//!   infrastructure, cross-validating the JE profiles.
//! * [`experiments`] — one driver per paper artifact (F1–F5, T-*), each
//!   producing a renderable [`report::Report`].
//! * [`report`] — plain-text tables/series shared by examples, benches
//!   and EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod config;
pub mod costing;
pub mod experiments;
pub mod phases;
pub mod pipeline;
pub mod report;
pub mod ti;

pub use config::Scale;
pub use pipeline::{run_sweep, PmfCell, SweepResult};
pub use report::Report;
