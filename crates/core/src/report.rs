//! Plain-text reporting shared by experiment drivers, examples and
//! benches, and pasted into EXPERIMENTS.md.

use std::fmt::Write as _;

/// A renderable experiment report: key/value facts, tables and series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Experiment id (e.g. "F4a", "T-batch").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Key facts in order.
    pub facts: Vec<(String, String)>,
    /// Tables: (caption, header, rows).
    pub tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
}

impl Report {
    /// New empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Default::default()
        }
    }

    /// Append a key/value fact.
    pub fn fact(&mut self, key: impl Into<String>, value: impl std::fmt::Display) -> &mut Self {
        self.facts.push((key.into(), value.to_string()));
        self
    }

    /// Append a table.
    pub fn table(
        &mut self,
        caption: impl Into<String>,
        header: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> &mut Self {
        for r in &rows {
            assert_eq!(r.len(), header.len(), "ragged table row");
        }
        self.tables.push((caption.into(), header, rows));
        self
    }

    /// Append an (x, y…) series as a table.
    pub fn series(
        &mut self,
        caption: impl Into<String>,
        columns: Vec<String>,
        points: &[Vec<f64>],
    ) -> &mut Self {
        let rows = points
            .iter()
            .map(|p| p.iter().map(|v| format!("{v:.4}")).collect())
            .collect();
        self.table(caption, columns, rows)
    }

    /// Render as readable plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== [{}] {} ==", self.id, self.title);
        for (k, v) in &self.facts {
            let _ = writeln!(out, "  {k}: {v}");
        }
        for (caption, header, rows) in &self.tables {
            let _ = writeln!(out, "  -- {caption} --");
            let widths: Vec<usize> = header
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    rows.iter()
                        .map(|r| r[i].len())
                        .chain(std::iter::once(h.len()))
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            let fmt_row = |cells: &[String]| -> String {
                cells
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{c:>w$}", w = w))
                    .collect::<Vec<_>>()
                    .join("  ")
            };
            let _ = writeln!(out, "  {}", fmt_row(header));
            for r in rows {
                let _ = writeln!(out, "  {}", fmt_row(r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_facts_and_tables() {
        let mut r = Report::new("T-x", "demo");
        r.fact("makespan", "5.2 days");
        r.table(
            "results",
            vec!["site".into(), "jobs".into()],
            vec![
                vec!["NCSA".into(), "30".into()],
                vec!["SDSC".into(), "22".into()],
            ],
        );
        let text = r.render();
        assert!(text.contains("[T-x] demo"));
        assert!(text.contains("makespan: 5.2 days"));
        assert!(text.contains("NCSA"));
        assert!(text.contains("site"));
    }

    #[test]
    fn series_formats_floats() {
        let mut r = Report::new("F4", "pmf");
        r.series(
            "phi",
            vec!["s".into(), "phi".into()],
            &[vec![0.0, 0.0], vec![1.0, 2.5]],
        );
        assert!(r.render().contains("2.5000"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut r = Report::new("x", "y");
        r.table("t", vec!["a".into()], vec![vec!["1".into(), "2".into()]]);
    }
}
