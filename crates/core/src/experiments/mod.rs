//! One driver per paper artifact. Each returns a [`crate::Report`]; the
//! bench crate and EXPERIMENTS.md consume them. IDs follow DESIGN.md's
//! experiment index.

pub mod bidirectional;
pub mod campaign;
pub mod cost_model;
pub mod fig1_system;
pub mod fig2_steering;
pub mod fig3_translocation;
pub mod fig4_pmf;
pub mod hidden_ip;
pub mod imd_qos;
pub mod reservations;
pub mod resilience;
pub mod subtrajectory;
pub mod ti_extension;

use crate::config::Scale;
use crate::report::Report;

/// Run every experiment at the given scale; returns reports in index
/// order. (The Fig. 4 sweep dominates the cost.)
pub fn run_all(scale: Scale, master_seed: u64) -> Vec<Report> {
    vec![
        fig1_system::run(scale, master_seed),
        fig2_steering::run(scale, master_seed),
        fig3_translocation::run(scale, master_seed),
        fig4_pmf::run(scale, master_seed),
        subtrajectory::run(scale, master_seed),
        cost_model::run(),
        campaign::run(master_seed),
        imd_qos::run(scale, master_seed),
        hidden_ip::run(),
        reservations::run(master_seed),
        ti_extension::run(scale, master_seed),
        bidirectional::run(scale, master_seed),
        resilience::run(master_seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_produce_reports() {
        let reports = run_all(Scale::Test, 123);
        assert_eq!(reports.len(), 13);
        for r in &reports {
            assert!(!r.id.is_empty());
            assert!(!r.render().is_empty());
        }
        // Every index id appears once.
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        for want in [
            "F1",
            "F2",
            "F3",
            "F4",
            "T-subtraj",
            "T-cost",
            "T-batch",
            "T-imd",
            "T-hidden",
            "T-resv",
            "T-ti",
            "T-bidir",
            "T-resil",
        ] {
            assert!(ids.contains(&want), "missing experiment {want}: {ids:?}");
        }
    }
}
