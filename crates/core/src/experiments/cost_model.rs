//! T-cost — §I's back-of-envelope and §II's SMD-JE reduction, reproduced
//! as checkable numbers.

use crate::costing::{CostModel, SmdJeCosting};
use crate::report::Report;

/// Run T-cost.
pub fn run() -> Report {
    let m = CostModel::paper();
    let c = SmdJeCosting::paper();
    let mut r = Report::new(
        "T-cost",
        "Computational cost model: back-of-envelope + SMD-JE reduction (§I, §II)",
    );
    r.fact("system size (atoms)", m.atoms)
        .fact(
            "reference point",
            format!("{} h per ns on {} procs", m.hours_per_ns, m.ref_procs),
        )
        .fact(
            "CPU-hours per ns",
            format!("{:.0} (paper: ~3000)", m.cpu_hours_per_ns()),
        )
        .fact(
            "vanilla 10 µs",
            format!("{:.2e} CPU-hours (paper: 3×10⁷)", m.vanilla_cpu_hours(10.0)),
        )
        .fact(
            "Moore's-law wait for routine 10 µs",
            format!(
                "{:.0} years (paper: 'a couple of decades')",
                m.moores_law_years(10.0, 75_000.0, 18.0)
            ),
        )
        .fact(
            "SMD-JE total cost",
            format!("{:.0} CPU-hours", c.total_cpu_hours()),
        )
        .fact(
            "SMD-JE reduction factor",
            format!("{:.0}× (paper: 50–100×)", c.reduction_factor(&m)),
        )
        .fact(
            "step wall time @128 procs",
            format!("{:.1} ms", m.step_wall_ms(128)),
        )
        .fact(
            "step wall time @256 procs",
            format!("{:.1} ms", m.step_wall_ms(256)),
        )
        .fact(
            "min procs for interactivity (≥1 Hz updates)",
            format!("{} (paper: 256)", m.min_procs_for_interactivity(1.0, 10)),
        );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_all_paper_numbers() {
        let r = run();
        let text = r.render();
        assert!(text.contains("3000"));
        assert!(text.contains("3×10⁷"));
        assert!(text.contains("50–100"));
        assert!(text.contains("(paper: 256)"));
    }
}
