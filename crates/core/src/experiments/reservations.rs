//! T-resv — §V-C-3/5/6: the manual advance-reservation workflow, the
//! web-interface improvement, and the exponential decay of co-allocation
//! success with grid count.

use crate::report::Report;
use spice_gridsim::federation::Federation;
use spice_gridsim::scheduler::reservation::{
    co_allocation_success_probability, ManualBookingModel,
};

/// Run T-resv.
pub fn run(master_seed: u64) -> Report {
    let manual = ManualBookingModel::paper_manual();
    let web = ManualBookingModel::web_interface();
    let n = 20_000;
    let (m_emails, m_errors, m_delay, m_ok) = manual.expected(n, master_seed);
    let (w_emails, w_errors, w_delay, w_ok) = web.expected(n, master_seed ^ 1);

    let mut r = Report::new(
        "T-resv",
        "Advance reservations: manual vs web interface; co-allocation decay (§V-C-3/5/6)",
    );
    r.table(
        "booking workflow (means over 20k simulated reservations)",
        vec![
            "workflow".into(),
            "emails".into(),
            "errors".into(),
            "delay (h)".into(),
            "success".into(),
        ],
        vec![
            vec![
                "manual (2 admins)".into(),
                format!("{m_emails:.1}"),
                format!("{m_errors:.2}"),
                format!("{m_delay:.1}"),
                format!("{:.1}%", m_ok * 100.0),
            ],
            vec![
                "web interface".into(),
                format!("{w_emails:.1}"),
                format!("{w_errors:.2}"),
                format!("{w_delay:.1}"),
                format!("{:.1}%", w_ok * 100.0),
            ],
        ],
    );
    r.fact(
        "paper anecdote",
        "≈12 emails, 3 distinct errors, 2 administrators for one request",
    );

    // Co-allocation decay across grid counts.
    let p_single = m_ok;
    let pts: Vec<Vec<f64>> = (1..=6u32)
        .map(|g| vec![g as f64, co_allocation_success_probability(p_single, g)])
        .collect();
    r.series(
        "co-allocation success vs number of independent grids",
        vec!["grids".into(), "P(success)".into()],
        &pts,
    );
    let fed = Federation::paper_us_uk();
    let empirical = fed.co_schedule_success_rate(&manual, n, master_seed ^ 2);
    r.fact(
        "US–UK federation (2 grids) empirical co-allocation rate",
        format!(
            "{:.1}% (analytic {:.1}%)",
            empirical * 100.0,
            fed.co_allocation_probability(p_single) * 100.0
        ),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_workflow_costs_dominate() {
        let r = run(55);
        let text = r.render();
        assert!(text.contains("manual (2 admins)"));
        assert!(text.contains("web interface"));
        assert!(text.contains("co-allocation success"));
    }

    #[test]
    fn decay_series_is_decreasing() {
        let r = run(56);
        // The decay series is the second table.
        let series = &r.tables[1].2;
        let ps: Vec<f64> = series.iter().map(|row| row[1].parse().unwrap()).collect();
        for w in ps.windows(2) {
            assert!(w[1] < w[0], "success must decay with grids: {ps:?}");
        }
    }
}
