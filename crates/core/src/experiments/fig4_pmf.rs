//! F4 — Fig. 4(a–d) + the §IV parameter table (T-opt): PMF Φ vs COM
//! displacement for every (κ, v) cell, the cost-normalized statistical
//! and systematic errors, and the optimal-parameter selection.

use crate::config::Scale;
use crate::pipeline::{run_sweep, SweepResult};
use crate::report::Report;
use spice_smd::PullProtocol;

/// Run the full Fig. 4 sweep and format it.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let sweep = run_sweep(scale, master_seed);
    report(&sweep)
}

/// Format an already-computed sweep.
pub fn report(sweep: &SweepResult) -> Report {
    let mut r = Report::new(
        "F4",
        "PMF vs displacement for the (κ, v) sweep; optimal-parameter selection (Fig. 4, §IV)",
    );
    r.fact(
        "velocity scaling",
        format!(
            "paper labels × {} (coarse-grained substitute; ratios preserved)",
            sweep.scale.velocity_factor()
        ),
    );

    // Failed realizations drop out of the JE average silently at the
    // ensemble layer; surface the attrition here so a biased Φ is
    // never mistaken for a converged one.
    let n_failed: usize = sweep.cells.iter().map(|c| c.n_failed).sum();
    r.fact(
        "failed realizations",
        if n_failed == 0 {
            "none (every JE average used its full ensemble)".to_string()
        } else {
            let detail: Vec<String> = sweep
                .cells
                .iter()
                .filter(|c| c.n_failed > 0)
                .map(|c| format!("κ={} v={}: {}", c.kappa_pn_per_a, c.v_label, c.n_failed))
                .collect();
            format!(
                "{n_failed} dropped — JE averages on incomplete cells are biased ({})",
                detail.join(", ")
            )
        },
    );

    // Panels (a)–(c): one table per κ, columns per v.
    for &kappa in &PullProtocol::KAPPA_GRID {
        let cells: Vec<_> = sweep
            .cells
            .iter()
            .filter(|c| c.kappa_pn_per_a == kappa)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let npts = cells[0].curve.points.len();
        let mut header = vec!["COM disp (Å)".to_string()];
        header.extend(cells.iter().map(|c| format!("Φ @ v={}", c.v_label)));
        let mut rows = Vec::with_capacity(npts);
        for i in 0..npts {
            let mut row = vec![format!("{:.2}", cells[0].curve.points[i].com_disp)];
            for c in &*cells {
                row.push(
                    c.curve
                        .points
                        .get(i)
                        .map(|p| format!("{:.3}", p.phi))
                        .unwrap_or_default(),
                );
            }
            rows.push(row);
        }
        r.table(
            format!("Fig. 4 panel: κ = {kappa} pN/Å (Φ in kcal/mol)"),
            header,
            rows,
        );
    }

    // Panel (d): κ sweep at v = 12.5.
    {
        // spice-lint: allow(N002) v_label is an exact grid constant, not a computed float
        let cells: Vec<_> = sweep.cells.iter().filter(|c| c.v_label == 12.5).collect();
        if !cells.is_empty() {
            let npts = cells[0].curve.points.len();
            let mut header = vec!["COM disp (Å)".to_string()];
            header.extend(cells.iter().map(|c| format!("Φ @ κ={}", c.kappa_pn_per_a)));
            let mut rows = Vec::with_capacity(npts);
            for i in 0..npts {
                let mut row = vec![format!("{:.2}", cells[0].curve.points[i].com_disp)];
                for c in &*cells {
                    row.push(
                        c.curve
                            .points
                            .get(i)
                            .map(|p| format!("{:.3}", p.phi))
                            .unwrap_or_default(),
                    );
                }
                rows.push(row);
            }
            r.table("Fig. 4d: v = 12.5 Å/ns, κ sweep", header, rows);
        }
    }

    // T-opt: the error table.
    let rows: Vec<Vec<String>> = sweep
        .table
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.kappa_pn_per_a),
                format!("{}", c.v_a_per_ns),
                format!("{:.3}", c.sigma_stat),
                format!("{:.3}", c.sigma_sys),
                if c.delta_vs_slower.is_nan() {
                    "-".into()
                } else {
                    format!("{:.3}", c.delta_vs_slower)
                },
                if c.covered { "yes".into() } else { "NO".into() },
                format!("{:.3}", c.score()),
            ]
        })
        .collect();
    r.table(
        "§IV error analysis (σ_stat cost-normalized per §IV-C)",
        vec![
            "κ (pN/Å)".into(),
            "v (Å/ns)".into(),
            "σ_stat".into(),
            "σ_sys".into(),
            "Δ vs v/2".into(),
            "covered".into(),
            "score".into(),
        ],
        rows,
    );
    r.fact(
        "selected optimum",
        format!(
            "κ = {} pN/Å, v = {} Å/ns (converged: {})",
            sweep.selection.kappa_pn_per_a, sweep.selection.v_a_per_ns, sweep.selection.converged
        ),
    );
    r.fact(
        "κ ranking (best score per κ)",
        format!("{:?}", sweep.selection.kappa_ranking),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_twelve_cells() {
        let sweep = run_sweep(Scale::Test, 99);
        assert_eq!(sweep.cells.len(), 12);
        assert_eq!(sweep.table.len(), 12);
        for cell in &sweep.cells {
            assert!(cell.sigma_stat_norm.is_finite());
            assert!(cell.sigma_sys.is_finite());
            assert!(!cell.curve.points.is_empty());
        }
        // Selection lands on a grid point.
        assert!([10.0, 100.0, 1000.0].contains(&sweep.selection.kappa_pn_per_a));
        assert!([12.5, 25.0, 50.0, 100.0].contains(&sweep.selection.v_a_per_ns));
    }

    #[test]
    fn cost_normalization_penalizes_slow_pulls() {
        let sweep = run_sweep(Scale::Test, 100);
        // At fixed κ, σ_stat_norm(v=12.5)/σ_stat_raw = √8 relative scaling
        // vs v=100 by construction.
        let slow = sweep.cell(100.0, 12.5).unwrap();
        let ratio = slow.sigma_stat_norm / slow.sigma_stat_raw;
        assert!((ratio - 8f64.sqrt()).abs() < 1e-9, "got {ratio}");
        let fast = sweep.cell(100.0, 100.0).unwrap();
        assert!((fast.sigma_stat_norm / fast.sigma_stat_raw - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_contains_all_panels() {
        let sweep = run_sweep(Scale::Test, 101);
        let r = report(&sweep);
        let text = r.render();
        assert!(text.contains("κ = 10 pN/Å"));
        assert!(text.contains("κ = 100 pN/Å"));
        assert!(text.contains("κ = 1000 pN/Å"));
        assert!(text.contains("Fig. 4d"));
        assert!(text.contains("selected optimum"));
    }
}
