//! T-bidir — ablation/extension: bidirectional (Crooks/BAR) estimation
//! on the same infrastructure.
//!
//! §VI argues the SPICE grid infrastructure generalizes to "different
//! approaches" for free energies. Bidirectional pulling is the canonical
//! one: run half the ensemble forward, half backward, and combine with
//! the Bennett acceptance ratio. This experiment measures what the
//! upgrade buys: BAR's end-to-end ΔΦ versus one-sided JE versus the TI
//! reference, at matched total compute.

use crate::config::Scale;
use crate::pipeline::{pore_simulation, reference_profile};
use crate::report::Report;
use rayon::prelude::*;
use spice_jarzynski::crooks::{bar_free_energy, hysteresis};
use spice_jarzynski::jarzynski_free_energy;
use spice_md::units::KT_300;
use spice_smd::{run_pull, run_reverse_pull};
use spice_stats::rng::SeedSequence;

/// Outcome of the bidirectional study.
#[derive(Debug, Clone, PartialEq)]
pub struct BidirResult {
    /// One-sided JE estimate of ΔΦ over the sub-trajectory (forward
    /// ensemble only, 2n realizations).
    pub je_forward: f64,
    /// BAR estimate (n forward + n reverse).
    pub bar: f64,
    /// TI reference ΔΦ.
    pub ti_reference: f64,
    /// Mean hysteresis (dissipated work) of the protocol pair.
    pub hysteresis: f64,
    /// Realizations per direction.
    pub n_per_direction: usize,
}

/// Run the study at the paper-optimal (κ = 100, v = 12.5).
pub fn study(scale: Scale, master_seed: u64) -> BidirResult {
    let seeds = SeedSequence::new(master_seed);
    let protocol = scale.protocol(100.0, 12.5);
    let n = scale.realizations() / 2;

    let forward: Vec<f64> = (0..2 * n)
        .into_par_iter()
        .filter_map(|i| {
            let seed = seeds.child(1).stream(i as u64);
            let mut sim = pore_simulation(scale, seed);
            run_pull(&mut sim, &protocol, seed)
                .ok()
                .map(|o| o.trajectory.final_work())
        })
        .collect();
    // The reverse leg must start from *equilibrium in the end state*; the
    // strand is shifted there mechanically, so give it substantially more
    // equilibration than a forward pull needs.
    let reverse_protocol = spice_smd::PullProtocol {
        equilibration_steps: protocol.equilibration_steps * 5,
        ..protocol
    };
    let reverse: Vec<f64> = (0..n)
        .into_par_iter()
        .filter_map(|i| {
            let seed = seeds.child(2).stream(i as u64);
            let mut sim = pore_simulation(scale, seed);
            run_reverse_pull(&mut sim, &reverse_protocol, seed)
                .ok()
                .map(|o| o.trajectory.final_work())
        })
        .collect();
    assert!(!forward.is_empty() && !reverse.is_empty());

    let reference = reference_profile(scale, seeds.child(3));
    let ti_end = reference.last().map(|&(_, p)| p).unwrap_or(f64::NAN);

    BidirResult {
        je_forward: jarzynski_free_energy(&forward, KT_300),
        bar: bar_free_energy(&forward[..n.min(forward.len())], &reverse, KT_300),
        ti_reference: ti_end,
        hysteresis: hysteresis(&forward, &reverse),
        n_per_direction: n,
    }
}

/// Run T-bidir.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let s = study(scale, master_seed);
    let mut r = Report::new(
        "T-bidir",
        "Bidirectional (Crooks/BAR) extension vs one-sided SMD-JE (§VI)",
    );
    r.fact("realizations per direction", s.n_per_direction)
        .fact("ΔΦ, one-sided JE", format!("{:.2} kcal/mol", s.je_forward))
        .fact("ΔΦ, BAR", format!("{:.2} kcal/mol", s.bar))
        .fact(
            "ΔΦ, TI reference",
            format!("{:.2} kcal/mol", s.ti_reference),
        )
        .fact(
            "|bias| JE / BAR vs TI",
            format!(
                "{:.2} / {:.2} kcal/mol",
                (s.je_forward - s.ti_reference).abs(),
                (s.bar - s.ti_reference).abs()
            ),
        )
        .fact(
            "protocol hysteresis",
            format!("{:.2} kcal/mol", s.hysteresis),
        );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_study_is_sane() {
        let s = study(Scale::Test, 4242);
        assert!(s.je_forward.is_finite());
        assert!(s.bar.is_finite());
        assert!(s.ti_reference.is_finite());
        // BAR must land between the one-sided bounds ⟨W_F⟩ and −⟨W_R⟩
        // (up to estimator noise); loosely: within the hysteresis band.
        assert!(
            (s.bar - s.ti_reference).abs() < 12.0,
            "BAR {} wildly off TI {}",
            s.bar,
            s.ti_reference
        );
        assert!(
            s.hysteresis > -1.0,
            "hysteresis {} must be ≥ ~0",
            s.hysteresis
        );
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Test, 2);
        assert!(r.render().contains("BAR"));
    }
}
