//! T-imd — §II/§III: interactivity needs 256 processors *and* a high-QoS
//! network; on a general-purpose network the coupled simulation stalls.

use crate::config::Scale;
use crate::costing::CostModel;
use crate::phases::interactive::run_interactive;
use crate::report::Report;
use spice_gridsim::network::tcp::{mathis_throughput_mbps, DEFAULT_MSS};
use spice_gridsim::network::{Link, Path, QosProfile};
use spice_steering::imd::{simulate_session, ImdConfig};

/// Slowdown as a function of degrading loss on an otherwise-lightpath
/// link: the QoS sweep series.
pub fn loss_sweep(scale: Scale, seed: u64) -> Vec<(f64, f64)> {
    let cost = CostModel::paper();
    let cfg = ImdConfig {
        step_wall_ms: cost.step_wall_ms(256),
        steps_per_exchange: 10,
        n_exchanges: match scale {
            Scale::Test => 100,
            Scale::Bench => 400,
            Scale::Paper => 2_000,
        },
        seed,
        ..ImdConfig::default()
    };
    [0.0, 0.001, 0.005, 0.01, 0.05, 0.1]
        .iter()
        .map(|&loss| {
            let mut link: Link = QosProfile::TransAtlanticLightpath.link();
            link.loss = loss;
            let p = Path::new(vec![link]);
            let stats = simulate_session(&cfg, &p, &p);
            (loss, stats.slowdown())
        })
        .collect()
}

/// Run T-imd.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let interactive = run_interactive(scale, master_seed);
    let cost = CostModel::paper();
    let sweep = loss_sweep(scale, master_seed ^ 0x1117);

    let mut r = Report::new(
        "T-imd",
        "Interactive MD: processor and network QoS requirements (§II, §III)",
    );
    r.fact(
        "min procs for ≥1 Hz steering updates",
        format!("{} (paper: 256)", cost.min_procs_for_interactivity(1.0, 10)),
    )
    .fact(
        "IMD rate @128 procs",
        format!(
            "{:.2} Hz (below interactive threshold)",
            cost.imd_rate_hz(128, 10)
        ),
    )
    .fact(
        "IMD rate @256 procs",
        format!("{:.2} Hz", cost.imd_rate_hz(256, 10)),
    )
    .fact(
        "slowdown on lightpath",
        format!("{:.3}×", interactive.lightpath.slowdown()),
    )
    .fact(
        "slowdown on commodity internet",
        format!("{:.3}×", interactive.commodity.slowdown()),
    )
    .fact(
        "retransmits (lightpath / commodity)",
        format!(
            "{} / {}",
            interactive.lightpath.retransmits, interactive.commodity.retransmits
        ),
    )
    .fact(
        "live session: frames / forces / drag (Å)",
        format!(
            "{} / {} / {:.1}",
            interactive.frames, interactive.forces_applied, interactive.dragged_angstroms
        ),
    )
    .fact(
        "peak haptic force",
        format!("{:.0} pN", interactive.peak_haptic_force_pn),
    )
    .fact(
        "single-flow TCP ceiling (Mathis): lightpath / commodity",
        format!(
            "{:.0} / {:.1} Mbit/s",
            mathis_throughput_mbps(&QosProfile::TransAtlanticLightpath.link(), DEFAULT_MSS),
            mathis_throughput_mbps(&QosProfile::TransAtlanticCommodity.link(), DEFAULT_MSS)
        ),
    );
    let pts: Vec<Vec<f64>> = sweep.iter().map(|&(l, s)| vec![l, s]).collect();
    r.series(
        "simulation slowdown vs packet loss (45 ms lightpath base)",
        vec!["loss".into(), "slowdown ×".into()],
        &pts,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_monotone_in_loss() {
        let sweep = loss_sweep(Scale::Test, 3);
        assert_eq!(sweep.len(), 6);
        assert!(
            sweep.last().unwrap().1 > sweep.first().unwrap().1,
            "10% loss must stall more than lossless: {sweep:?}"
        );
        // Broadly non-decreasing (tiny jitter tolerated).
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1 - 0.05, "slowdown dipped: {w:?}");
        }
    }

    #[test]
    fn report_carries_paper_claims() {
        let r = run(Scale::Test, 5);
        let text = r.render();
        assert!(text.contains("(paper: 256)"));
        assert!(text.contains("slowdown on lightpath"));
    }
}
