//! T-batch + T-fail — §III's production campaign (72 sims, <1 week,
//! ~75k CPU-hours) on the federation vs single sites, plus §V-C-4's
//! security-breach outage and the value of redundancy.

use crate::report::Report;
use spice_gridsim::campaign::Campaign;
use spice_gridsim::des::run_des;
use spice_gridsim::failure::Outage;
use spice_gridsim::federation::Federation;
use spice_gridsim::metrics::{federation_utilization, site_utilization, wait_summary};

/// Run T-batch / T-fail.
pub fn run(master_seed: u64) -> Report {
    let federated = Campaign::paper_batch_phase(master_seed);
    let fed_result = federated.run();

    // Best single site (NCSA) for the contrast.
    let mut single = Campaign::paper_batch_phase(master_seed);
    single.federation = Federation::paper_us_uk().restricted(&[0]);
    let single_result = single.run();

    // T-fail: breach takes out the only coordinate-able UK node
    // (NGS-Oxford, id 3) for three weeks; first with no UK redundancy
    // (Leeds also down for middleware reasons), then with Leeds healthy.
    let mut breach_no_redundancy = Campaign::paper_batch_phase(master_seed);
    breach_no_redundancy.outages = vec![
        Outage::security_breach(3, 0.0, 3.0),
        Outage::new(
            4,
            0.0,
            21.0 * 24.0,
            spice_gridsim::failure::OutageCause::MiddlewareImmaturity,
        ),
    ];
    let no_red = breach_no_redundancy.run();

    let mut breach_redundant = Campaign::paper_batch_phase(master_seed);
    breach_redundant.outages = vec![Outage::security_breach(3, 0.0, 3.0)];
    let red = breach_redundant.run();

    let mut r = Report::new(
        "T-batch",
        "72-simulation production campaign on the federated US–UK grid (§III, §V-C-4)",
    );
    r.fact("jobs", fed_result.records.len())
        .fact(
            "campaign CPU-hours",
            format!("{:.0} (paper: ~75,000)", fed_result.cpu_hours),
        )
        .fact(
            "federated makespan",
            format!(
                "{:.1} days (paper: < 1 week) — under a week: {}",
                fed_result.makespan_days(),
                fed_result.makespan_days() < 7.0
            ),
        )
        .fact(
            "best single site (NCSA) makespan",
            format!("{:.1} days", single_result.makespan_days()),
        )
        .fact(
            "grid speedup",
            format!(
                "{:.1}×",
                single_result.makespan_hours / fed_result.makespan_hours
            ),
        );
    // Ablation: clairvoyant plan vs event-driven FCFS execution.
    let des_result = run_des(&federated);
    r.fact(
        "plan vs DES execution",
        format!(
            "{:.1} vs {:.1} days (coordination gap {:.1}×)",
            fed_result.makespan_days(),
            des_result.makespan_days(),
            des_result.makespan_hours / fed_result.makespan_hours
        ),
    );
    let (mean_w, med_w, max_w) = wait_summary(&fed_result);
    r.fact(
        "queue waits (mean/median/max h)",
        format!("{mean_w:.1} / {med_w:.1} / {max_w:.1}"),
    );
    r.fact(
        "federation utilization",
        format!(
            "{:.0}%",
            100.0 * federation_utilization(&fed_result, &federated.federation)
        ),
    );
    let fed = Federation::paper_us_uk();
    let rows: Vec<Vec<String>> = site_utilization(&fed_result, &fed)
        .iter()
        .map(|&(id, u)| {
            let jobs = fed_result
                .jobs_per_site
                .iter()
                .find(|&&(s, _)| s == id)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            vec![
                fed.site(id).name.clone(),
                jobs.to_string(),
                format!("{:.0}%", u * 100.0),
            ]
        })
        .collect();
    r.table(
        "per-site placement (Fig. 5 resources)",
        vec!["site".into(), "jobs".into(), "utilization".into()],
        rows,
    );
    r.fact(
        "T-fail: breach, no UK redundancy",
        format!("{:.1} days", no_red.makespan_days()),
    )
    .fact(
        "T-fail: breach, Leeds redundant",
        format!("{:.1} days", red.makespan_days()),
    )
    .fact(
        "redundancy saved",
        format!("{:.1} days", no_red.makespan_days() - red.makespan_days()),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_batch_shape_holds() {
        let r = run(77);
        let text = r.render();
        assert!(text.contains("under a week: true"), "{text}");
        assert!(text.contains("grid speedup"));
    }

    #[test]
    fn redundancy_never_hurts() {
        // Extract the two T-fail numbers and compare.
        let r = run(78);
        let get = |key: &str| -> f64 {
            r.facts
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.split_whitespace().next().unwrap().parse().unwrap())
                .unwrap()
        };
        let no_red = get("T-fail: breach, no UK redundancy");
        let red = get("T-fail: breach, Leeds redundant");
        assert!(
            red <= no_red,
            "redundant {red} must be ≤ non-redundant {no_red}"
        );
    }
}
