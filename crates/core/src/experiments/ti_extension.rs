//! T-ti — §VI: "the grid computing infrastructure used here for
//! computing free energies by SMD-JE can be easily extended to compute
//! free energies using different approaches (e.g. thermodynamic
//! integration)". TI windows are independent jobs — the same
//! grid-amenable decomposition — and the TI profile cross-validates the
//! JE estimate.

use crate::config::Scale;
use crate::pipeline::{pore_simulation, run_cell};
use crate::report::Report;
use crate::ti::{ti_profile, umbrella_windows};
use spice_jarzynski::wham::wham;
use spice_md::units::KT_300;
use spice_stats::rng::SeedSequence;

/// Run T-ti.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let seeds = SeedSequence::new(master_seed);
    let span = scale.pull_distance();
    let n_windows = match scale {
        Scale::Test => 5,
        Scale::Bench => 9,
        Scale::Paper => 21,
    };
    let ti = ti_profile(
        |seed| pore_simulation(scale, seed),
        scale,
        span,
        n_windows,
        100.0,
        seeds.child(1),
    );
    let je = run_cell(scale, 100.0, 12.5, seeds.child(2));

    // WHAM over the same umbrella ladder: the third corner of the
    // JE ↔ TI ↔ WHAM triangle, from identical window data layout.
    let windows = umbrella_windows(
        |seed| pore_simulation(scale, seed),
        scale,
        span,
        n_windows,
        100.0,
        seeds.child(4),
    );
    let wham_result = wham(
        &windows,
        -1.0,
        span + 2.0,
        ((span + 3.0) * 4.0) as usize,
        KT_300,
        2_000,
        1e-8,
    );
    // Gauge-consistent comparison: TI and JE report Φ(span) − Φ(0), so
    // take the same difference from the WHAM profile (whose own gauge is
    // its minimum).
    let phi_near = |x0: f64| -> f64 {
        wham_result
            .profile
            .iter()
            .min_by(|a, b| (a.0 - x0).abs().total_cmp(&(b.0 - x0).abs()))
            .map(|&(_, p)| p)
            .unwrap_or(f64::NAN)
    };
    let wham_end = phi_near(span) - phi_near(0.0);

    // Agreement metric: RMS(TI − JE) over the JE grid.
    let mut sum = 0.0;
    let mut n = 0;
    for p in je.curve.points.iter().skip(1) {
        let d = ti.phi_at(p.guide_disp) - p.phi;
        sum += d * d;
        n += 1;
    }
    let rms = (sum / n.max(1) as f64).sqrt();

    let mut r = Report::new(
        "T-ti",
        "Thermodynamic-integration extension cross-validates SMD-JE (§VI)",
    );
    r.fact("TI windows (independent grid jobs)", n_windows)
        .fact("JE realizations", je.n_realizations)
        .fact("RMS(TI − JE) (kcal/mol)", format!("{rms:.3}"))
        .fact(
            "profile end values (TI / JE / WHAM)",
            format!(
                "{:.2} / {:.2} / {:.2}",
                ti.profile.last().map(|&(_, p)| p).unwrap_or(f64::NAN),
                je.curve.points.last().map(|p| p.phi).unwrap_or(f64::NAN),
                wham_end
            ),
        )
        .fact(
            "WHAM convergence",
            format!(
                "{} iterations, residual {:.1e}",
                wham_result.iterations, wham_result.residual
            ),
        );
    let rows: Vec<Vec<f64>> = ti
        .profile
        .iter()
        .map(|&(s, phi)| vec![s, phi, je.curve.phi_at(s).unwrap_or(f64::NAN)])
        .collect();
    r.series(
        "Φ(s): TI vs SMD-JE",
        vec!["s (Å)".into(), "Φ_TI".into(), "Φ_JE".into()],
        &rows,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ti_and_je_agree_in_order_of_magnitude() {
        let r = run(Scale::Test, 61);
        let rms: f64 = r
            .facts
            .iter()
            .find(|(k, _)| k.starts_with("RMS"))
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(rms.is_finite());
        // Both methods measure the same profile; at Test scale they must
        // agree within a few kcal/mol (profiles themselves span ~5–20).
        assert!(rms < 10.0, "TI and JE disagree wildly: RMS {rms}");
    }

    #[test]
    fn report_has_comparison_series() {
        let r = run(Scale::Test, 62);
        assert!(r.render().contains("Φ_TI"));
        assert!(r.render().contains("WHAM convergence"));
    }
}
