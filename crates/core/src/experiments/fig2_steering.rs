//! F2 — Fig. 2: the RealityGrid steering architecture, demonstrated
//! live: client ↔ grid service ↔ simulation ↔ visualizer message flows,
//! including the direct visualizer → simulation channel and the
//! checkpoint verb.

use crate::config::Scale;
use crate::pipeline::pore_simulation;
use crate::report::Report;
use spice_md::Vec3;
use spice_stats::rng::SeedSequence;
use spice_steering::service::GridService;
use spice_steering::{SteeringClient, SteeringHook, Visualizer};

/// Run F2.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let seeds = SeedSequence::new(master_seed);
    let service = GridService::shared();
    let mut sim = pore_simulation(scale, seeds.stream(0));
    let lead = sim.force_field().topology().group("dna").expect("dna")[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    let client = SteeringClient::attach(service.clone(), hook.component_id());
    let mut vis = Visualizer::attach(service.clone(), hook.component_id());

    // The archetypal session: monitor, adjust a parameter, checkpoint,
    // steer through the direct channel, keep running.
    client.set_param("target_temperature", 300.0);
    client.checkpoint("f2-demo");
    vis.steer(vec![lead], Vec3::new(0.0, 0.0, 2.0)); // direct channel
    let steps = match scale {
        Scale::Test => 100,
        Scale::Bench => 400,
        Scale::Paper => 2_000,
    };
    sim.run(steps, &mut [&mut hook]).expect("steered run");
    let mut frames = 0u64;
    while vis.render_next().is_some() {
        frames += 1;
    }
    let routed = service.lock().delivered();
    let checkpoints = service.lock().checkpoint_labels();

    let mut r = Report::new(
        "F2",
        "RealityGrid steering architecture exercised end-to-end (Fig. 2)",
    );
    r.fact(
        "components",
        "simulation, visualizer, steering client, grid service",
    )
    .fact("frames emitted", hook.frames_emitted())
    .fact("frames rendered", frames)
    .fact("messages routed", routed)
    .fact("params applied", format!("{:?}", hook.params()))
    .fact("direct-channel forces", hook.forces_applied())
    .fact("checkpoints stored", format!("{checkpoints:?}"));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_exercises_every_flow() {
        let r = run(Scale::Test, 2);
        let text = r.render();
        assert!(text.contains("target_temperature"));
        assert!(text.contains("f2-demo"));
        // Frames flowed and at least one direct force was applied.
        let frames: u64 = r
            .facts
            .iter()
            .find(|(k, _)| k == "frames rendered")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(frames > 0);
    }
}
