//! F3 — Fig. 3: translocation snapshots — "Notice how the strand of DNA
//! stretches as it nears the constriction (near the middle) in the beta
//! barrel portion of the pore."
//!
//! Reproduced quantitatively: pull the strand through the pore and bin
//! the per-link bead spacing by the link's position along the axis. The
//! stretching signal is the mean spacing in the constriction zone versus
//! away from it.

use crate::config::Scale;
use crate::report::Report;
use spice_md::units;
use spice_pore::analysis::{spacing_vs_z, stretch_sample, StretchSample};
use spice_pore::geometry::PoreGeometry;
use spice_smd::SmdSpring;
use spice_stats::rng::SeedSequence;

/// Measured stretch contrast: (constriction-zone spacing, far-zone
/// spacing, sample curve).
pub struct StretchAnalysis {
    /// Mean bead spacing within ±6 Å of the constriction (Å).
    pub near_constriction: f64,
    /// Mean bead spacing elsewhere in the pore (Å).
    pub elsewhere: f64,
    /// Binned (z, spacing) curve.
    pub curve: Vec<(f64, f64)>,
}

/// Pull the strand and measure stretching vs position.
pub fn measure(scale: Scale, master_seed: u64) -> StretchAnalysis {
    let seeds = SeedSequence::new(master_seed);
    let geometry = PoreGeometry::alpha_hemolysin();
    let zc = geometry.constriction_z();
    let mut samples: Vec<StretchSample> = Vec::new();
    let n_real = match scale {
        Scale::Test => 3,
        Scale::Bench => 8,
        Scale::Paper => 24,
    };
    for rix in 0..n_real {
        // Start the lead bead just below the constriction so the pull
        // crosses it within the (scale-dependent) pull distance.
        let mut sim = spice_pore::build::PoreSystemBuilder::new()
            .dna(spice_pore::dna::DnaParams {
                n_bases: scale.dna_bases(),
                ..spice_pore::dna::DnaParams::default()
            })
            .dna_start_z(zc - 2.0)
            .build()
            .into_simulation(0.01, seeds.stream(rix));
        let dna: Vec<usize> = sim
            .force_field()
            .topology()
            .group("dna")
            .expect("dna")
            .to_vec();
        // Long pull at the optimal κ; stretching is sampled DURING the
        // pull (the Fig. 3 snapshots are mid-translocation), every few
        // hundred steps.
        sim.run(scale.equilibration_steps() / 2, &mut [])
            .expect("translocation equilibration");
        let kappa = units::spring_pn_per_a_to_kcal(100.0);
        let velocity = units::velocity_a_per_ns_to_a_per_ps(50.0 * scale.velocity_factor());
        let masses = sim.system().masses().to_vec();
        let lead = dna[0];
        let com0 = sim.system().positions()[lead].z;
        let spring = SmdSpring::new(vec![lead], &masses, kappa, velocity, com0, sim.time_ps());
        sim.set_bias(Some(Box::new(spring)));
        let pull_distance = scale.pull_distance() * 1.5;
        let total_steps = (pull_distance / (velocity * sim.dt())).ceil() as u64;
        let stride = (total_steps / 40).max(1);
        let mut done = 0;
        while done < total_steps {
            let burst = stride.min(total_steps - done);
            sim.run(burst, &mut []).expect("translocation pull");
            done += burst;
            samples.push(stretch_sample(sim.system(), &dna));
        }
        sim.set_bias(None);
    }
    let curve = spacing_vs_z(&samples, 0.0, geometry.cap_hi, 20);
    let near: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.spacing.iter())
        .filter(|(z, _)| (z - zc).abs() <= 8.0)
        .map(|&(_, d)| d)
        .collect();
    let far: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.spacing.iter())
        .filter(|(z, _)| (z - zc).abs() > 14.0)
        .map(|&(_, d)| d)
        .collect();
    StretchAnalysis {
        near_constriction: spice_stats::mean(&near),
        elsewhere: spice_stats::mean(&far),
        curve,
    }
}

/// Run F3.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let a = measure(scale, master_seed);
    let mut r = Report::new(
        "F3",
        "Translocation: strand stretching localizes at the constriction (Fig. 3)",
    );
    r.fact(
        "mean bead spacing near constriction (Å)",
        format!("{:.3}", a.near_constriction),
    )
    .fact(
        "mean bead spacing elsewhere (Å)",
        format!("{:.3}", a.elsewhere),
    )
    .fact(
        "stretch contrast",
        format!("{:.3}×", a.near_constriction / a.elsewhere),
    );
    let pts: Vec<Vec<f64>> = a.curve.iter().map(|&(z, d)| vec![z, d]).collect();
    r.series(
        "bead spacing vs position along pore axis",
        vec!["z (Å)".into(), "spacing (Å)".into()],
        &pts,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strand_stretches_at_constriction() {
        let a = measure(Scale::Test, 3);
        assert!(a.near_constriction.is_finite() && a.elsewhere.is_finite());
        assert!(
            a.near_constriction > a.elsewhere,
            "Fig. 3 shape: spacing near constriction ({:.3}) must exceed elsewhere ({:.3})",
            a.near_constriction,
            a.elsewhere
        );
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Test, 4);
        assert!(r.render().contains("stretch contrast"));
    }
}
