//! T-subtraj — §IV-A: "the further the center of mass of the SMD atoms
//! from its initial position, the greater the statistical and systematic
//! errors; hence when the PMF is required over a long trajectory, it is
//! advantageous to break up a single long trajectory into smaller
//! trajectories."
//!
//! Measured: (a) the per-point statistical error grows with displacement
//! along a single long pull; (b) segmenting the long pull into
//! sub-trajectories and stitching their PMFs bounds the error growth.

use crate::config::Scale;
use crate::pipeline::pore_simulation;
use crate::report::Report;
use spice_jarzynski::error::statistical::pmf_bootstrap_sigma;
use spice_jarzynski::pmf::{Estimator, PmfCurve};
use spice_md::units::KT_300;
use spice_smd::{run_ensemble, segment_trajectory, PullProtocol, WorkTrajectory};
use spice_stats::rng::SeedSequence;

/// Outcome of the sub-trajectory study.
pub struct SubtrajStudy {
    /// Per-point (displacement, σ_stat) along the single long pull.
    pub sigma_vs_displacement: Vec<(f64, f64)>,
    /// σ at the far end of the long pull.
    pub sigma_far_long: f64,
    /// σ at the far end of the final stitched segment (same physical
    /// point, segmented estimation).
    pub sigma_far_segmented: f64,
    /// The stitched PMF.
    pub stitched: PmfCurve,
    /// The single-pull PMF.
    pub long: PmfCurve,
}

/// Run the study.
pub fn study(scale: Scale, master_seed: u64) -> SubtrajStudy {
    let seeds = SeedSequence::new(master_seed);
    let long_span = scale.pull_distance() * 2.0;
    let protocol = PullProtocol {
        pull_distance: long_span,
        ..scale.protocol(100.0, 100.0)
    };
    let trajectories: Vec<WorkTrajectory> = run_ensemble(
        |seed| pore_simulation(scale, seed),
        &protocol,
        scale.realizations(),
        seeds.child(0),
    )
    .into_iter()
    .filter_map(Result::ok)
    .collect();
    assert!(!trajectories.is_empty());

    let npts = scale.pmf_points();
    let long = PmfCurve::estimate(&trajectories, long_span, npts, KT_300, Estimator::Jarzynski);
    let sigmas = pmf_bootstrap_sigma(
        &trajectories,
        long_span,
        npts,
        KT_300,
        Estimator::Jarzynski,
        scale.bootstrap_resamples(),
        seeds.stream(7),
    );

    // Segment into paper-style sub-trajectories of half the span.
    let seg_len = long_span / 2.0;
    let seg_trajs: Vec<Vec<WorkTrajectory>> = {
        let mut per_segment: Vec<Vec<WorkTrajectory>> = vec![Vec::new(); 2];
        for t in &trajectories {
            for (i, seg) in segment_trajectory(t, seg_len)
                .into_iter()
                .enumerate()
                .take(2)
            {
                per_segment[i].push(seg);
            }
        }
        per_segment
    };
    let seg_curves: Vec<PmfCurve> = seg_trajs
        .iter()
        .map(|ts| PmfCurve::estimate(ts, seg_len, npts / 2 + 1, KT_300, Estimator::Jarzynski))
        .collect();
    let stitched = PmfCurve::stitch(&seg_curves);
    // σ at the far end of the *second* segment alone (its own origin is
    // re-zeroed, so error does not accumulate from the first half).
    let seg_sigmas = pmf_bootstrap_sigma(
        &seg_trajs[1],
        seg_len,
        npts / 2 + 1,
        KT_300,
        Estimator::Jarzynski,
        scale.bootstrap_resamples(),
        seeds.stream(8),
    );

    SubtrajStudy {
        sigma_far_long: sigmas.last().map(|&(_, s)| s).unwrap_or(f64::NAN),
        sigma_far_segmented: seg_sigmas.last().map(|&(_, s)| s).unwrap_or(f64::NAN),
        sigma_vs_displacement: sigmas,
        stitched,
        long,
    }
}

/// Run T-subtraj and format.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let s = study(scale, master_seed);
    let mut r = Report::new(
        "T-subtraj",
        "Sub-trajectory decomposition bounds error growth (§IV-A)",
    );
    r.fact(
        "σ_stat at far end, single long pull",
        format!("{:.3}", s.sigma_far_long),
    )
    .fact(
        "σ_stat at far end, segmented",
        format!("{:.3}", s.sigma_far_segmented),
    )
    .fact(
        "stitched PMF end value",
        format!(
            "{:.3}",
            s.stitched.points.last().map(|p| p.phi).unwrap_or(f64::NAN)
        ),
    )
    .fact(
        "long-pull PMF end value",
        format!(
            "{:.3}",
            s.long.points.last().map(|p| p.phi).unwrap_or(f64::NAN)
        ),
    );
    let pts: Vec<Vec<f64>> = s
        .sigma_vs_displacement
        .iter()
        .map(|&(d, sg)| vec![d, sg])
        .collect();
    r.series(
        "σ_stat vs displacement (single long pull)",
        vec!["displacement (Å)".into(), "σ_stat (kcal/mol)".into()],
        &pts,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_along_the_pull() {
        let s = study(Scale::Test, 31);
        let sig = &s.sigma_vs_displacement;
        assert!(sig.len() >= 4);
        // Compare mean σ over the first vs last third.
        let third = sig.len() / 3;
        let early: f64 = sig[1..=third].iter().map(|&(_, v)| v).sum::<f64>() / third as f64;
        let late: f64 = sig[sig.len() - third..]
            .iter()
            .map(|&(_, v)| v)
            .sum::<f64>()
            / third as f64;
        assert!(
            late > early,
            "σ_stat must grow with displacement: early {early:.3} vs late {late:.3}"
        );
    }

    #[test]
    fn segmentation_reduces_far_end_error() {
        let s = study(Scale::Test, 33);
        assert!(
            s.sigma_far_segmented < s.sigma_far_long,
            "segment re-zeroing must bound error: {} vs {}",
            s.sigma_far_segmented,
            s.sigma_far_long
        );
    }

    #[test]
    fn stitched_profile_spans_full_distance() {
        let s = study(Scale::Test, 33);
        let end = s.stitched.points.last().unwrap().guide_disp;
        let span = Scale::Test.pull_distance() * 2.0;
        assert!((end - span).abs() < 0.8, "stitched span {end} vs {span}");
    }
}
