//! F1 — Fig. 1: the built system (pore + membrane + ssDNA).
//!
//! The paper's figure is a rendering; the reproducible content is the
//! structure itself: the heptameric pore's radius profile, the
//! constriction, and the strand threaded at the vestibule mouth.

use crate::config::Scale;
use crate::pipeline::pore_simulation;
use crate::report::Report;
use spice_pore::analysis::summarize;
use spice_pore::geometry::PoreGeometry;
use spice_stats::rng::SeedSequence;

/// Run F1.
pub fn run(scale: Scale, master_seed: u64) -> Report {
    let seeds = SeedSequence::new(master_seed);
    let sim = pore_simulation(scale, seeds.stream(0));
    let geometry = PoreGeometry::alpha_hemolysin();
    let dna: Vec<usize> = sim
        .force_field()
        .topology()
        .group("dna")
        .expect("dna group")
        .to_vec();
    let s = summarize(sim.system(), &geometry, &dna);

    let mut r = Report::new(
        "F1",
        "System snapshot: ssDNA at the α-hemolysin pore (Fig. 1)",
    );
    r.fact("particles", s.n_particles)
        .fact("dna bases", s.n_dna)
        .fact("pore length (Å)", format!("{:.1}", s.pore_length))
        .fact(
            "constriction radius (Å)",
            format!("{:.2} at z = {:.1}", s.min_radius, s.constriction_z),
        )
        .fact("mouth radius (Å)", format!("{:.1}", s.max_radius))
        .fact("dna contour (Å)", format!("{:.1}", s.dna_contour))
        .fact("dna COM z (Å)", format!("{:.1}", s.dna_com_z));
    let profile: Vec<Vec<f64>> = geometry
        .radius_profile(5.0)
        .into_iter()
        .map(|(z, rad)| vec![z, rad])
        .collect();
    r.series(
        "lumen radius profile r(z) — the β-barrel, constriction and vestibule",
        vec!["z (Å)".into(), "r (Å)".into()],
        &profile,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_structure() {
        let r = run(Scale::Test, 1);
        let text = r.render();
        assert!(text.contains("constriction"));
        assert!(!r.tables.is_empty());
        // Radius profile covers the whole pore.
        assert!(r.tables[0].2.len() >= 20);
    }
}
