//! T-hidden — §V-C-1: the hidden-IP problem, PSC's gateway mitigation,
//! its TCP-only restriction, and the gateway bottleneck under load.

use crate::report::Report;
use spice_gridsim::hidden_ip::{connect_inbound, effective_path, ConnectError, Gateway, Protocol};
use spice_gridsim::network::QosProfile;
use spice_gridsim::resource::paper_federation_sites;

/// Per-stream goodput (Mbit/s) through the PSC gateway vs stream count.
pub fn gateway_bottleneck_sweep() -> Vec<(u32, f64)> {
    let gw = Gateway::psc();
    let base = QosProfile::TransAtlanticLightpath.link();
    [1u32, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&n| {
            let p = effective_path(base, Some((&gw, n)));
            (n, p.bandwidth_mbps())
        })
        .collect()
}

/// Run T-hidden.
pub fn run() -> Report {
    let sites = paper_federation_sites();
    let gw = Gateway::psc();

    let mut rows = Vec::new();
    for site in &sites {
        let gateway = if site.has_gateway { Some(&gw) } else { None };
        let tcp = match connect_inbound(site, gateway, Protocol::Tcp) {
            Ok(false) => "direct".to_string(),
            Ok(true) => "via gateway".to_string(),
            Err(ConnectError::HiddenNoGateway) => "UNREACHABLE (hidden IP)".to_string(),
            Err(ConnectError::GatewayNoUdp) => "unreachable".to_string(),
        };
        let udp = match connect_inbound(site, gateway, Protocol::Udp) {
            Ok(false) => "direct".to_string(),
            Ok(true) => "via gateway".to_string(),
            Err(ConnectError::HiddenNoGateway) => "UNREACHABLE (hidden IP)".to_string(),
            Err(ConnectError::GatewayNoUdp) => "UNSUPPORTED (gateway, no UDP)".to_string(),
        };
        rows.push(vec![site.name.clone(), tcp, udp]);
    }

    let mut r = Report::new(
        "T-hidden",
        "Hidden-IP addressability and the PSC gateway (§V-C-1)",
    );
    r.table(
        "inbound connectivity to compute nodes (visualizer → master process)",
        vec!["site".into(), "TCP".into(), "UDP".into()],
        rows,
    );
    let sweep = gateway_bottleneck_sweep();
    let pts: Vec<Vec<f64>> = sweep.iter().map(|&(n, bw)| vec![n as f64, bw]).collect();
    r.series(
        "per-stream goodput through the PSC gateway nodes",
        vec!["concurrent streams".into(), "goodput (Mbit/s)".into()],
        &pts,
    );
    r.fact(
        "gateway",
        format!(
            "{} nodes × {:.0} Mbit/s each; TCP only",
            gw.nodes, gw.node_bandwidth_mbps
        ),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_flags_hpcx_unreachable_and_psc_routed() {
        let r = run();
        let text = r.render();
        assert!(text.contains("UNREACHABLE (hidden IP)"), "{text}");
        assert!(text.contains("via gateway"));
        assert!(text.contains("UNSUPPORTED (gateway, no UDP)"));
    }

    #[test]
    fn bottleneck_strictly_degrades() {
        let sweep = gateway_bottleneck_sweep();
        for w in sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1,
                "goodput must fall with more streams: {w:?}"
            );
        }
        // At 256 streams the gateway (800 Mbit/s total) is the bottleneck.
        let last = sweep.last().unwrap();
        assert!(last.1 < 10.0, "expected severe bottleneck, got {}", last.1);
    }
}
