//! T-resil — replay the SC05 outage experience (§V-C-4: UK middleware
//! churn leaves one coordinated node, then a security breach takes that
//! node out for weeks) under three fault-handling strategies, on top of
//! the stochastic per-job failure environment of §V (launch failures,
//! node crashes, gateway drops for steering-coupled runs).
//!
//! * **naive** — the 2005 status quo: outages kill work, no checkpoints,
//!   retries pinned to the originally chosen site.
//! * **retry-only** — bounded retries with exponential backoff, site
//!   blacklisting and failover migration, but every restart is from
//!   scratch.
//! * **checkpoint+failover** — the same retry machinery plus hourly
//!   checkpoints, so a killed attempt resumes from its last checkpoint.

use crate::report::Report;
use spice_gridsim::campaign::Campaign;
use spice_gridsim::des::run_des;
use spice_gridsim::metrics::loss_by_kind;
use spice_gridsim::resilience::{run_resilient, ResiliencePolicy, ResilientResult};

/// The SC05-outage campaign: the 72-job production set under the §V-C-4
/// outage history, with every 12th simulation steering-coupled (the
/// interactive fraction of the campaign, exposed to the hidden-IP /
/// gateway model).
pub fn sc05_campaign(master_seed: u64) -> Campaign {
    let mut c = Campaign::sc05_outage_phase(master_seed);
    for job in c.jobs.iter_mut().step_by(12) {
        job.coupled = true;
    }
    c
}

fn policy_row(name: &str, r: &ResilientResult, baseline_hours: f64) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", r.result.makespan_hours / 24.0),
        format!("{:.2}", r.makespan_inflation(baseline_hours)),
        format!("{:.0}", r.goodput_cpu_hours),
        format!("{:.0}", r.badput_cpu_hours),
        format!("{:.1}%", 100.0 * r.badput_fraction()),
        format!("{:.2}", r.retries_per_job()),
        format!("{:.0}%", 100.0 * r.completion_fraction()),
    ]
}

/// Run T-resil.
pub fn run(master_seed: u64) -> Report {
    let campaign = sc05_campaign(master_seed);

    // Failure-free, outage-free baseline for makespan inflation.
    let baseline = run_des(&Campaign::paper_batch_phase(master_seed));

    let naive = run_resilient(&campaign, &ResiliencePolicy::naive());
    let retry = run_resilient(&campaign, &ResiliencePolicy::retry_only());
    let ckpt = run_resilient(&campaign, &ResiliencePolicy::checkpoint_failover());

    let mut r = Report::new(
        "T-resil",
        "fault-tolerant campaign execution under the SC05 outage history (§V-C)",
    );
    r.fact("jobs", campaign.jobs.len())
        .fact(
            "scenario",
            "Leeds down 0–504 h (middleware), Oxford breached at 24 h for 3 weeks",
        )
        .fact(
            "failure-free baseline makespan",
            format!("{:.1} days", baseline.makespan_days()),
        )
        .fact(
            "naive makespan",
            format!("{:.1} days", naive.result.makespan_hours / 24.0),
        )
        .fact(
            "retry-only makespan",
            format!("{:.1} days", retry.result.makespan_hours / 24.0),
        )
        .fact(
            "checkpoint+failover makespan",
            format!("{:.1} days", ckpt.result.makespan_hours / 24.0),
        )
        .fact(
            "naive badput CPU-h",
            format!("{:.0}", naive.badput_cpu_hours),
        )
        .fact(
            "retry-only badput CPU-h",
            format!("{:.0}", retry.badput_cpu_hours),
        )
        .fact(
            "checkpoint+failover badput CPU-h",
            format!("{:.0}", ckpt.badput_cpu_hours),
        )
        .fact(
            "policy ordering holds",
            format!(
                "{}",
                ckpt.result.makespan_hours < retry.result.makespan_hours
                    && retry.result.makespan_hours < naive.result.makespan_hours
            ),
        );

    r.table(
        "policy comparison (SC05 outage scenario)",
        vec![
            "policy".into(),
            "makespan d".into(),
            "inflation".into(),
            "goodput CPU-h".into(),
            "badput CPU-h".into(),
            "badput %".into(),
            "retries/job".into(),
            "completed".into(),
        ],
        vec![
            policy_row("naive", &naive, baseline.makespan_hours),
            policy_row("retry-only", &retry, baseline.makespan_hours),
            policy_row("ckpt+failover", &ckpt, baseline.makespan_hours),
        ],
    );

    let kind_name = |k: spice_gridsim::failure::FailureKind| -> &'static str {
        match k {
            spice_gridsim::failure::FailureKind::LaunchFailure => "launch-fail",
            spice_gridsim::failure::FailureKind::NodeCrash => "node-crash",
            spice_gridsim::failure::FailureKind::GatewayDrop => "gateway-drop",
            spice_gridsim::failure::FailureKind::OutageKill => "outage-kill",
        }
    };
    r.table(
        "checkpoint+failover failures by kind",
        vec!["kind".into(), "events".into(), "burned CPU-h".into()],
        loss_by_kind(&ckpt)
            .iter()
            .map(|&(k, n, lost)| vec![kind_name(k).into(), n.to_string(), format!("{lost:.0}")])
            .collect(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn makespans(seed: u64) -> (f64, f64, f64) {
        let c = sc05_campaign(seed);
        let naive = run_resilient(&c, &ResiliencePolicy::naive());
        let retry = run_resilient(&c, &ResiliencePolicy::retry_only());
        let ckpt = run_resilient(&c, &ResiliencePolicy::checkpoint_failover());
        (
            naive.result.makespan_hours,
            retry.result.makespan_hours,
            ckpt.result.makespan_hours,
        )
    }

    #[test]
    fn acceptance_ordering_holds_at_fixed_seed() {
        // The issue's acceptance criterion: checkpoint+failover beats
        // retry-only beats naive, deterministically at the master seed.
        let (naive, retry, ckpt) = makespans(123);
        assert!(
            ckpt < retry && retry < naive,
            "ordering violated: ckpt {ckpt:.1} / retry {retry:.1} / naive {naive:.1}"
        );
        // Naive is dominated by the three-week Oxford sanitization: work
        // pinned to the breached site waits out the outage.
        assert!(naive > 400.0, "naive must be breach-dominated: {naive:.1}");
        assert!(retry < 200.0, "failover must dodge the breach: {retry:.1}");
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = run(123);
        let b = run(123);
        assert_eq!(a.render(), b.render());
        let text = a.render();
        assert!(text.contains("policy ordering holds: true"), "{text}");
        assert!(text.contains("ckpt+failover"));
        assert!(text.contains("badput"));
    }

    #[test]
    fn coupled_fraction_is_present() {
        let c = sc05_campaign(7);
        let coupled = c.jobs.iter().filter(|j| j.coupled).count();
        assert_eq!(coupled, 6, "every 12th of 72 jobs is steering-coupled");
    }
}
