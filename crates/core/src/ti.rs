//! Thermodynamic integration — the §VI extension.
//!
//! "the grid computing infrastructure used here for computing free
//! energies by SMD-JE can be easily extended to compute free energies
//! using different approaches (e.g. thermodynamic integration)."
//!
//! TI holds the steered coordinate at a ladder of fixed guide positions
//! (a static SMD spring at each window — the same decomposition the grid
//! executes as independent jobs), samples the mean spring force per
//! window, and integrates ⟨F⟩ dz. Cross-validates the JE profiles.

use crate::config::Scale;
use rayon::prelude::*;
use spice_jarzynski::wham::UmbrellaWindow;
use spice_md::Simulation;
use spice_smd::SmdSpring;
use spice_stats::rng::SeedSequence;
use spice_stats::RunningStats;

/// One TI window's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiWindow {
    /// Anchor displacement of the window (Å).
    pub s: f64,
    /// Mean COM position of the steered group in this window (Å,
    /// absolute z) — the Fig. 4 x-coordinate of this window.
    pub mean_com: f64,
    /// Mean spring force on the system along +z (kcal mol⁻¹ Å⁻¹).
    pub mean_force: f64,
    /// Standard error of the mean force.
    pub force_sem: f64,
    /// Samples collected.
    pub n: u64,
}

/// A TI free-energy profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TiProfile {
    /// Per-window measurements, ordered by displacement.
    pub windows: Vec<TiWindow>,
    /// Integrated profile by the trapezoid rule over the anchor
    /// coordinate, Φ(0) = 0, reported at each window's *mean COM
    /// displacement* (the Fig. 4 x-axis).
    pub profile: Vec<(f64, f64)>,
}

/// Run a TI ladder: `n_windows` static-spring windows spanning
/// `[0, span]` of guide displacement from the group's equilibrated COM.
///
/// `factory(seed)` builds one fresh simulation per window (windows are
/// independent jobs — the grid-amenable decomposition). The spring
/// constant is the paper's optimal κ = 100 pN/Å unless overridden.
pub fn ti_profile<F>(
    factory: F,
    scale: Scale,
    span: f64,
    n_windows: usize,
    kappa_pn_per_a: f64,
    seeds: SeedSequence,
) -> TiProfile
where
    F: Fn(u64) -> Simulation + Sync,
{
    assert!(n_windows >= 2 && span > 0.0);
    let kappa = spice_md::units::spring_pn_per_a_to_kcal(kappa_pn_per_a);
    let equil = scale.equilibration_steps();
    let sample_steps = match scale {
        Scale::Test => 1_500u64,
        Scale::Bench => 6_000,
        Scale::Paper => 30_000,
    };

    let raw = run_windows(&factory, span, n_windows, kappa, seeds, equil, sample_steps);
    let windows: Vec<TiWindow> = raw.into_iter().map(|(w, _)| w).collect();

    // dΦ/ds at window s equals the mean force the spring must exert to
    // hold the coordinate there; trapezoid-integrate over the anchor,
    // then report each point at the window's mean COM displacement
    // (relative to the first window) — the coordinate Fig. 4 plots.
    let com0 = windows[0].mean_com;
    let mut profile = Vec::with_capacity(windows.len());
    let mut phi = 0.0;
    profile.push((0.0, 0.0));
    for pair in windows.windows(2) {
        let ds = pair[1].s - pair[0].s;
        phi += 0.5 * (pair[0].mean_force + pair[1].mean_force) * ds;
        profile.push((pair[1].mean_com - com0, phi));
    }
    TiProfile { windows, profile }
}

/// Run one umbrella window and return its summary plus the raw COM
/// samples (shared by TI integration and WHAM).
#[allow(clippy::too_many_arguments)]
fn run_windows<F>(
    factory: &F,
    span: f64,
    n_windows: usize,
    kappa: f64,
    seeds: SeedSequence,
    equil: u64,
    sample_steps: u64,
) -> Vec<(TiWindow, Vec<f64>)>
where
    F: Fn(u64) -> Simulation + Sync,
{
    (0..n_windows)
        .into_par_iter()
        .map(|w| {
            let s = span * w as f64 / (n_windows - 1) as f64;
            let seed = seeds.stream(w as u64);
            let mut sim = factory(seed);
            let group = sim
                .force_field()
                .topology()
                .group("smd")
                .expect("factory must define an smd group")
                .to_vec();
            let masses = sim.system().masses().to_vec();
            // Anchor the static spring at (initial COM) + s, and start the
            // window with the steered group already translated by s —
            // windows sample near their anchor instead of relaxing
            // violently across the whole ladder (which would bias the
            // mean force through metastable trapping).
            let probe0 = SmdSpring::new(group.clone(), &masses, kappa, 0.0, 0.0, 0.0);
            let com0 = probe0.com_z(sim.system().positions());
            for &i in &group {
                sim.system_mut().positions_mut()[i].z += s;
            }
            sim.refresh_forces();
            let spring = SmdSpring::new(group.clone(), &masses, kappa, 0.0, com0 + s, 0.0);
            let probe = spring.clone();
            sim.set_bias(Some(Box::new(spring)));
            sim.run(equil, &mut []).expect("TI equilibration");
            // Sample the restoring force and the COM trajectory.
            let mut stats = RunningStats::new();
            let mut com_stats = RunningStats::new();
            let mut com_samples = Vec::with_capacity((sample_steps / 10) as usize);
            let stride = 10;
            for _ in 0..(sample_steps / stride) {
                sim.run(stride, &mut []).expect("TI sampling");
                stats.push(probe.spring_force(sim.system().positions(), sim.time_ps()));
                let com = probe.com_z(sim.system().positions());
                com_stats.push(com);
                // Samples relative to the (window-independent) unshifted
                // start COM, so every window shares one coordinate origin.
                com_samples.push(com - com0);
            }
            (
                TiWindow {
                    s,
                    mean_com: com_stats.mean(),
                    mean_force: stats.mean(),
                    force_sem: stats.std_error(),
                    n: stats.count(),
                },
                com_samples,
            )
        })
        .collect()
}

/// Umbrella-window data for WHAM on the same ladder `ti_profile` uses:
/// window k is biased at displacement s_k with spring κ, and its samples
/// are COM displacements relative to the common start COM.
pub fn umbrella_windows<F>(
    factory: F,
    scale: Scale,
    span: f64,
    n_windows: usize,
    kappa_pn_per_a: f64,
    seeds: SeedSequence,
) -> Vec<UmbrellaWindow>
where
    F: Fn(u64) -> Simulation + Sync,
{
    assert!(n_windows >= 2 && span > 0.0);
    let kappa = spice_md::units::spring_pn_per_a_to_kcal(kappa_pn_per_a);
    let equil = scale.equilibration_steps();
    let sample_steps = match scale {
        Scale::Test => 1_500u64,
        Scale::Bench => 6_000,
        Scale::Paper => 30_000,
    };
    run_windows(&factory, span, n_windows, kappa, seeds, equil, sample_steps)
        .into_iter()
        .map(|(w, samples)| UmbrellaWindow {
            center: w.s,
            kappa,
            samples,
        })
        .collect()
}

impl TiProfile {
    /// Φ interpolated at displacement `s` (clamped to the profile range).
    pub fn phi_at(&self, s: f64) -> f64 {
        if self.profile.is_empty() {
            return f64::NAN;
        }
        let mut prev = self.profile[0];
        for &cur in &self.profile[1..] {
            if cur.0 >= s {
                let span = cur.0 - prev.0;
                if span <= 0.0 {
                    return cur.1;
                }
                let w = ((s - prev.0) / span).clamp(0.0, 1.0);
                return prev.1 * (1.0 - w) + cur.1 * w;
            }
            prev = cur;
        }
        self.profile.last().expect("non-empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::LangevinBaoab;
    use spice_md::{System, Topology, Vec3};

    /// Single bead in U = a z²: TI must recover Φ(s) ≈ a s² exactly.
    fn well_factory(a: f64) -> impl Fn(u64) -> Simulation + Sync {
        move |seed| {
            let mut sys = System::new();
            sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
            let mut topo = Topology::new();
            topo.set_group("smd", vec![0]);
            let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), a));
            Simulation::new(
                sys,
                ff,
                Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
                0.02,
            )
        }
    }

    #[test]
    fn ti_recovers_harmonic_pmf() {
        let a = 0.5;
        let ti = ti_profile(
            well_factory(a),
            Scale::Test,
            3.0,
            7,
            500.0,
            SeedSequence::new(3),
        );
        for &(s, phi) in &ti.profile {
            let expected = a * s * s;
            assert!(
                (phi - expected).abs() < 0.35 + 0.1 * expected,
                "TI phi({s}) = {phi} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn windows_report_positive_force_uphill() {
        let ti = ti_profile(
            well_factory(1.0),
            Scale::Test,
            2.0,
            5,
            500.0,
            SeedSequence::new(4),
        );
        // Holding the bead displaced uphill needs a positive (upward)
        // spring force that grows with displacement.
        let forces: Vec<f64> = ti.windows.iter().map(|w| w.mean_force).collect();
        assert!(forces.last().unwrap() > &1.0);
        assert!(forces.last().unwrap() > forces.first().unwrap());
    }

    #[test]
    fn phi_at_interpolates() {
        let ti = TiProfile {
            windows: vec![],
            profile: vec![(0.0, 0.0), (2.0, 4.0)],
        };
        assert!((ti.phi_at(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(ti.phi_at(10.0), 4.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ti_profile(
            well_factory(1.0),
            Scale::Test,
            1.0,
            3,
            300.0,
            SeedSequence::new(9),
        );
        let b = ti_profile(
            well_factory(1.0),
            Scale::Test,
            1.0,
            3,
            300.0,
            SeedSequence::new(9),
        );
        assert_eq!(a, b);
    }
}
