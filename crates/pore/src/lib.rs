//! # spice-pore
//!
//! The biomolecular model of the SPICE system: a coarse-grained
//! α-hemolysin protein pore embedded in a lipid membrane, implicit
//! electrolyte solvent, and a single-stranded DNA bead–spring polymer —
//! Fig. 1 of the paper, rebuilt at coarse-grained resolution (see
//! DESIGN.md's substitution table for why this preserves the SMD-JE
//! phenomenology).
//!
//! Model anatomy (lengths in Å, z is the pore axis; z = 0 is the *trans*
//! membrane face, increasing z toward the *cis* cap mouth):
//!
//! * [`geometry`] — the axisymmetric pore radius profile r(z):
//!   β-barrel stem through the membrane, the narrow constriction at the
//!   stem/vestibule junction, the wide cap vestibule; plus the
//!   seven-fold-symmetric wall corrugation of the heptameric channel.
//! * [`potential`] — [`spice_md::forces::ExternalPotential`]s derived from
//!   the geometry: confining wall, charged constriction ring
//!   (Debye–Hückel), membrane slab exclusion.
//! * [`dna`] — the ssDNA bead–spring chain (one bead per nucleotide,
//!   FENE backbone, bending stiffness, phosphate charges).
//! * [`solvent`] — implicit 1 M KCl water: Langevin friction, Debye
//!   length, dielectric.
//! * [`build`] — assembles the complete simulation-ready system and
//!   defines the named groups (`"dna"`, `"smd"`) the steering and SMD
//!   layers address.
//! * [`analysis`] — structural observables (Fig. 1 summary, Fig. 3
//!   stretching profile).

#![warn(missing_docs)]

pub mod analysis;
pub mod build;
pub mod dna;
pub mod geometry;
pub mod potential;
pub mod solvent;

pub use build::{PoreSystem, PoreSystemBuilder};
pub use dna::DnaParams;
pub use geometry::PoreGeometry;
pub use potential::{AxialCorrugation, ConstrictionRing, MembraneSlab, PoreWall};
pub use solvent::Solvent;
