//! Assembly of the complete SPICE simulation system (Fig. 1): pore +
//! membrane + solvent + ssDNA, wired into a `spice-md` force field with
//! the named groups the SMD and steering layers address.

use crate::dna::{build_dna, DnaParams};
use crate::geometry::PoreGeometry;
use crate::potential::{AxialCorrugation, ConstrictionRing, MembraneSlab, PoreWall, SPECIES_DNA};
use crate::solvent::Solvent;
use spice_md::forces::external::{CylinderWall, SlabWall};
use spice_md::forces::{LjParams, NonBonded};
use spice_md::rng::GaussianStream;
use spice_md::{ForceField, Simulation, System, Topology};

/// Which beads constitute the paper's "SMD atoms" (the set coupled to the
/// fictitious pulling atom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmdSelection {
    /// Only the leading (5') bead — the paper's single C3' pull.
    LeadBead,
    /// The whole strand (COM pulling).
    WholeStrand,
}

/// Builder for the pore + DNA system.
#[derive(Debug, Clone)]
pub struct PoreSystemBuilder {
    geometry: PoreGeometry,
    dna: DnaParams,
    solvent: Solvent,
    /// Pore-wall stiffness (kcal mol⁻¹ Å⁻²).
    wall_k: f64,
    /// Effective bead radius against the wall (Å).
    wall_bead_radius: f64,
    /// Total constriction-ring charge (e); 0 disables the ring.
    ring_charge: f64,
    /// z of the leading DNA bead at build time.
    dna_start_z: f64,
    smd: SmdSelection,
}

impl Default for PoreSystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PoreSystemBuilder {
    /// Start from the standard SPICE configuration: α-hemolysin geometry,
    /// 12-base ssDNA entering from the vestibule side, 1 M KCl.
    pub fn new() -> Self {
        PoreSystemBuilder {
            geometry: PoreGeometry::alpha_hemolysin(),
            dna: DnaParams::default(),
            solvent: Solvent::kcl_1m_300k(),
            wall_k: 5.0,
            wall_bead_radius: 2.5,
            ring_charge: -8.0,
            dna_start_z: 80.0,
            smd: SmdSelection::LeadBead,
        }
    }

    /// Override the pore geometry.
    pub fn geometry(mut self, g: PoreGeometry) -> Self {
        self.geometry = g;
        self
    }

    /// Override the DNA parameters.
    pub fn dna(mut self, d: DnaParams) -> Self {
        self.dna = d;
        self
    }

    /// Override the solvent.
    pub fn solvent(mut self, s: Solvent) -> Self {
        self.solvent = s;
        self
    }

    /// Override the wall stiffness.
    pub fn wall_stiffness(mut self, k: f64) -> Self {
        self.wall_k = k;
        self
    }

    /// Override the constriction-ring total charge (0 disables).
    pub fn ring_charge(mut self, q: f64) -> Self {
        self.ring_charge = q;
        self
    }

    /// Override the z of the leading bead at build time.
    pub fn dna_start_z(mut self, z: f64) -> Self {
        self.dna_start_z = z;
        self
    }

    /// Choose the SMD atom set.
    pub fn smd_selection(mut self, s: SmdSelection) -> Self {
        self.smd = s;
        self
    }

    /// Assemble the system.
    pub fn build(self) -> PoreSystem {
        self.dna.validate();
        let mut system = System::new();
        let mut topology = Topology::new();
        let dna_indices = build_dna(
            &mut system,
            &mut topology,
            &self.dna,
            self.dna_start_z,
            SPECIES_DNA,
        );
        topology.set_group("dna", dna_indices.clone());
        let smd_indices: Vec<usize> = match self.smd {
            SmdSelection::LeadBead => vec![dna_indices[0]],
            SmdSelection::WholeStrand => dna_indices.clone(),
        };
        topology.set_group("smd", smd_indices);

        let lj = LjParams::wca(self.dna.sigma, self.dna.epsilon);
        // Neighbor list must cover both WCA and the (short) screened
        // electrostatic range: 4 Debye lengths is < 1% residual.
        let list_cutoff = lj.cutoff.max(4.0 * self.solvent.debye_length);
        let nonbonded = NonBonded::new(lj, list_cutoff, 1.0)
            .with_debye_huckel(self.solvent.debye_length, self.solvent.epsilon_r);

        let constriction_z = self.geometry.constriction_z();
        let mut ff = ForceField::new(topology)
            .with_nonbonded(nonbonded)
            // Nucleotide-scale features of the barrel interior (see
            // AxialCorrugation docs: what soft pulling springs smear out).
            .with_external(AxialCorrugation {
                amplitude: 0.8,
                period: 6.0,
                z_lo: self.geometry.barrel_lo + 2.0,
                z_hi: self.geometry.constriction_hi + 2.0,
                ramp: 3.0,
            })
            // Sub-Å atomic-scale roughness: springs stiffer than
            // kT/(0.3 Å)² track these features and inherit their force
            // noise (§IV-B: κ = 1000 pN/Å "extremely large" fluctuations);
            // κ ≤ 100 averages over them.
            .with_external(AxialCorrugation {
                amplitude: 0.4,
                period: 1.8,
                z_lo: self.geometry.barrel_lo + 2.0,
                z_hi: self.geometry.constriction_hi + 2.0,
                ramp: 3.0,
            })
            .with_external(PoreWall::new(
                self.geometry.clone(),
                self.wall_k,
                self.wall_bead_radius,
            ))
            .with_external(MembraneSlab::new(self.geometry.clone(), 10.0))
            // Keep strays bounded in bulk solution above/below the pore.
            .with_external(SlabWall {
                z_lo: self.geometry.barrel_lo - 60.0,
                z_hi: self.geometry.cap_hi + 60.0,
                k: 5.0,
            })
            .with_external(CylinderWall {
                radius: 40.0,
                k: 5.0,
            });
        // spice-lint: allow(N002) exact-zero charge is the "feature off" sentinel
        if self.ring_charge != 0.0 {
            ff = ff.with_external(ConstrictionRing {
                radius: self.geometry.constriction_radius,
                z0: constriction_z,
                charge: self.ring_charge,
                lambda: self.solvent.debye_length,
                epsilon_r: self.solvent.epsilon_r,
                bead_charge: self.dna.bead_charge,
                softening: 1.0,
            });
        }

        PoreSystem {
            system,
            force_field: ff,
            dna_indices,
            geometry: self.geometry,
            solvent: self.solvent,
            dna: self.dna,
        }
    }
}

/// A fully assembled pore + DNA system ready to become a [`Simulation`].
pub struct PoreSystem {
    /// Particle state.
    pub system: System,
    /// Interaction model (owns the topology and the named groups).
    pub force_field: ForceField,
    /// DNA bead indices, 5'→3'.
    pub dna_indices: Vec<usize>,
    /// The pore geometry used.
    pub geometry: PoreGeometry,
    /// The solvent used.
    pub solvent: Solvent,
    /// The DNA parameters used.
    pub dna: DnaParams,
}

impl PoreSystem {
    /// The SMD atom group.
    pub fn smd_group(&self) -> Vec<usize> {
        self.force_field
            .topology()
            .group("smd")
            .expect("builder always defines the smd group")
            .to_vec()
    }

    /// Like [`PoreSystem::into_simulation`] but steepest-descent minimizes
    /// first — removes any bad contacts from hand-placed coordinates
    /// before dynamics (the standard prep stage).
    pub fn into_minimized_simulation(mut self, dt_ps: f64, seed: u64) -> Simulation {
        spice_md::minimize::steepest_descent(
            &mut self.system,
            &mut self.force_field,
            500,
            0.5,
            0.3,
        );
        self.into_simulation(dt_ps, seed)
    }

    /// Thermalize velocities to the solvent temperature (deterministic
    /// under `seed`) and wrap everything into a Langevin [`Simulation`]
    /// with time step `dt_ps`.
    pub fn into_simulation(mut self, dt_ps: f64, seed: u64) -> Simulation {
        let g = GaussianStream::new(seed ^ 0xD1CE_BA5E);
        self.system
            .thermalize_with(self.solvent.temperature, |i, a| {
                g.sample(i as u64, a as u64)
            });
        let integrator = Box::new(self.solvent.langevin(seed));
        Simulation::new(self.system, self.force_field, integrator, dt_ps)
    }
}

impl std::fmt::Debug for PoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoreSystem")
            .field("particles", &self.system.len())
            .field("dna_bases", &self.dna_indices.len())
            .field("pore_length", &self.geometry.length())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_assemble() {
        let ps = PoreSystemBuilder::new().build();
        assert_eq!(ps.system.len(), 12);
        assert_eq!(ps.dna_indices.len(), 12);
        assert_eq!(ps.smd_group(), vec![0]);
        assert!(ps.force_field.topology().group("dna").is_ok());
    }

    #[test]
    fn whole_strand_smd_selection() {
        let ps = PoreSystemBuilder::new()
            .smd_selection(SmdSelection::WholeStrand)
            .build();
        assert_eq!(ps.smd_group().len(), 12);
    }

    #[test]
    fn simulation_runs_stably() {
        let ps = PoreSystemBuilder::new().build();
        let mut sim = ps.into_simulation(0.01, 7);
        sim.run(500, &mut []).expect("500 steps must not blow up");
        assert!(sim.system().is_finite());
        // Temperature in a sane band after Langevin equilibration.
        let t = sim.system().temperature();
        assert!(t > 100.0 && t < 700.0, "temperature {t} implausible");
    }

    #[test]
    fn dna_stays_confined_to_lumen() {
        let ps = PoreSystemBuilder::new().dna_start_z(40.0).build();
        let geometry = ps.geometry.clone();
        let mut sim = ps.into_simulation(0.01, 3);
        sim.run(2000, &mut []).unwrap();
        for p in sim.system().positions() {
            if p.z >= geometry.barrel_lo && p.z <= geometry.cap_hi {
                let r = geometry.radius(p.z);
                assert!(
                    p.rho() < r + 2.0,
                    "bead at rho={} z={} escaped lumen radius {r}",
                    p.rho(),
                    p.z
                );
            }
        }
    }

    #[test]
    fn deterministic_build_and_run() {
        let run = |seed| {
            let ps = PoreSystemBuilder::new().build();
            let mut sim = ps.into_simulation(0.01, seed);
            sim.run(100, &mut []).unwrap();
            sim.system().positions().to_vec()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn minimized_prep_runs_and_lowers_energy() {
        let ps = PoreSystemBuilder::new().build();
        let mut raw = PoreSystemBuilder::new().build().into_simulation(0.01, 5);
        let mut min = ps.into_minimized_simulation(0.01, 5);
        // Both run stably; the minimized one starts from lower (or equal)
        // potential energy.
        raw.run(50, &mut []).unwrap();
        min.run(50, &mut []).unwrap();
        assert!(min.system().is_finite());
    }

    #[test]
    fn ring_can_be_disabled() {
        let ps = PoreSystemBuilder::new().ring_charge(0.0).build();
        // Just verify assembly + a short run.
        let mut sim = ps.into_simulation(0.01, 1);
        sim.run(50, &mut []).unwrap();
    }
}
