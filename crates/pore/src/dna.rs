//! Coarse-grained single-stranded DNA: one bead per nucleotide.
//!
//! The paper pulls a ssDNA strand through hemolysin by its C3' atom; at
//! coarse-grained resolution the strand is a charged bead–spring polymer:
//!
//! * backbone: FENE bonds (finite extensibility reproduces Fig. 3's
//!   stretching saturation at the constriction),
//! * bending: weak harmonic angles (ssDNA persistence length ≈ 2–3
//!   bases),
//! * excluded volume: WCA between all non-bonded bead pairs,
//! * charge: −1 e per phosphate, screened by the electrolyte.

use serde::{Deserialize, Serialize};
use spice_md::{System, Topology, Vec3};

/// Parameters of the coarse-grained ssDNA model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct DnaParams {
    /// Number of nucleotides.
    pub n_bases: usize,
    /// Bead mass (amu) — one nucleotide ≈ 330 amu.
    pub bead_mass: f64,
    /// Bead charge (e) — bare phosphate −1, reduced by counterion
    /// condensation if desired.
    pub bead_charge: f64,
    /// Equilibrium backbone rise per base (Å).
    pub bond_length: f64,
    /// FENE maximum extension R0 (Å).
    pub bond_max: f64,
    /// FENE stiffness (kcal mol⁻¹ Å⁻²).
    pub bond_k: f64,
    /// Bending stiffness (kcal mol⁻¹ rad⁻²); small for flexible ssDNA.
    pub angle_k: f64,
    /// Excluded-volume diameter σ (Å).
    pub sigma: f64,
    /// Excluded-volume strength ε (kcal/mol).
    pub epsilon: f64,
}

impl Default for DnaParams {
    fn default() -> Self {
        DnaParams {
            n_bases: 12,
            bead_mass: 330.0,
            bead_charge: -1.0,
            bond_length: 5.0,
            bond_max: 9.0,
            bond_k: 0.3,
            angle_k: 1.0,
            sigma: 4.5,
            epsilon: 0.5,
        }
    }
}

impl DnaParams {
    /// Contour length at equilibrium bond lengths (Å).
    pub fn contour_length(&self) -> f64 {
        self.bond_length * (self.n_bases.saturating_sub(1)) as f64
    }

    /// Validate parameter sanity.
    ///
    /// # Panics
    /// Panics on non-physical parameters (the builder calls this).
    pub fn validate(&self) {
        assert!(self.n_bases >= 1, "need at least one base");
        assert!(self.bead_mass > 0.0);
        assert!(self.bond_length > 0.0);
        assert!(
            self.bond_max > self.bond_length,
            "FENE max extension must exceed equilibrium rise"
        );
        assert!(self.bond_k > 0.0 && self.angle_k >= 0.0);
        assert!(self.sigma > 0.0 && self.epsilon >= 0.0);
    }
}

/// Append a ssDNA chain to `system`/`topology`, threaded along the z-axis
/// starting at `z_start` and extending toward −z (into the pore), laterally
/// centered with a small helical offset so beads do not start collinear.
///
/// Returns the bead indices in 5'→3' order (index 0 is the leading bead at
/// `z_start`).
pub fn build_dna(
    system: &mut System,
    topology: &mut Topology,
    params: &DnaParams,
    z_start: f64,
    species: u32,
) -> Vec<usize> {
    params.validate();
    let mut indices = Vec::with_capacity(params.n_bases);
    for i in 0..params.n_bases {
        // Small helix (radius 1 Å) breaks collinearity for angle terms.
        let phase = i as f64 * 0.8;
        let pos = Vec3::new(
            phase.cos() * 1.0,
            phase.sin() * 1.0,
            z_start - i as f64 * params.bond_length,
        );
        indices.push(system.add_particle(pos, params.bead_mass, params.bead_charge, species));
    }
    for w in indices.windows(2) {
        topology.add_fene_bond(w[0], w[1], params.bond_max, params.bond_k);
    }
    if params.angle_k > 0.0 {
        for w in indices.windows(3) {
            // Keep 1–3 excluded volume: FENE + weak bending would otherwise
            // let the chain collapse onto itself.
            topology.add_angle_keep_nonbonded(
                w[0],
                w[1],
                w[2],
                std::f64::consts::PI,
                params.angle_k,
            );
        }
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_chain() {
        let mut sys = System::new();
        let mut topo = Topology::new();
        let p = DnaParams::default();
        let idx = build_dna(&mut sys, &mut topo, &p, 60.0, 1);
        assert_eq!(idx.len(), 12);
        assert_eq!(sys.len(), 12);
        assert_eq!(topo.bonds().len(), 11);
        assert_eq!(topo.angles().len(), 10);
        assert_eq!(sys.charges()[0], -1.0);
        assert_eq!(sys.species()[0], 1);
    }

    #[test]
    fn chain_descends_along_z() {
        let mut sys = System::new();
        let mut topo = Topology::new();
        let p = DnaParams::default();
        let idx = build_dna(&mut sys, &mut topo, &p, 60.0, 1);
        for w in idx.windows(2) {
            assert!(
                sys.positions()[w[1]].z < sys.positions()[w[0]].z,
                "beads must descend into the pore"
            );
        }
        assert!((sys.positions()[idx[0]].z - 60.0).abs() < 1e-12);
    }

    #[test]
    fn initial_bond_lengths_below_fene_max() {
        let mut sys = System::new();
        let mut topo = Topology::new();
        let p = DnaParams::default();
        let idx = build_dna(&mut sys, &mut topo, &p, 0.0, 1);
        for w in idx.windows(2) {
            let r = (sys.positions()[w[1]] - sys.positions()[w[0]]).norm();
            assert!(r < p.bond_max, "initial bond {r} exceeds FENE max");
            assert!(r > 0.5 * p.bond_length, "bond too compressed: {r}");
        }
    }

    #[test]
    fn contour_length() {
        let p = DnaParams {
            n_bases: 5,
            ..DnaParams::default()
        };
        assert!((p.contour_length() - 4.0 * 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FENE max extension")]
    fn rejects_inconsistent_fene() {
        let p = DnaParams {
            bond_max: 1.0,
            ..DnaParams::default()
        };
        p.validate();
    }

    #[test]
    fn single_base_chain_is_legal() {
        let mut sys = System::new();
        let mut topo = Topology::new();
        let p = DnaParams {
            n_bases: 1,
            ..DnaParams::default()
        };
        let idx = build_dna(&mut sys, &mut topo, &p, 10.0, 1);
        assert_eq!(idx.len(), 1);
        assert!(topo.bonds().is_empty());
        assert!(topo.angles().is_empty());
    }
}
