//! Implicit electrolyte solvent.
//!
//! Hemolysin translocation experiments run in ~1 M KCl at room
//! temperature; at coarse-grained resolution the solvent enters through
//! three numbers: Langevin friction (viscous drag), the Debye screening
//! length (electrostatics) and the dielectric constant.

use serde::{Deserialize, Serialize};
use spice_md::integrate::{Brownian, LangevinBaoab};

/// Implicit-solvent parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Solvent {
    /// Temperature (K).
    pub temperature: f64,
    /// Langevin friction γ (ps⁻¹) on each bead.
    pub gamma: f64,
    /// Debye screening length (Å).
    pub debye_length: f64,
    /// Relative dielectric constant.
    pub epsilon_r: f64,
}

impl Default for Solvent {
    fn default() -> Self {
        Self::kcl_1m_300k()
    }
}

impl Solvent {
    /// 1 M KCl at 300 K: λ_D ≈ 3.04 Å, ε_r ≈ 78.
    pub fn kcl_1m_300k() -> Self {
        Solvent {
            temperature: 300.0,
            gamma: 2.0,
            debye_length: 3.04,
            epsilon_r: 78.0,
        }
    }

    /// 0.1 M KCl at 300 K: λ_D ≈ 9.6 Å.
    pub fn kcl_0p1m_300k() -> Self {
        Solvent {
            debye_length: 9.6,
            ..Self::kcl_1m_300k()
        }
    }

    /// Debye length (Å) for a 1:1 electrolyte of molarity `c` at 300 K in
    /// water: λ_D = 3.04/√c.
    pub fn debye_length_for_molarity(c: f64) -> f64 {
        assert!(c > 0.0, "molarity must be positive");
        3.04 / c.sqrt()
    }

    /// A production Langevin integrator for this solvent.
    pub fn langevin(&self, seed: u64) -> LangevinBaoab {
        LangevinBaoab::new(self.temperature, self.gamma, seed)
    }

    /// An overdamped integrator for priming runs.
    pub fn brownian(&self, seed: u64) -> Brownian {
        Brownian::new(self.temperature, self.gamma, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debye_length_scaling() {
        assert!((Solvent::debye_length_for_molarity(1.0) - 3.04).abs() < 1e-12);
        assert!((Solvent::debye_length_for_molarity(0.1) - 9.6124).abs() < 1e-2);
        // Quadrupling concentration halves the screening length.
        let l1 = Solvent::debye_length_for_molarity(0.25);
        let l4 = Solvent::debye_length_for_molarity(1.0);
        assert!((l1 / l4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integrator_factories() {
        let s = Solvent::kcl_1m_300k();
        let li = s.langevin(1);
        assert!((li.temperature() - 300.0).abs() < 1e-12);
        assert!((li.gamma() - 2.0).abs() < 1e-12);
        let _ = s.brownian(1);
    }

    #[test]
    #[should_panic(expected = "molarity must be positive")]
    fn rejects_zero_molarity() {
        Solvent::debye_length_for_molarity(0.0);
    }
}
