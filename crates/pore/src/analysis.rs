//! Structural analysis of the pore + DNA system.
//!
//! Produces the Fig. 1 structural summary (geometry + composition) and
//! the Fig. 3 observable: local strand stretching as a function of
//! position along the pore axis.

use crate::geometry::PoreGeometry;
use spice_md::observables;
use spice_md::System;

/// Fig. 1-style structural summary of a built system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSummary {
    /// Total particle count.
    pub n_particles: usize,
    /// Number of DNA beads.
    pub n_dna: usize,
    /// Pore length (Å).
    pub pore_length: f64,
    /// Narrowest lumen radius (Å).
    pub min_radius: f64,
    /// z of the narrowest point (Å).
    pub constriction_z: f64,
    /// Widest lumen radius (Å).
    pub max_radius: f64,
    /// DNA contour length at current coordinates (Å).
    pub dna_contour: f64,
    /// DNA center-of-mass height (Å).
    pub dna_com_z: f64,
}

/// Build the structural summary.
pub fn summarize(system: &System, geometry: &PoreGeometry, dna: &[usize]) -> SystemSummary {
    let prof = geometry.radius_profile(0.25);
    let (mut min_r, mut max_r) = (f64::INFINITY, 0.0f64);
    for &(_, r) in &prof {
        min_r = min_r.min(r);
        max_r = max_r.max(r);
    }
    SystemSummary {
        n_particles: system.len(),
        n_dna: dna.len(),
        pore_length: geometry.length(),
        min_radius: min_r,
        constriction_z: geometry.constriction_z(),
        max_radius: max_r,
        dna_contour: observables::contour_length(system, dna),
        dna_com_z: observables::com_z(system, dna),
    }
}

/// One sample of the Fig. 3 observable: where the strand is and how much
/// each link is stretched there.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchSample {
    /// DNA COM z (the translocation coordinate).
    pub com_z: f64,
    /// Per-link (midpoint-z, bead-spacing) pairs.
    pub spacing: Vec<(f64, f64)>,
    /// Mean bead spacing (Å).
    pub mean_spacing: f64,
    /// `(z midpoint, spacing)` of the most stretched link.
    pub max_spacing: (f64, f64),
}

/// Measure strand stretching for the current configuration.
pub fn stretch_sample(system: &System, dna: &[usize]) -> StretchSample {
    let spacing = observables::spacing_profile(system, dna);
    let mean = observables::mean_bead_spacing(system, dna);
    let max = spacing
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((f64::NAN, f64::NAN));
    StretchSample {
        com_z: observables::com_z(system, dna),
        spacing,
        mean_spacing: mean,
        max_spacing: (max.0, max.1),
    }
}

/// Given stretch samples binned by the z of each link midpoint, return
/// the mean spacing per z-bin — the Fig. 3 "stretching localizes at the
/// constriction" curve.
pub fn spacing_vs_z(
    samples: &[StretchSample],
    z_lo: f64,
    z_hi: f64,
    nbins: usize,
) -> Vec<(f64, f64)> {
    let mut binned = spice_stats::series::BinnedSeries::new(z_lo, z_hi, nbins);
    for s in samples {
        for &(z, d) in &s.spacing {
            binned.record(z, d);
        }
    }
    binned
        .mean_curve()
        .into_iter()
        .filter(|(_, m)| m.is_finite())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PoreSystemBuilder;

    #[test]
    fn summary_of_default_system() {
        let ps = PoreSystemBuilder::new().build();
        let s = summarize(&ps.system, &ps.geometry, &ps.dna_indices);
        assert_eq!(s.n_particles, 12);
        assert_eq!(s.n_dna, 12);
        assert!((s.pore_length - 100.0).abs() < 1e-9);
        assert!(s.min_radius < 5.0, "constriction visible in summary");
        assert!(s.max_radius > 20.0, "mouth visible in summary");
        assert!(s.dna_contour > 0.0);
    }

    #[test]
    fn stretch_sample_of_uniform_chain() {
        let ps = PoreSystemBuilder::new().build();
        let s = stretch_sample(&ps.system, &ps.dna_indices);
        assert_eq!(s.spacing.len(), 11);
        assert!(s.mean_spacing > 5.0 && s.mean_spacing < 8.0);
        // Uniform helix: all links equal, so max == mean up to rounding.
        assert!(s.max_spacing.1 >= s.mean_spacing - 1e-9);
    }

    #[test]
    fn spacing_vs_z_bins_links() {
        let ps = PoreSystemBuilder::new().build();
        let s = stretch_sample(&ps.system, &ps.dna_indices);
        let curve = spacing_vs_z(&[s], -20.0, 100.0, 24);
        assert!(!curve.is_empty());
        for (_, m) in &curve {
            assert!(*m > 0.0);
        }
    }
}
