//! The axisymmetric α-hemolysin pore geometry.
//!
//! Crystallographic anatomy (Song et al. 1996), coarse-grained into a
//! smooth radius profile r(z) along the channel axis:
//!
//! ```text
//!        z (Å)
//!   100 ┤   ╭───────╮      cap mouth (cis), r ≈ 22
//!        │  vestibule       narrowing to r ≈ 10
//!    55 ┤    ╰─╮ ╭─╯       constriction, r ≈ 4.5  (E111/K147 ring)
//!    50 ┤     │   │
//!        │    β-barrel      r ≈ 8, through the membrane
//!     0 ┤     ╰───╯         trans exit
//! ```
//!
//! The heptamer's seven-fold symmetry shows up as a small azimuthal and
//! axial corrugation of the wall; the axial component is what matters for
//! the PMF along z (it produces the periodic structure a translocating
//! strand feels), so we model it as a cosine ripple on r(z).

use serde::{Deserialize, Serialize};

/// Geometric description of the pore. All lengths in Å.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PoreGeometry {
    /// z of the trans (lower) end of the β-barrel.
    pub barrel_lo: f64,
    /// z of the top of the β-barrel = bottom of the constriction.
    pub barrel_hi: f64,
    /// z of the top of the constriction = bottom of the vestibule.
    pub constriction_hi: f64,
    /// z of the cap mouth (cis opening).
    pub cap_hi: f64,
    /// β-barrel lumen radius.
    pub barrel_radius: f64,
    /// Constriction lumen radius (the narrowest point).
    pub constriction_radius: f64,
    /// Vestibule radius just above the constriction.
    pub vestibule_radius: f64,
    /// Radius at the cap mouth.
    pub mouth_radius: f64,
    /// Amplitude of the axial wall corrugation (Å).
    pub corrugation_amplitude: f64,
    /// Axial period of the corrugation (Å) — one β-strand rise per
    /// heptamer repeat.
    pub corrugation_period: f64,
}

impl Default for PoreGeometry {
    fn default() -> Self {
        Self::alpha_hemolysin()
    }
}

impl PoreGeometry {
    /// The default α-hemolysin-like geometry used throughout SPICE.
    pub fn alpha_hemolysin() -> Self {
        PoreGeometry {
            barrel_lo: 0.0,
            barrel_hi: 50.0,
            constriction_hi: 56.0,
            cap_hi: 100.0,
            barrel_radius: 8.0,
            constriction_radius: 4.5,
            vestibule_radius: 14.0,
            mouth_radius: 22.0,
            corrugation_amplitude: 0.8,
            corrugation_period: 10.0,
        }
    }

    /// Smoothstep interpolation helper.
    fn smooth(t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        t * t * (3.0 - 2.0 * t)
    }

    /// Lumen radius at height `z`, *without* corrugation. Outside the pore
    /// (z < barrel_lo or z > cap_hi) the profile opens to bulk: returns
    /// `f64::INFINITY`.
    pub fn smooth_radius(&self, z: f64) -> f64 {
        if z < self.barrel_lo || z > self.cap_hi {
            return f64::INFINITY;
        }
        // Blend half-widths for the constriction transitions.
        let w = 3.0;
        if z <= self.barrel_hi - w {
            self.barrel_radius
        } else if z <= self.barrel_hi + (self.constriction_hi - self.barrel_hi) * 0.5 {
            // barrel → constriction
            let t = Self::smooth((z - (self.barrel_hi - w)) / w);
            self.barrel_radius + t * (self.constriction_radius - self.barrel_radius)
        } else if z <= self.constriction_hi + w {
            // constriction → vestibule
            let t = Self::smooth(
                (z - (self.barrel_hi + (self.constriction_hi - self.barrel_hi) * 0.5))
                    / (self.constriction_hi + w
                        - (self.barrel_hi + (self.constriction_hi - self.barrel_hi) * 0.5)),
            );
            self.constriction_radius + t * (self.vestibule_radius - self.constriction_radius)
        } else {
            // vestibule widening toward the mouth
            let t = Self::smooth(
                (z - (self.constriction_hi + w)) / (self.cap_hi - self.constriction_hi - w),
            );
            self.vestibule_radius + t * (self.mouth_radius - self.vestibule_radius)
        }
    }

    /// Lumen radius at height `z` including the seven-fold corrugation.
    pub fn radius(&self, z: f64) -> f64 {
        let r = self.smooth_radius(z);
        if !r.is_finite() {
            return r;
        }
        let ripple = self.corrugation_amplitude
            * (2.0 * std::f64::consts::PI * z / self.corrugation_period).cos();
        // Never let the ripple close the constriction entirely.
        (r + ripple).max(self.constriction_radius * 0.5)
    }

    /// d(radius)/dz at `z` (analytic ripple + numeric base profile), used
    /// by the wall force. Returns 0 outside the pore.
    pub fn radius_gradient(&self, z: f64) -> f64 {
        if z < self.barrel_lo || z > self.cap_hi {
            return 0.0;
        }
        let h = 1e-4;
        let zp = (z + h).min(self.cap_hi);
        let zm = (z - h).max(self.barrel_lo);
        let rp = self.radius(zp);
        let rm = self.radius(zm);
        if !rp.is_finite() || !rm.is_finite() {
            return 0.0;
        }
        (rp - rm) / (zp - zm)
    }

    /// z of the narrowest lumen point (scan at 0.1 Å resolution).
    pub fn constriction_z(&self) -> f64 {
        let mut best_z = self.barrel_lo;
        let mut best_r = f64::INFINITY;
        let mut z = self.barrel_lo;
        while z <= self.cap_hi {
            let r = self.smooth_radius(z);
            if r < best_r {
                best_r = r;
                best_z = z;
            }
            z += 0.1;
        }
        best_z
    }

    /// Total pore length (Å).
    pub fn length(&self) -> f64 {
        self.cap_hi - self.barrel_lo
    }

    /// True when `z` lies within the membrane-spanning β-barrel section.
    pub fn in_membrane_span(&self, z: f64) -> bool {
        (self.barrel_lo..=self.barrel_hi).contains(&z)
    }

    /// Tabulate (z, radius) at the given axial resolution — the Fig. 1
    /// structural summary.
    pub fn radius_profile(&self, dz: f64) -> Vec<(f64, f64)> {
        assert!(dz > 0.0);
        let mut out = Vec::new();
        let mut z = self.barrel_lo;
        while z <= self.cap_hi {
            out.push((z, self.radius(z)));
            z += dz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrel_is_uniform_away_from_constriction() {
        let g = PoreGeometry::alpha_hemolysin();
        assert_eq!(g.smooth_radius(10.0), g.barrel_radius);
        assert_eq!(g.smooth_radius(30.0), g.barrel_radius);
    }

    #[test]
    fn constriction_is_narrowest() {
        let g = PoreGeometry::alpha_hemolysin();
        let zc = g.constriction_z();
        assert!(
            zc > g.barrel_hi - 5.0 && zc < g.constriction_hi + 1.0,
            "constriction at {zc} should sit near the barrel/vestibule junction"
        );
        let rc = g.smooth_radius(zc);
        assert!((rc - g.constriction_radius).abs() < 0.5);
        for z in [5.0, 25.0, 45.0, 70.0, 90.0] {
            assert!(g.smooth_radius(z) >= rc, "z={z} narrower than constriction");
        }
    }

    #[test]
    fn mouth_is_widest_inside_pore() {
        let g = PoreGeometry::alpha_hemolysin();
        let r_mouth = g.smooth_radius(g.cap_hi - 1e-9);
        assert!((r_mouth - g.mouth_radius).abs() < 0.5);
    }

    #[test]
    fn outside_pore_is_bulk() {
        let g = PoreGeometry::alpha_hemolysin();
        assert!(!g.smooth_radius(-1.0).is_finite());
        assert!(!g.smooth_radius(101.0).is_finite());
        assert_eq!(g.radius_gradient(-5.0), 0.0);
    }

    #[test]
    fn profile_is_continuous() {
        let g = PoreGeometry::alpha_hemolysin();
        let prof = g.radius_profile(0.05);
        for w in prof.windows(2) {
            let dr = (w[1].1 - w[0].1).abs();
            assert!(
                dr < 0.25,
                "radius jump {dr} between z={} and z={}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn corrugation_modulates_barrel() {
        let g = PoreGeometry::alpha_hemolysin();
        let radii: Vec<f64> = (0..100).map(|i| g.radius(5.0 + i as f64 * 0.4)).collect();
        let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = radii.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > g.corrugation_amplitude,
            "corrugation should modulate the wall: range {}",
            max - min
        );
    }

    #[test]
    fn corrugation_never_closes_pore() {
        let g = PoreGeometry::alpha_hemolysin();
        for (_, r) in g.radius_profile(0.05) {
            assert!(r >= g.constriction_radius * 0.5);
        }
    }

    #[test]
    fn membrane_span() {
        let g = PoreGeometry::alpha_hemolysin();
        assert!(g.in_membrane_span(25.0));
        assert!(!g.in_membrane_span(75.0));
        assert!((g.length() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_profile() {
        let g = PoreGeometry::alpha_hemolysin();
        for z in [10.0, 51.0, 54.0, 60.0, 80.0] {
            let h = 1e-3;
            let num = (g.radius(z + h) - g.radius(z - h)) / (2.0 * h);
            let ana = g.radius_gradient(z);
            assert!((num - ana).abs() < 0.05, "z={z}: {num} vs {ana}");
        }
    }
}
