//! External potentials derived from the pore geometry.
//!
//! Three one-body terms build the environment the DNA translocates
//! through:
//!
//! * [`PoreWall`] — harmonic confinement to the lumen, `U = k_w (ρ −
//!   (r(z) − a))²` when a bead of radius `a` overlaps the wall. Because
//!   r(z) varies with z (constriction, corrugation), the wall exerts both
//!   radial and axial forces — the axial component is what makes the PMF
//!   along z non-trivial.
//! * [`ConstrictionRing`] — the charged residue ring (E111/K147 in
//!   hemolysin) modeled as a uniformly charged circle interacting with
//!   bead charges through Debye–Hückel screening; gives the PMF its
//!   electrostatic barrier/well at the constriction.
//! * [`MembraneSlab`] — excludes beads from the lipid region outside the
//!   barrel.

use crate::geometry::PoreGeometry;
use spice_md::forces::nonbonded::COULOMB_KCAL;
use spice_md::forces::ExternalPotential;
use spice_md::system::SpeciesId;
use spice_md::Vec3;

/// Species id for DNA beads (the builder assigns it).
pub const SPECIES_DNA: SpeciesId = 1;

/// Harmonic confinement of beads to the pore lumen.
#[derive(Debug, Clone)]
pub struct PoreWall {
    geometry: PoreGeometry,
    /// Wall stiffness (kcal mol⁻¹ Å⁻²).
    pub k_wall: f64,
    /// Effective bead radius (Å): beads feel the wall at ρ = r(z) − a.
    pub bead_radius: f64,
}

impl PoreWall {
    /// Wall potential over `geometry` with stiffness `k_wall` for beads of
    /// radius `bead_radius`.
    pub fn new(geometry: PoreGeometry, k_wall: f64, bead_radius: f64) -> Self {
        assert!(k_wall > 0.0 && bead_radius >= 0.0);
        PoreWall {
            geometry,
            k_wall,
            bead_radius,
        }
    }

    /// The wrapped geometry.
    pub fn geometry(&self) -> &PoreGeometry {
        &self.geometry
    }
}

impl ExternalPotential for PoreWall {
    fn energy_force(&self, p: Vec3, _species: SpeciesId) -> (f64, Vec3) {
        let r_lumen = self.geometry.radius(p.z);
        if !r_lumen.is_finite() {
            return (0.0, Vec3::zero());
        }
        let allowed = (r_lumen - self.bead_radius).max(0.1);
        let rho = p.rho();
        if rho <= allowed {
            return (0.0, Vec3::zero());
        }
        let d = rho - allowed;
        let e = self.k_wall * d * d;
        // ∂U/∂ρ = 2 k d ;  ∂U/∂z = -2 k d · d(allowed)/dz = -2 k d r'(z)
        let inv_rho = 1.0 / rho;
        let dr_dz = self.geometry.radius_gradient(p.z);
        let f_rho = -2.0 * self.k_wall * d;
        let f_z = 2.0 * self.k_wall * d * dr_dz;
        (
            e,
            Vec3::new(f_rho * p.x * inv_rho, f_rho * p.y * inv_rho, f_z),
        )
    }

    fn name(&self) -> &str {
        "pore-wall"
    }
}

/// A charged ring at the constriction, screened Debye–Hückel.
///
/// The potential of a uniformly charged ring of radius R at height z₀ is
/// approximated by the screened interaction with the *closest point* of
/// the ring; at lumen scales (ρ < R, |z − z₀| small) the closest-point
/// distance `d = √((R − ρ)² + (z − z₀)²)` dominates the screened sum, so
/// the approximation preserves barrier location and scale.
#[derive(Debug, Clone, Copy)]
pub struct ConstrictionRing {
    /// Ring radius (Å).
    pub radius: f64,
    /// Ring height z₀ (Å).
    pub z0: f64,
    /// Total ring charge (e).
    pub charge: f64,
    /// Debye screening length (Å).
    pub lambda: f64,
    /// Relative dielectric constant.
    pub epsilon_r: f64,
    /// Charge (e) assigned to each bead of [`SPECIES_DNA`]; other species
    /// are unaffected. (The builder passes the bead charge explicitly so
    /// the ring does not need system charge arrays.)
    pub bead_charge: f64,
    /// Short-distance regularization (Å) to avoid the 1/d singularity.
    pub softening: f64,
}

impl ExternalPotential for ConstrictionRing {
    fn energy_force(&self, p: Vec3, species: SpeciesId) -> (f64, Vec3) {
        // spice-lint: allow(N002) exact-zero charge is the "electrostatics disabled" sentinel
        if species != SPECIES_DNA || self.bead_charge == 0.0 {
            return (0.0, Vec3::zero());
        }
        let rho = p.rho();
        let dr = self.radius - rho;
        let dz = p.z - self.z0;
        let d2 = dr * dr + dz * dz + self.softening * self.softening;
        let d = d2.sqrt();
        let pref = COULOMB_KCAL * self.charge * self.bead_charge / self.epsilon_r;
        let screen = (-d / self.lambda).exp();
        let e = pref * screen / d;
        // dU/dd = -pref·screen (1/d² + 1/(λ d))
        let du_dd = -pref * screen * (1.0 / d2 + 1.0 / (self.lambda * d));
        // d(d)/dρ = -dr/d ; d(d)/dz = dz/d
        let du_drho = du_dd * (-dr / d);
        let du_dz = du_dd * (dz / d);
        let inv_rho = if rho > 1e-9 { 1.0 / rho } else { 0.0 };
        (
            e,
            Vec3::new(-du_drho * p.x * inv_rho, -du_drho * p.y * inv_rho, -du_dz),
        )
    }

    fn name(&self) -> &str {
        "constriction-ring"
    }
}

/// Base-scale axial corrugation of the pore interior.
///
/// The hemolysin β-barrel presents the translocating strand with
/// nucleotide-scale (a few Å) energetic features — side-chain ridges and
/// binding sub-sites. A pulling spring of stiffness κ lets the strand
/// coordinate fluctuate by σ = √(kT/κ); springs softer than the feature
/// scale (the paper's κ = 10 pN/Å → σ ≈ 2 Å) thermally smear these
/// features out of the measured PMF, which is precisely §IV-B's "large
/// variation in the space sampled" failure mode.
///
/// `U(z) = A · env(z) · sin(2π z / p)` for DNA beads inside the barrel,
/// with a smoothstep envelope at both ends.
#[derive(Debug, Clone, Copy)]
pub struct AxialCorrugation {
    /// Feature amplitude per bead (kcal/mol).
    pub amplitude: f64,
    /// Axial period (Å) — nucleotide-scale.
    pub period: f64,
    /// Corrugated region start (Å).
    pub z_lo: f64,
    /// Corrugated region end (Å).
    pub z_hi: f64,
    /// Envelope ramp width (Å).
    pub ramp: f64,
}

impl AxialCorrugation {
    fn envelope(&self, z: f64) -> (f64, f64) {
        // Smoothstep up over [z_lo, z_lo+ramp], down over [z_hi-ramp, z_hi].
        if z <= self.z_lo || z >= self.z_hi {
            return (0.0, 0.0);
        }
        let smooth = |t: f64| {
            let t = t.clamp(0.0, 1.0);
            (t * t * (3.0 - 2.0 * t), 6.0 * t * (1.0 - t))
        };
        if z < self.z_lo + self.ramp {
            let t = (z - self.z_lo) / self.ramp;
            let (e, de) = smooth(t);
            (e, de / self.ramp)
        } else if z > self.z_hi - self.ramp {
            let t = (self.z_hi - z) / self.ramp;
            let (e, de) = smooth(t);
            (e, -de / self.ramp)
        } else {
            (1.0, 0.0)
        }
    }
}

impl ExternalPotential for AxialCorrugation {
    fn energy_force(&self, p: Vec3, species: SpeciesId) -> (f64, Vec3) {
        if species != SPECIES_DNA {
            return (0.0, Vec3::zero());
        }
        let (env, denv) = self.envelope(p.z);
        // spice-lint: allow(N002) exact-zero envelope sentinel: force-free region
        if env == 0.0 && denv == 0.0 {
            return (0.0, Vec3::zero());
        }
        let w = 2.0 * std::f64::consts::PI / self.period;
        let s = (w * p.z).sin();
        let c = (w * p.z).cos();
        let e = self.amplitude * env * s;
        let du_dz = self.amplitude * (denv * s + env * w * c);
        (e, Vec3::new(0.0, 0.0, -du_dz))
    }

    fn name(&self) -> &str {
        "axial-corrugation"
    }
}

/// Lipid-bilayer exclusion: beads may not occupy the membrane slab outside
/// the pore lumen.
#[derive(Debug, Clone)]
pub struct MembraneSlab {
    geometry: PoreGeometry,
    /// Exclusion stiffness (kcal mol⁻¹ Å⁻²).
    pub k: f64,
}

impl MembraneSlab {
    /// Membrane exclusion over the barrel span of `geometry`.
    pub fn new(geometry: PoreGeometry, k: f64) -> Self {
        assert!(k > 0.0);
        MembraneSlab { geometry, k }
    }
}

impl ExternalPotential for MembraneSlab {
    fn energy_force(&self, p: Vec3, _species: SpeciesId) -> (f64, Vec3) {
        if !self.geometry.in_membrane_span(p.z) {
            return (0.0, Vec3::zero());
        }
        let r_lumen = self.geometry.radius(p.z);
        let rho = p.rho();
        // Outside the lumen wall but inside the membrane: push back down/up
        // along z to the nearest face AND inward. We implement the z-face
        // penalty (dominant for beads wandering over the lipid headgroups).
        if rho <= r_lumen + 2.0 {
            return (0.0, Vec3::zero());
        }
        // Penetration depth from the nearest membrane face; U = k d²
        // ejects the bead through that face.
        let d_lo = p.z - self.geometry.barrel_lo;
        let d_hi = self.geometry.barrel_hi - p.z;
        let (d, out_dir) = if d_lo < d_hi {
            (d_lo, -1.0)
        } else {
            (d_hi, 1.0)
        };
        let e = self.k * d * d;
        (e, Vec3::new(0.0, 0.0, 2.0 * self.k * d * out_dir))
    }

    fn name(&self) -> &str {
        "membrane-slab"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> PoreGeometry {
        PoreGeometry::alpha_hemolysin()
    }

    #[test]
    fn wall_inert_on_axis() {
        let w = PoreWall::new(geom(), 10.0, 3.0);
        let (e, f) = w.energy_force(Vec3::new(0.0, 0.0, 25.0), SPECIES_DNA);
        assert_eq!(e, 0.0);
        assert_eq!(f, Vec3::zero());
    }

    #[test]
    fn wall_pushes_back_radially() {
        let w = PoreWall::new(geom(), 10.0, 3.0);
        // Barrel radius ~8, bead radius 3 → allowed ~5 (±corrugation).
        let (e, f) = w.energy_force(Vec3::new(7.5, 0.0, 25.0), SPECIES_DNA);
        assert!(e > 0.0);
        assert!(f.x < 0.0, "radial restoring force");
    }

    #[test]
    fn wall_inert_in_bulk() {
        let w = PoreWall::new(geom(), 10.0, 3.0);
        let (e, f) = w.energy_force(Vec3::new(50.0, 0.0, 120.0), SPECIES_DNA);
        assert_eq!(e, 0.0);
        assert_eq!(f, Vec3::zero());
    }

    #[test]
    fn wall_force_matches_numeric_gradient() {
        let w = PoreWall::new(geom(), 5.0, 3.0);
        let h = 1e-6;
        // Point pressed into the wall inside the constriction region.
        for p in [
            Vec3::new(2.5, 0.5, 53.0),
            Vec3::new(6.0, 1.0, 25.0),
            Vec3::new(0.0, 12.0, 75.0),
        ] {
            let (_, f) = w.energy_force(p, SPECIES_DNA);
            for ax in 0..3 {
                let mut pp = p;
                let mut pm = p;
                match ax {
                    0 => {
                        pp.x += h;
                        pm.x -= h;
                    }
                    1 => {
                        pp.y += h;
                        pm.y -= h;
                    }
                    _ => {
                        pp.z += h;
                        pm.z -= h;
                    }
                }
                let num = -(w.energy_force(pp, SPECIES_DNA).0 - w.energy_force(pm, SPECIES_DNA).0)
                    / (2.0 * h);
                let ana = [f.x, f.y, f.z][ax];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "p={p:?} ax={ax}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn constriction_creates_axial_barrier_for_like_charge() {
        // Negative ring, negative DNA: energy peaks at the ring height.
        let ring = ConstrictionRing {
            radius: 4.5,
            z0: 53.0,
            charge: -7.0,
            lambda: 3.0,
            epsilon_r: 80.0,
            bead_charge: -1.0,
            softening: 1.0,
        };
        let e_at = ring.energy_force(Vec3::new(0.0, 0.0, 53.0), SPECIES_DNA).0;
        let e_away = ring.energy_force(Vec3::new(0.0, 0.0, 70.0), SPECIES_DNA).0;
        assert!(e_at > 0.0, "like charges repel: {e_at}");
        assert!(
            e_at > 10.0 * e_away.abs().max(1e-6),
            "barrier localized: {e_at} vs {e_away}"
        );
    }

    #[test]
    fn ring_ignores_non_dna_species() {
        let ring = ConstrictionRing {
            radius: 4.5,
            z0: 53.0,
            charge: -7.0,
            lambda: 3.0,
            epsilon_r: 80.0,
            bead_charge: -1.0,
            softening: 1.0,
        };
        let (e, f) = ring.energy_force(Vec3::new(0.0, 0.0, 53.0), 0);
        assert_eq!(e, 0.0);
        assert_eq!(f, Vec3::zero());
    }

    #[test]
    fn ring_force_matches_numeric_gradient() {
        let ring = ConstrictionRing {
            radius: 4.5,
            z0: 53.0,
            charge: -7.0,
            lambda: 3.0,
            epsilon_r: 80.0,
            bead_charge: -1.0,
            softening: 1.0,
        };
        let h = 1e-6;
        for p in [Vec3::new(1.0, 0.7, 52.0), Vec3::new(2.0, -1.0, 55.0)] {
            let (_, f) = ring.energy_force(p, SPECIES_DNA);
            for ax in 0..3 {
                let mut pp = p;
                let mut pm = p;
                match ax {
                    0 => {
                        pp.x += h;
                        pm.x -= h;
                    }
                    1 => {
                        pp.y += h;
                        pm.y -= h;
                    }
                    _ => {
                        pp.z += h;
                        pm.z -= h;
                    }
                }
                let num = -(ring.energy_force(pp, SPECIES_DNA).0
                    - ring.energy_force(pm, SPECIES_DNA).0)
                    / (2.0 * h);
                let ana = [f.x, f.y, f.z][ax];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + ana.abs()),
                    "p={p:?} ax={ax}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn corrugation_periodic_inside_region() {
        let c = AxialCorrugation {
            amplitude: 2.0,
            period: 6.0,
            z_lo: 10.0,
            z_hi: 50.0,
            ramp: 3.0,
        };
        // Inside the plateau, |U| reaches the amplitude.
        let peak = (0..200)
            .map(|i| {
                c.energy_force(Vec3::new(0.0, 0.0, 20.0 + i as f64 * 0.1), SPECIES_DNA)
                    .0
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((peak - 2.0).abs() < 0.05, "peak {peak}");
        // Outside: inert.
        assert_eq!(
            c.energy_force(Vec3::new(0.0, 0.0, 60.0), SPECIES_DNA).0,
            0.0
        );
        assert_eq!(c.energy_force(Vec3::new(0.0, 0.0, 20.0), 0).0, 0.0);
    }

    #[test]
    fn corrugation_force_matches_numeric_gradient() {
        let c = AxialCorrugation {
            amplitude: 2.0,
            period: 6.0,
            z_lo: 10.0,
            z_hi: 50.0,
            ramp: 3.0,
        };
        let h = 1e-6;
        for z in [11.0, 12.5, 25.0, 47.7, 49.5] {
            let p = Vec3::new(0.3, -0.2, z);
            let (_, f) = c.energy_force(p, SPECIES_DNA);
            let ep = c.energy_force(Vec3::new(0.3, -0.2, z + h), SPECIES_DNA).0;
            let em = c.energy_force(Vec3::new(0.3, -0.2, z - h), SPECIES_DNA).0;
            let num = -(ep - em) / (2.0 * h);
            assert!(
                (num - f.z).abs() < 1e-4 * (1.0 + f.z.abs()),
                "z={z}: {num} vs {}",
                f.z
            );
        }
    }

    #[test]
    fn membrane_inert_inside_lumen_and_outside_span() {
        let m = MembraneSlab::new(geom(), 20.0);
        assert_eq!(
            m.energy_force(Vec3::new(0.0, 0.0, 25.0), SPECIES_DNA).0,
            0.0
        );
        assert_eq!(
            m.energy_force(Vec3::new(50.0, 0.0, 75.0), SPECIES_DNA).0,
            0.0
        );
    }

    #[test]
    fn membrane_penalizes_lipid_region() {
        let m = MembraneSlab::new(geom(), 20.0);
        let (e, _) = m.energy_force(Vec3::new(30.0, 0.0, 25.0), SPECIES_DNA);
        assert!(e > 0.0, "bead in lipid must be penalized");
    }
}
