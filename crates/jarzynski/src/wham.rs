//! WHAM — the Weighted Histogram Analysis Method over umbrella windows.
//!
//! The TI extension (§VI) integrates mean forces; WHAM instead combines
//! the *position histograms* of the same umbrella windows into an
//! unbiased PMF by self-consistent reweighting. Having both closes the
//! methodological triangle JE ↔ TI ↔ WHAM on identical window data, and
//! WHAM uses strictly more of the information each window collects.
//!
//! Standard equations (Kumar et al. 1992), for windows k with harmonic
//! biases `U_k(x) = κ/2 (x − x_k)²`, N_k samples each:
//!
//! ```text
//! P(x) = Σ_k n_k(x)  /  Σ_k N_k exp[(f_k − U_k(x))/kT]
//! exp(−f_k/kT) = Σ_x P(x) exp(−U_k(x)/kT) Δx
//! ```
//!
//! iterated to convergence; Φ(x) = −kT ln P(x) up to a constant.

use spice_stats::Histogram;

/// One umbrella window's data.
#[derive(Debug, Clone)]
pub struct UmbrellaWindow {
    /// Bias center x_k.
    pub center: f64,
    /// Bias spring constant κ (energy/length², `U = κ/2 (x−c)²`).
    pub kappa: f64,
    /// Sampled reaction-coordinate values.
    pub samples: Vec<f64>,
}

/// WHAM solver output.
#[derive(Debug, Clone)]
pub struct WhamResult {
    /// (x, Φ) profile, gauged to min Φ = 0, over bins with any samples.
    pub profile: Vec<(f64, f64)>,
    /// Converged per-window free energies f_k.
    pub window_f: Vec<f64>,
    /// Iterations used.
    pub iterations: u32,
    /// Max |Δf_k| at exit.
    pub residual: f64,
}

/// Solve WHAM on a uniform grid of `nbins` over `[lo, hi)`.
///
/// # Panics
/// Panics on empty windows, non-positive kT, or a degenerate grid.
pub fn wham(
    windows: &[UmbrellaWindow],
    lo: f64,
    hi: f64,
    nbins: usize,
    kt: f64,
    max_iter: u32,
    tol: f64,
) -> WhamResult {
    assert!(!windows.is_empty(), "WHAM needs at least one window");
    assert!(kt > 0.0 && hi > lo && nbins >= 2);
    for w in windows {
        assert!(
            !w.samples.is_empty(),
            "window at {} has no samples",
            w.center
        );
    }
    let nw = windows.len();
    let width = (hi - lo) / nbins as f64;

    // Histograms per window and totals.
    let mut hists: Vec<Histogram> = Vec::with_capacity(nw);
    for w in windows {
        let mut h = Histogram::new(lo, hi, nbins);
        h.extend(&w.samples);
        hists.push(h);
    }
    for (h, w) in hists.iter().zip(windows) {
        assert!(
            h.total_in_range() > 0,
            "window at {} has no samples inside the [{lo}, {hi}) grid — misconfigured range",
            w.center
        );
    }
    let n_k: Vec<f64> = hists.iter().map(|h| h.total_in_range() as f64).collect();
    // Total counts per bin.
    let counts: Vec<f64> = (0..nbins)
        .map(|b| hists.iter().map(|h| h.count(b) as f64).sum())
        .collect();
    // Bias energies U_k(x_bin), precomputed.
    let centers: Vec<f64> = (0..nbins).map(|b| lo + (b as f64 + 0.5) * width).collect();
    let bias: Vec<Vec<f64>> = windows
        .iter()
        .map(|w| {
            centers
                .iter()
                .map(|&x| 0.5 * w.kappa * (x - w.center) * (x - w.center))
                .collect()
        })
        .collect();

    let mut f = vec![0.0f64; nw];
    let mut p = vec![0.0f64; nbins];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    while iterations < max_iter {
        // P(x) update.
        for b in 0..nbins {
            // spice-lint: allow(N002) exact-zero count marks an empty histogram bin
            if counts[b] == 0.0 {
                p[b] = 0.0;
                continue;
            }
            let denom: f64 = (0..nw)
                .map(|k| n_k[k] * ((f[k] - bias[k][b]) / kt).exp())
                .sum();
            p[b] = counts[b] / denom.max(1e-300);
        }
        // f_k update. Gauge first (f is only determined up to a shared
        // constant — pin f_0 = 0), THEN measure the residual; comparing
        // un-gauged values would report the drifting gauge constant as a
        // spurious non-convergence.
        let mut new_f: Vec<f64> = (0..nw)
            .map(|k| {
                let z: f64 = (0..nbins)
                    .map(|b| p[b] * (-bias[k][b] / kt).exp() * width)
                    .sum();
                -kt * z.max(1e-300).ln()
            })
            .collect();
        let f0 = new_f[0];
        for fk in &mut new_f {
            *fk -= f0;
        }
        residual = f
            .iter()
            .zip(&new_f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        f = new_f;
        iterations += 1;
        if residual < tol {
            break;
        }
    }

    // Profile over populated bins, gauged to min = 0.
    let mut profile: Vec<(f64, f64)> = (0..nbins)
        .filter(|&b| p[b] > 0.0)
        .map(|b| (centers[b], -kt * p[b].ln()))
        .collect();
    if let Some(min) = profile.iter().map(|&(_, phi)| phi).min_by(f64::total_cmp) {
        for (_, phi) in &mut profile {
            *phi -= min;
        }
    }
    WhamResult {
        profile,
        window_f: f,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::rng::GaussianStream;
    use spice_md::units::KT_300;

    /// Exact umbrella sampling of U0 = a x² with bias κ/2 (x−c)²: the
    /// combined potential is Gaussian with variance kT/(2a+κ) and mean
    /// κc/(2a+κ).
    fn synthetic_windows(a: f64, kappa: f64, centers: &[f64], n: usize) -> Vec<UmbrellaWindow> {
        let g = GaussianStream::new(99);
        centers
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let var = KT_300 / (2.0 * a + kappa);
                let mean = kappa * c / (2.0 * a + kappa);
                UmbrellaWindow {
                    center: c,
                    kappa,
                    samples: (0..n)
                        .map(|i| mean + var.sqrt() * g.sample(k as u64, i as u64))
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn recovers_harmonic_pmf() {
        let a = 0.8;
        let centers: Vec<f64> = (0..9).map(|i| -2.0 + 0.5 * i as f64).collect();
        let windows = synthetic_windows(a, 8.0, &centers, 20_000);
        let r = wham(&windows, -2.8, 2.8, 56, KT_300, 2_000, 1e-10);
        assert!(r.residual < 1e-8, "not converged: {}", r.residual);
        // Compare against a·x² (both gauged to min 0 at x=0).
        for &(x, phi) in &r.profile {
            if x.abs() > 2.2 {
                continue; // sparse tails
            }
            let expected = a * x * x;
            assert!(
                (phi - expected).abs() < 0.15 + 0.05 * expected,
                "Φ({x:.2}) = {phi:.3} vs {expected:.3}"
            );
        }
    }

    #[test]
    fn window_free_energies_are_gauged() {
        let windows = synthetic_windows(0.5, 5.0, &[-1.0, 0.0, 1.0], 5_000);
        let r = wham(&windows, -2.0, 2.0, 32, KT_300, 1_000, 1e-9);
        assert_eq!(r.window_f[0], 0.0, "f_0 pinned to zero");
        assert_eq!(r.window_f.len(), 3);
    }

    #[test]
    fn single_window_reduces_to_reweighted_histogram() {
        let a = 1.0;
        let windows = synthetic_windows(a, 4.0, &[0.0], 50_000);
        let r = wham(&windows, -1.5, 1.5, 30, KT_300, 500, 1e-10);
        for &(x, phi) in &r.profile {
            if x.abs() > 1.0 {
                continue;
            }
            assert!(
                (phi - a * x * x).abs() < 0.15,
                "Φ({x:.2}) = {phi:.3} vs {:.3}",
                a * x * x
            );
        }
    }

    #[test]
    fn deterministic() {
        let windows = synthetic_windows(0.5, 5.0, &[0.0, 1.0], 2_000);
        let a = wham(&windows, -1.0, 2.0, 24, KT_300, 200, 1e-8);
        let b = wham(&windows, -1.0, 2.0, 24, KT_300, 200, 1e-8);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    #[should_panic(expected = "inside the")]
    fn out_of_range_window_rejected() {
        let w = UmbrellaWindow {
            center: 100.0,
            kappa: 1.0,
            samples: vec![100.0, 101.0],
        };
        wham(&[w], -1.0, 1.0, 10, KT_300, 10, 1e-6);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_window_rejected() {
        let w = UmbrellaWindow {
            center: 0.0,
            kappa: 1.0,
            samples: vec![],
        };
        wham(&[w], -1.0, 1.0, 10, KT_300, 10, 1e-6);
    }
}
