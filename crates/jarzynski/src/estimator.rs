//! Free-energy estimators from non-equilibrium work samples.

use spice_stats::log_mean_exp;

/// The Jarzynski exponential-average estimator:
/// `ΔF = −kT ln ⟨exp(−W/kT)⟩`.
///
/// Numerically stabilized via log-sum-exp; returns `NaN` for an empty
/// sample.
pub fn jarzynski_free_energy(works: &[f64], kt: f64) -> f64 {
    assert!(kt > 0.0, "kT must be positive");
    if works.is_empty() {
        return f64::NAN;
    }
    let scaled: Vec<f64> = works.iter().map(|&w| -w / kt).collect();
    -kt * log_mean_exp(&scaled)
}

/// Second-order cumulant approximation:
/// `ΔF ≈ ⟨W⟩ − Var(W) / (2 kT)` — exact for Gaussian work distributions
/// (the stiff-spring / linear-response regime; Park et al. 2003, the
/// paper's Ref. [10]).
pub fn cumulant_free_energy(works: &[f64], kt: f64) -> f64 {
    assert!(kt > 0.0, "kT must be positive");
    if works.len() < 2 {
        return f64::NAN;
    }
    spice_stats::mean(works) - spice_stats::variance(works) / (2.0 * kt)
}

/// Mean work — an upper bound on ΔF by the second law; its excess over
/// ΔF is the dissipated work driving §IV-C's systematic error.
pub fn mean_work(works: &[f64]) -> f64 {
    spice_stats::mean(works)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::units::KT_300;
    use spice_stats::rng::seed_stream;

    /// Deterministic synthetic Gaussian work sample.
    fn gaussian_works(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let g = spice_md::rng::GaussianStream::new(seed);
        (0..n).map(|i| mu + sigma * g.sample(i as u64, 0)).collect()
    }

    #[test]
    fn gaussian_work_has_closed_form() {
        // W ~ N(μ, σ²) ⇒ ΔF = μ − σ²/(2kT) exactly.
        let (mu, sigma) = (5.0, 0.8);
        let works = gaussian_works(200_000, mu, sigma, 3);
        let expected = mu - sigma * sigma / (2.0 * KT_300);
        let je = jarzynski_free_energy(&works, KT_300);
        assert!(
            (je - expected).abs() < 0.05,
            "JE {je} vs closed form {expected}"
        );
        let cum = cumulant_free_energy(&works, KT_300);
        assert!(
            (cum - expected).abs() < 0.02,
            "cumulant {cum} vs closed form {expected}"
        );
    }

    #[test]
    fn je_below_mean_work() {
        // Jensen: ΔF_JE ≤ ⟨W⟩ for any distribution with spread.
        let works = gaussian_works(10_000, 2.0, 1.0, 9);
        assert!(jarzynski_free_energy(&works, KT_300) < mean_work(&works));
    }

    #[test]
    fn zero_dissipation_limit() {
        // All works equal (adiabatic limit): ΔF = W exactly, all three
        // estimators coincide.
        let works = vec![3.2; 50];
        assert!((jarzynski_free_energy(&works, KT_300) - 3.2).abs() < 1e-10);
        assert!((cumulant_free_energy(&works, KT_300) - 3.2).abs() < 1e-10);
        assert!((mean_work(&works) - 3.2).abs() < 1e-12);
    }

    #[test]
    fn survives_large_work_values() {
        // Hundreds of kT — naive exp() would underflow to 0.
        let works = vec![300.0, 310.0, 295.0];
        let je = jarzynski_free_energy(&works, KT_300);
        assert!(je.is_finite());
        // Dominated by the smallest work value, up to kT·ln 3 from the
        // 1/n normalization.
        assert!((je - 295.0).abs() < 1.0, "je = {je}");
    }

    #[test]
    fn single_sample_je_is_that_work() {
        assert!((jarzynski_free_energy(&[7.5], KT_300) - 7.5).abs() < 1e-10);
        assert!(cumulant_free_energy(&[7.5], KT_300).is_nan());
    }

    #[test]
    fn empty_sample_is_nan() {
        assert!(jarzynski_free_energy(&[], KT_300).is_nan());
    }

    #[test]
    fn negative_work_supported() {
        // Downhill pulls do negative work; ΔF must come out negative.
        let works = gaussian_works(50_000, -4.0, 0.5, 11);
        let je = jarzynski_free_energy(&works, KT_300);
        let expected = -4.0 - 0.25 / (2.0 * KT_300);
        assert!((je - expected).abs() < 0.05, "JE {je} vs {expected}");
    }

    #[test]
    fn estimator_bias_shrinks_with_sample_size() {
        // Finite-N JE is biased high; the bias must decrease with N.
        let (mu, sigma) = (0.0, 2.0);
        let expected = mu - sigma * sigma / (2.0 * KT_300);
        let bias = |n: usize| {
            // Average bias over many independent small ensembles.
            let mut total = 0.0;
            let reps = 200;
            for r in 0..reps {
                let works = gaussian_works(n, mu, sigma, seed_stream(77, r));
                total += jarzynski_free_energy(&works, KT_300) - expected;
            }
            total / reps as f64
        };
        let b_small = bias(8);
        let b_large = bias(512);
        assert!(
            b_small > b_large + 0.05,
            "bias must shrink with N: N=8 → {b_small}, N=512 → {b_large}"
        );
        assert!(b_small > 0.0, "JE bias is positive (overestimates ΔF)");
    }
}
