//! PMF assembly: from work-trajectory ensembles to Φ(s) curves.
//!
//! The Fig. 4 pipeline: interpolate each realization's accumulated work
//! onto a common displacement grid, apply the Jarzynski estimator per
//! grid point, and attach per-point sample statistics. The x-axis follows
//! the paper: "displacement of COM" — reported as the ensemble-mean COM
//! displacement at each guide position (for stiff springs the two nearly
//! coincide).

use crate::estimator::{cumulant_free_energy, jarzynski_free_energy, mean_work};
use serde::{Deserialize, Serialize};
use spice_smd::WorkTrajectory;

/// Estimator used for a PMF curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Estimator {
    /// Exponential average (exact in principle, biased for finite N).
    Jarzynski,
    /// Second-order cumulant (exact for Gaussian work).
    Cumulant,
    /// Mean work (upper bound; the "irreversible work" curve).
    MeanWork,
}

/// One grid point of a PMF curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct PmfPoint {
    /// Guide displacement λ (Å).
    pub guide_disp: f64,
    /// Ensemble-mean COM displacement at this guide position (Å) — the
    /// Fig. 4 x-axis.
    pub com_disp: f64,
    /// Free-energy estimate Φ (kcal/mol), gauge Φ(0) = 0.
    pub phi: f64,
    /// Number of realizations contributing.
    pub n: usize,
    /// Mean work at this point (kcal/mol) — Φ plus dissipation.
    pub mean_work: f64,
}

/// A PMF curve over a displacement grid.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PmfCurve {
    /// Spring constant of the ensemble (pN/Å).
    pub kappa_pn_per_a: f64,
    /// Pulling velocity of the ensemble (Å/ns).
    pub v_a_per_ns: f64,
    /// Estimator used.
    pub estimator: Estimator,
    /// Grid points ordered by displacement.
    pub points: Vec<PmfPoint>,
}

impl PmfCurve {
    /// Estimate the PMF from an ensemble of trajectories on a uniform
    /// grid of `npoints` over `[0, span]` of guide displacement.
    ///
    /// `kt` is the thermal energy (kcal/mol). Trajectories that do not
    /// cover a grid point simply do not contribute there.
    ///
    /// # Panics
    /// Panics on an empty ensemble or non-positive grid.
    pub fn estimate(
        trajectories: &[WorkTrajectory],
        span: f64,
        npoints: usize,
        kt: f64,
        estimator: Estimator,
    ) -> PmfCurve {
        assert!(!trajectories.is_empty(), "need at least one trajectory");
        assert!(span > 0.0 && npoints >= 2, "degenerate PMF grid");
        let kappa = trajectories[0].kappa_pn_per_a;
        let v = trajectories[0].v_a_per_ns;
        let sign = v.signum();
        let mut points = Vec::with_capacity(npoints);
        let mut works = Vec::with_capacity(trajectories.len());
        let mut coms = Vec::with_capacity(trajectories.len());
        for k in 0..npoints {
            let s = sign * span * k as f64 / (npoints - 1) as f64;
            works.clear();
            coms.clear();
            for t in trajectories {
                if let Some(w) = t.work_at(s) {
                    works.push(w);
                    if let Some(c) = t.com_at(s) {
                        coms.push(c);
                    }
                }
            }
            if works.is_empty() {
                continue;
            }
            let phi = match estimator {
                Estimator::Jarzynski => jarzynski_free_energy(&works, kt),
                Estimator::Cumulant => {
                    if works.len() >= 2 {
                        cumulant_free_energy(&works, kt)
                    } else {
                        works[0]
                    }
                }
                Estimator::MeanWork => mean_work(&works),
            };
            points.push(PmfPoint {
                guide_disp: s,
                com_disp: spice_stats::mean(&coms),
                phi,
                n: works.len(),
                mean_work: mean_work(&works),
            });
        }
        // Gauge: Φ(0) = 0. Equilibration noise can leave a tiny non-zero
        // work at the first grid point; subtract it consistently from both
        // the free energy and the mean work so dissipation is unaffected.
        if let Some(first) = points.first().copied() {
            for p in &mut points {
                p.phi -= first.phi;
                p.mean_work -= first.mean_work;
                p.com_disp -= first.com_disp;
            }
        }
        PmfCurve {
            kappa_pn_per_a: kappa,
            v_a_per_ns: v,
            estimator,
            points,
        }
    }

    /// Φ interpolated at guide displacement `s`; `None` outside the grid.
    pub fn phi_at(&self, s: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let sign = self.v_a_per_ns.signum();
        let key = |p: &PmfPoint| p.guide_disp * sign;
        let target = s * sign;
        let last = self.points.last().expect("points non-empty: checked above");
        if target < key(&self.points[0]) - 1e-9 || target > key(last) + 1e-9 {
            return None;
        }
        let mut prev = &self.points[0];
        for cur in &self.points[1..] {
            if key(cur) >= target {
                let span = key(cur) - key(prev);
                if span <= 0.0 {
                    return Some(cur.phi);
                }
                let w = (target - key(prev)) / span;
                return Some(prev.phi * (1.0 - w) + cur.phi * w);
            }
            prev = cur;
        }
        Some(last.phi)
    }

    /// Largest |Φ| over the grid (scale of the profile).
    pub fn max_abs_phi(&self) -> f64 {
        self.points.iter().map(|p| p.phi.abs()).fold(0.0, f64::max)
    }

    /// RMS deviation from another curve over their common grid (requires
    /// identical grids; use for same-sweep comparisons).
    pub fn rms_difference(&self, other: &PmfCurve) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for p in &self.points {
            if let Some(q) = other.phi_at(p.guide_disp) {
                sum += (p.phi - q) * (p.phi - q);
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            (sum / n as f64).sqrt()
        }
    }

    /// Stitch sub-trajectory PMF segments into one long profile: each
    /// segment's Φ is shifted so it starts where the previous ended
    /// (§IV-A's decomposition; free energy is a state function so offsets
    /// add).
    pub fn stitch(segments: &[PmfCurve]) -> PmfCurve {
        assert!(!segments.is_empty(), "nothing to stitch");
        let mut points = Vec::new();
        let mut offset_s = 0.0;
        let mut offset_phi = 0.0;
        for seg in segments {
            for p in &seg.points {
                points.push(PmfPoint {
                    guide_disp: offset_s + p.guide_disp,
                    com_disp: offset_s + p.com_disp,
                    phi: offset_phi + p.phi,
                    n: p.n,
                    mean_work: offset_phi + p.mean_work,
                });
            }
            if let Some(last) = seg.points.last() {
                offset_s += last.guide_disp;
                offset_phi += last.phi;
            }
        }
        PmfCurve {
            kappa_pn_per_a: segments[0].kappa_pn_per_a,
            v_a_per_ns: segments[0].v_a_per_ns,
            estimator: segments[0].estimator,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::units::KT_300;
    use spice_smd::WorkSample;

    /// Synthetic ensemble: work = φ(s) + Gaussian(0, σ) per realization,
    /// with φ(s) = 2 s (linear PMF).
    fn synthetic_ensemble(n: usize, sigma: f64) -> Vec<WorkTrajectory> {
        let g = spice_md::rng::GaussianStream::new(42);
        (0..n)
            .map(|r| {
                // One noise draw per realization per point, correlated along
                // s like real accumulated work (use a running sum).
                let mut acc = 0.0;
                WorkTrajectory {
                    kappa_pn_per_a: 100.0,
                    v_a_per_ns: 12.5,
                    seed: r as u64,
                    samples: (0..=100)
                        .map(|i| {
                            let s = i as f64 * 0.1;
                            acc += sigma * g.sample(r as u64, i) * 0.1;
                            WorkSample {
                                t_ps: s,
                                guide_disp: s,
                                com_disp: s,
                                work: 2.0 * s + acc,
                                force: 2.0,
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn recovers_linear_pmf() {
        let ens = synthetic_ensemble(64, 0.3);
        let pmf = PmfCurve::estimate(&ens, 10.0, 21, KT_300, Estimator::Jarzynski);
        assert_eq!(pmf.points.len(), 21);
        for p in &pmf.points {
            assert!(
                (p.phi - 2.0 * p.guide_disp).abs() < 0.35,
                "phi({}) = {} should be ~{}",
                p.guide_disp,
                p.phi,
                2.0 * p.guide_disp
            );
            assert_eq!(p.n, 64);
        }
    }

    #[test]
    fn gauge_starts_at_zero() {
        let ens = synthetic_ensemble(16, 0.2);
        let pmf = PmfCurve::estimate(&ens, 10.0, 11, KT_300, Estimator::Jarzynski);
        assert!(pmf.points[0].phi.abs() < 1e-9);
    }

    #[test]
    fn mean_work_estimator_upper_bounds_je() {
        let ens = synthetic_ensemble(64, 1.0);
        let je = PmfCurve::estimate(&ens, 10.0, 11, KT_300, Estimator::Jarzynski);
        let mw = PmfCurve::estimate(&ens, 10.0, 11, KT_300, Estimator::MeanWork);
        for (a, b) in je.points.iter().zip(&mw.points) {
            assert!(a.phi <= b.phi + 1e-9, "JE must not exceed mean work");
        }
    }

    #[test]
    fn phi_at_interpolates_and_bounds() {
        let ens = synthetic_ensemble(8, 0.0);
        let pmf = PmfCurve::estimate(&ens, 10.0, 11, KT_300, Estimator::Jarzynski);
        assert!((pmf.phi_at(5.0).unwrap() - 10.0).abs() < 1e-6);
        assert!((pmf.phi_at(5.5).unwrap() - 11.0).abs() < 1e-6);
        assert!(pmf.phi_at(11.0).is_none());
    }

    #[test]
    fn rms_difference_of_identical_curves_is_zero() {
        let ens = synthetic_ensemble(8, 0.0);
        let a = PmfCurve::estimate(&ens, 10.0, 11, KT_300, Estimator::Jarzynski);
        assert!(a.rms_difference(&a) < 1e-12);
    }

    #[test]
    fn stitch_concatenates_segments() {
        let ens = synthetic_ensemble(8, 0.0);
        let seg = PmfCurve::estimate(&ens, 5.0, 6, KT_300, Estimator::Jarzynski);
        let stitched = PmfCurve::stitch(&[seg.clone(), seg.clone()]);
        // Two 0..5 segments of slope 2 → continuous 0..10 with Φ(10) = 20.
        let last = stitched.points.last().unwrap();
        assert!((last.guide_disp - 10.0).abs() < 1e-9);
        assert!((last.phi - 20.0).abs() < 1e-6);
        // Monotone displacement.
        for w in stitched.points.windows(2) {
            assert!(w[1].guide_disp >= w[0].guide_disp - 1e-9);
        }
    }

    #[test]
    fn noisier_ensembles_deviate_more() {
        // Sanity: JE from high-noise ensembles deviates more from truth
        // (σ_stat mechanism of Fig. 4).
        let quiet = PmfCurve::estimate(
            &synthetic_ensemble(16, 0.1),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
        );
        let noisy = PmfCurve::estimate(
            &synthetic_ensemble(16, 3.0),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
        );
        let dev = |pmf: &PmfCurve| -> f64 {
            pmf.points
                .iter()
                .map(|p| (p.phi - 2.0 * p.guide_disp).abs())
                .fold(0.0, f64::max)
        };
        assert!(dev(&noisy) > dev(&quiet));
    }
}
