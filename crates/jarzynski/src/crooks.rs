//! Bidirectional estimators: the Crooks fluctuation theorem and the
//! Bennett acceptance ratio (BAR).
//!
//! Jarzynski's equality is the unidirectional corollary of Crooks'
//! theorem, `P_F(W) / P_R(−W) = exp((W − ΔF)/kT)`. Running the pulling
//! protocol in both directions gives two work distributions whose
//! crossing point *is* ΔF, and BAR combines them into the
//! minimum-variance estimator — the natural upgrade path for the SPICE
//! pipeline (§VI: "can be easily extended to compute free energies using
//! different approaches"), at the cost of equilibrating the far end of
//! the sub-trajectory.

use spice_stats::log_sum_exp;

/// ΔF from the crossing of forward and reverse work distributions:
/// the value `f` where `P_F(f) = P_R(−f)`, located by minimizing the
/// Crooks asymmetry over a grid between the two sample means.
///
/// Robust but statistically inferior to [`bar_free_energy`]; exposed for
/// diagnostics and teaching. Returns `NaN` on empty inputs.
pub fn crooks_crossing(forward: &[f64], reverse: &[f64], kt: f64) -> f64 {
    assert!(kt > 0.0);
    if forward.is_empty() || reverse.is_empty() {
        return f64::NAN;
    }
    // ΔF must lie between ⟨W_F⟩ and −⟨W_R⟩ (second law from both sides).
    let upper = spice_stats::mean(forward);
    let lower = -spice_stats::mean(reverse);
    if !(lower.is_finite() && upper.is_finite()) {
        return f64::NAN;
    }
    let (lo, hi) = if lower <= upper {
        (lower, upper)
    } else {
        (upper, lower)
    };
    // Minimize |BAR self-consistency residual| over a fine grid.
    let mut best = (f64::INFINITY, 0.5 * (lo + hi));
    let n = 400;
    for i in 0..=n {
        let f = lo + (hi - lo) * i as f64 / n as f64;
        let r = bar_residual(forward, reverse, f, kt);
        if r.abs() < best.0 {
            best = (r.abs(), f);
        }
    }
    best.1
}

/// The BAR self-consistency residual at trial ΔF (zero at the solution):
/// `ln Σ_F fermi((W_F − ΔF)/kT) − ln Σ_R fermi((W_R + ΔF)/kT)
///  − ln(n_F/n_R)` rearranged into log-sum-exp-stable form.
fn bar_residual(forward: &[f64], reverse: &[f64], delta_f: f64, kt: f64) -> f64 {
    let m = (forward.len() as f64 / reverse.len() as f64).ln() * kt;
    // log Σ 1/(1+exp(x)) = log Σ exp(-log(1+e^x)) — evaluate stably.
    let log_fermi_sum = |xs: &[f64]| -> f64 {
        let terms: Vec<f64> = xs
            .iter()
            .map(|&x| {
                // -ln(1 + e^x) computed without overflow
                if x > 0.0 {
                    -x - (-x).exp().ln_1p()
                } else {
                    -(x.exp().ln_1p())
                }
            })
            .collect();
        log_sum_exp(&terms)
    };
    let lf: Vec<f64> = forward.iter().map(|&w| (w - delta_f + m) / kt).collect();
    let lr: Vec<f64> = reverse.iter().map(|&w| (w + delta_f - m) / kt).collect();
    kt * (log_fermi_sum(&lf) - log_fermi_sum(&lr))
}

/// Bennett acceptance ratio: solve the self-consistency equation for ΔF
/// by bisection. `forward` holds forward works W_F, `reverse` holds the
/// *reverse-protocol* works W_R (so ΔF_reverse = −ΔF).
///
/// Returns `NaN` on empty inputs; panics on non-positive kT.
pub fn bar_free_energy(forward: &[f64], reverse: &[f64], kt: f64) -> f64 {
    assert!(kt > 0.0, "kT must be positive");
    if forward.is_empty() || reverse.is_empty() {
        return f64::NAN;
    }
    // Bracket: ΔF ∈ [−⟨W_R⟩ − pad, ⟨W_F⟩ + pad].
    let pad = 5.0 * kt + 1.0;
    let mut lo = -spice_stats::mean(reverse) - pad;
    let mut hi = spice_stats::mean(forward) + pad;
    let mut r_lo = bar_residual(forward, reverse, lo, kt);
    let r_hi = bar_residual(forward, reverse, hi, kt);
    if r_lo.signum() == r_hi.signum() {
        // Distributions barely overlap; fall back to the crossing scan.
        return crooks_crossing(forward, reverse, kt);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let r_mid = bar_residual(forward, reverse, mid, kt);
        if r_mid.abs() < 1e-12 {
            return mid;
        }
        if r_mid.signum() == r_lo.signum() {
            lo = mid;
            r_lo = r_mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Mean dissipated work of the pair of protocols:
/// `(⟨W_F⟩ + ⟨W_R⟩)/2` (zero only in the reversible limit) — a direct
/// hysteresis diagnostic.
pub fn hysteresis(forward: &[f64], reverse: &[f64]) -> f64 {
    0.5 * (spice_stats::mean(forward) + spice_stats::mean(reverse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::rng::GaussianStream;
    use spice_md::units::KT_300;

    /// Gaussian forward/reverse pair consistent with Crooks:
    /// W_F ~ N(ΔF + σ²/2kT, σ²), W_R ~ N(−ΔF + σ²/2kT, σ²).
    fn crooks_pair(delta_f: f64, sigma: f64, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let g = GaussianStream::new(seed);
        let diss = sigma * sigma / (2.0 * KT_300);
        let fwd = (0..n)
            .map(|i| delta_f + diss + sigma * g.sample(i as u64, 0))
            .collect();
        let rev = (0..n)
            .map(|i| -delta_f + diss + sigma * g.sample(i as u64, 1))
            .collect();
        (fwd, rev)
    }

    #[test]
    fn bar_recovers_delta_f_exactly_for_gaussian_pair() {
        let (fwd, rev) = crooks_pair(3.0, 1.0, 20_000, 5);
        let est = bar_free_energy(&fwd, &rev, KT_300);
        assert!((est - 3.0).abs() < 0.05, "BAR {est} vs 3.0");
    }

    #[test]
    fn crooks_crossing_close_to_bar() {
        let (fwd, rev) = crooks_pair(-2.0, 0.8, 20_000, 6);
        let bar = bar_free_energy(&fwd, &rev, KT_300);
        let crossing = crooks_crossing(&fwd, &rev, KT_300);
        assert!((bar + 2.0).abs() < 0.05, "BAR {bar}");
        assert!(
            (crossing - bar).abs() < 0.2,
            "crossing {crossing} vs BAR {bar}"
        );
    }

    #[test]
    fn bar_beats_unidirectional_je_at_high_dissipation() {
        // With σ = 3 (dissipation ≈ 7.5 kcal ≈ 12.7 kT), one-sided JE is
        // badly biased at n = 200 while BAR stays accurate.
        let truth = 1.5;
        let (fwd, rev) = crooks_pair(truth, 3.0, 200, 7);
        let je = crate::estimator::jarzynski_free_energy(&fwd, KT_300);
        let bar = bar_free_energy(&fwd, &rev, KT_300);
        assert!(
            (bar - truth).abs() < (je - truth).abs(),
            "BAR ({bar}) must beat JE ({je}) against truth {truth}"
        );
        assert!((bar - truth).abs() < 0.6, "BAR {bar} vs {truth}");
    }

    #[test]
    fn hysteresis_measures_dissipation() {
        let (fwd, rev) = crooks_pair(2.0, 1.0, 50_000, 8);
        let diss = 1.0 / (2.0 * KT_300);
        let h = hysteresis(&fwd, &rev);
        assert!((h - diss).abs() < 0.05, "hysteresis {h} vs {diss}");
    }

    #[test]
    fn zero_dissipation_limit() {
        // Deterministic reversible work: both directions give ±ΔF exactly.
        let fwd = vec![4.0; 10];
        let rev = vec![-4.0; 10];
        let bar = bar_free_energy(&fwd, &rev, KT_300);
        assert!((bar - 4.0).abs() < 1e-6, "BAR {bar}");
        assert!(hysteresis(&fwd, &rev).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_sample_sizes_supported() {
        let (fwd, _) = crooks_pair(1.0, 1.0, 8_000, 9);
        let (_, rev) = crooks_pair(1.0, 1.0, 1_000, 10);
        let bar = bar_free_energy(&fwd, &rev, KT_300);
        assert!((bar - 1.0).abs() < 0.15, "BAR {bar}");
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(bar_free_energy(&[], &[1.0], KT_300).is_nan());
        assert!(crooks_crossing(&[1.0], &[], KT_300).is_nan());
    }
}
