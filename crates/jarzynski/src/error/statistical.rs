//! Statistical error of the JE estimate, with the paper's cost
//! normalization.

use crate::pmf::{Estimator, PmfCurve};
use spice_smd::WorkTrajectory;
use spice_stats::rng::seed_stream;

/// Bootstrap standard error of the PMF at each grid point, resampling
/// whole *trajectories* (realizations are the independent unit, not
/// individual work samples).
///
/// Returns `(guide_disp, sigma)` per grid point. Deterministic under
/// `seed`.
pub fn pmf_bootstrap_sigma(
    trajectories: &[WorkTrajectory],
    span: f64,
    npoints: usize,
    kt: f64,
    estimator: Estimator,
    resamples: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    assert!(
        trajectories.len() >= 2,
        "need ≥2 realizations for error bars"
    );
    let n = trajectories.len();
    // Collect bootstrap PMFs.
    let mut replicate_phis: Vec<Vec<f64>> = Vec::with_capacity(resamples);
    let mut grid: Option<Vec<f64>> = None;
    let mut resample = Vec::with_capacity(n);
    for r in 0..resamples {
        resample.clear();
        for k in 0..n {
            let idx = (seed_stream(seed, (r * n + k) as u64) % n as u64) as usize;
            resample.push(trajectories[idx].clone());
        }
        let pmf = PmfCurve::estimate(&resample, span, npoints, kt, estimator);
        if grid.is_none() {
            grid = Some(pmf.points.iter().map(|p| p.guide_disp).collect());
        }
        replicate_phis.push(pmf.points.iter().map(|p| p.phi).collect());
    }
    let grid = grid.expect("at least one replicate");
    let npts = grid.len();
    let mut out = Vec::with_capacity(npts);
    let mut column = Vec::with_capacity(resamples);
    for j in 0..npts {
        column.clear();
        for rep in &replicate_phis {
            if j < rep.len() {
                column.push(rep[j]);
            }
        }
        out.push((grid[j], spice_stats::std_dev(&column)));
    }
    out
}

/// Scalar statistical error of a curve: RMS of the per-point bootstrap
/// sigmas (excluding the pinned Φ(0) = 0 point).
pub fn pmf_sigma_scalar(sigmas: &[(f64, f64)]) -> f64 {
    let vals: Vec<f64> = sigmas.iter().skip(1).map(|&(_, s)| s * s).collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().sum::<f64>() / vals.len() as f64).sqrt()
}

/// The paper's §IV-C computational-cost normalization.
///
/// At fixed compute budget, the number of affordable samples scales with
/// pulling velocity: `n_affordable(v) = n_ref · v / v_ref`. A σ measured
/// from `n_used` samples is rescaled to the affordable count assuming
/// `σ ∝ 1/√n`:
///
/// `σ_norm = σ_measured · √(n_used / n_affordable)`
///
/// With `v_ref = 100 Å/ns` this reproduces the paper's "the statistical
/// error of the v = 12.5 set should be set to √8 of the v = 100 set".
pub fn cost_normalized_sigma(
    sigma_measured: f64,
    n_used: usize,
    v_a_per_ns: f64,
    v_ref_a_per_ns: f64,
    n_ref_budget: usize,
) -> f64 {
    assert!(
        v_a_per_ns > 0.0 && v_ref_a_per_ns > 0.0,
        "velocities must be positive"
    );
    assert!(n_used > 0 && n_ref_budget > 0);
    let n_affordable = n_ref_budget as f64 * v_a_per_ns / v_ref_a_per_ns;
    sigma_measured * (n_used as f64 / n_affordable).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::units::KT_300;
    use spice_smd::WorkSample;

    fn ensemble(n: usize, sigma: f64, seed: u64) -> Vec<WorkTrajectory> {
        let g = spice_md::rng::GaussianStream::new(seed);
        (0..n)
            .map(|r| {
                let mut acc = 0.0;
                WorkTrajectory {
                    kappa_pn_per_a: 100.0,
                    v_a_per_ns: 12.5,
                    seed: r as u64,
                    samples: (0..=50)
                        .map(|i| {
                            let s = i as f64 * 0.2;
                            acc += sigma * g.sample(r as u64, i) * 0.2;
                            WorkSample {
                                t_ps: s,
                                guide_disp: s,
                                com_disp: s,
                                work: 1.5 * s + acc,
                                force: 1.5,
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn bootstrap_sigma_grows_with_noise() {
        let quiet = pmf_bootstrap_sigma(
            &ensemble(24, 0.2, 1),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
            100,
            5,
        );
        let noisy = pmf_bootstrap_sigma(
            &ensemble(24, 2.0, 1),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
            100,
            5,
        );
        let sq = pmf_sigma_scalar(&quiet);
        let sn = pmf_sigma_scalar(&noisy);
        assert!(sn > 2.0 * sq, "noisy σ {sn} should dwarf quiet σ {sq}");
    }

    #[test]
    fn bootstrap_sigma_shrinks_with_ensemble_size() {
        let small = pmf_sigma_scalar(&pmf_bootstrap_sigma(
            &ensemble(8, 1.0, 2),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
            150,
            5,
        ));
        let large = pmf_sigma_scalar(&pmf_bootstrap_sigma(
            &ensemble(128, 1.0, 2),
            10.0,
            11,
            KT_300,
            Estimator::Jarzynski,
            150,
            5,
        ));
        assert!(
            large < small,
            "σ must shrink with more realizations: {small} → {large}"
        );
    }

    #[test]
    fn bootstrap_deterministic_under_seed() {
        let e = ensemble(12, 1.0, 3);
        let a = pmf_bootstrap_sigma(&e, 10.0, 6, KT_300, Estimator::Jarzynski, 50, 9);
        let b = pmf_bootstrap_sigma(&e, 10.0, 6, KT_300, Estimator::Jarzynski, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_normalization_reproduces_sqrt8() {
        // Same measured σ and same n_used: v = 12.5 penalized √8 relative
        // to v = 100 (§IV-C).
        let s_slow = cost_normalized_sigma(1.0, 32, 12.5, 100.0, 32);
        let s_fast = cost_normalized_sigma(1.0, 32, 100.0, 100.0, 32);
        assert!(((s_slow / s_fast) - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalization_is_identity_at_reference() {
        assert!((cost_normalized_sigma(0.7, 64, 100.0, 100.0, 64) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn sigma_scalar_skips_pinned_origin() {
        let sigmas = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)];
        assert!((pmf_sigma_scalar(&sigmas) - 2.0).abs() < 1e-12);
    }
}
