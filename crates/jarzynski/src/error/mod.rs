//! Error analysis for SMD-JE PMFs — the machinery behind §IV and Fig. 4.
//!
//! Two error channels compete (the paper's central methodological point):
//!
//! * **statistical** (σ_stat) — finite-sample scatter of the exponential
//!   average; *decreases* with more samples, so at fixed compute budget it
//!   *decreases* with pulling velocity (faster pulls → more samples per
//!   CPU-hour). Fairly comparing velocities therefore requires the
//!   cost normalization of §IV-C.
//! * **systematic** (σ_sys) — dissipation bias of the finite-N JE
//!   estimator; *grows* with pulling velocity, and with too-soft or
//!   too-stiff springs.

pub mod statistical;
pub mod systematic;
