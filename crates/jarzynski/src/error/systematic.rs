//! Systematic error: deviation from the putatively correct equilibrium
//! PMF (§IV-C's "irreversible work" bias).

use crate::pmf::PmfCurve;

/// RMS deviation of `pmf` from a reference profile `phi_ref(s)` over the
/// curve's grid (origin excluded — both are pinned to 0 there).
pub fn systematic_error(pmf: &PmfCurve, phi_ref: impl Fn(f64) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for p in pmf.points.iter().skip(1) {
        let d = p.phi - phi_ref(p.guide_disp);
        sum += d * d;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).sqrt()
    }
}

/// Mean dissipated work along the curve: `⟨W⟩ − Φ_JE` averaged over grid
/// points. Always ≥ 0 up to estimator noise; grows with pulling speed —
/// the mechanism behind §IV-C's "too large a velocity produces
/// irreversible work".
pub fn dissipated_work(pmf: &PmfCurve) -> f64 {
    let vals: Vec<f64> = pmf
        .points
        .iter()
        .skip(1)
        .map(|p| p.mean_work - p.phi)
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        spice_stats::mean(&vals)
    }
}

/// Signed end-point bias: `Φ_est(L) − Φ_ref(L)` — positive when the
/// estimate overshoots (insufficient sampling of rare low-work tails).
pub fn endpoint_bias(pmf: &PmfCurve, phi_ref: impl Fn(f64) -> f64) -> f64 {
    pmf.points
        .last()
        .map_or(f64::NAN, |p| p.phi - phi_ref(p.guide_disp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::{Estimator, PmfPoint};

    fn curve(phis: &[f64], works: &[f64]) -> PmfCurve {
        PmfCurve {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            estimator: Estimator::Jarzynski,
            points: phis
                .iter()
                .zip(works)
                .enumerate()
                .map(|(i, (&phi, &w))| PmfPoint {
                    guide_disp: i as f64,
                    com_disp: i as f64,
                    phi,
                    n: 10,
                    mean_work: w,
                })
                .collect(),
        }
    }

    #[test]
    fn zero_error_for_exact_curve() {
        let c = curve(&[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 2.0, 3.0]);
        assert!(systematic_error(&c, |s| s) < 1e-12);
        assert!(dissipated_work(&c).abs() < 1e-12);
        assert!(endpoint_bias(&c, |s| s).abs() < 1e-12);
    }

    #[test]
    fn rms_of_constant_offset() {
        let c = curve(&[0.0, 1.5, 2.5, 3.5], &[0.0, 1.5, 2.5, 3.5]);
        // Offset +0.5 at every non-origin point.
        assert!((systematic_error(&c, |s| s) - 0.5).abs() < 1e-12);
        assert!((endpoint_bias(&c, |s| s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dissipation_positive_when_work_exceeds_phi() {
        let c = curve(&[0.0, 1.0, 2.0], &[0.0, 1.8, 3.0]);
        assert!((dissipated_work(&c) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_curve_is_nan() {
        let c = curve(&[0.0], &[0.0]);
        assert!(systematic_error(&c, |s| s).is_nan());
        assert!(dissipated_work(&c).is_nan());
    }
}
