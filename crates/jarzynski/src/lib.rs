//! # spice-jarzynski
//!
//! Jarzynski's equality turned into a PMF pipeline — the analysis half of
//! the paper's SMD-JE method (§II, §IV, Fig. 4).
//!
//! Jarzynski (1997): for a system driven between two states by a
//! time-dependent protocol, `exp(−βΔF) = ⟨exp(−βW)⟩` over realizations of
//! the *non-equilibrium* work W. SMD supplies the realizations; this crate
//! supplies:
//!
//! * [`estimator`] — the exponential-average estimator (log-sum-exp
//!   stabilized), the second-order cumulant approximation, and the mean
//!   work (the ≥ ΔF bound).
//! * [`pmf`] — assembling Φ(s) on a displacement grid from ensembles of
//!   [`spice_smd::WorkTrajectory`]s, including sub-trajectory stitching
//!   (§IV-A).
//! * [`error`] — the statistical/systematic error machinery of §IV:
//!   bootstrap σ_stat with the paper's computational-cost normalization
//!   (σ scaled by √(samples affordable at fixed cost) — cost ∝ 1/v),
//!   and σ_sys as the deviation from a reference (adiabatic) profile.
//! * [`optimal`] — the parameter-selection logic that reproduces the
//!   paper's conclusion: κ = 100 pN/Å, v = 12.5 Å/ns.
//! * [`analytic`] — closed-form and quadrature reference PMFs used to
//!   validate the whole chain on exactly solvable systems.
//! * [`crooks`] — bidirectional estimation (Crooks crossing, Bennett
//!   acceptance ratio).
//! * [`wham`] — the Weighted Histogram Analysis Method over umbrella
//!   windows, closing the JE ↔ TI ↔ WHAM methodological triangle.

#![warn(missing_docs)]

pub mod analytic;
pub mod crooks;
pub mod error;
pub mod estimator;
pub mod optimal;
pub mod pmf;
pub mod wham;

pub use crooks::{bar_free_energy, crooks_crossing};
pub use error::statistical::{cost_normalized_sigma, pmf_bootstrap_sigma};
pub use error::systematic::{dissipated_work, systematic_error};
pub use estimator::{cumulant_free_energy, jarzynski_free_energy, mean_work};
pub use optimal::{select_optimal, ParameterCell};
pub use pmf::{PmfCurve, PmfPoint};
pub use wham::{wham, UmbrellaWindow, WhamResult};
